"""Reporting edge cases: empty inputs, failure annotations, formatting."""

from repro.bench.harness import (
    Aggregate,
    EngineSummary,
    LevelSummary,
    MatchSample,
    ShreddingResult,
    WarmColdResult,
    figure20,
    figure21,
)
from repro.bench.reporting import (
    format_figure20,
    format_figure21,
    format_shredding,
    format_warm_cold,
)


def _sample(engine="sql", level="High", failed=False, total=0.001):
    return MatchSample(
        engine=engine,
        level=level,
        policy_index=0,
        convert_seconds=total / 2,
        query_seconds=total / 2,
        behavior=None if failed else "request",
        error="too complex" if failed else None,
    )


class TestFigureAggregation:
    def test_all_failed_cell_is_unavailable(self):
        samples = [_sample(engine="xquery", level="Medium", failed=True)]
        rows = figure21(samples)
        assert rows[0].unavailable
        assert "-" in format_figure21(rows)

    def test_partial_failures_counted(self):
        samples = [
            _sample(engine="xquery", failed=True),
            _sample(engine="xquery", failed=False),
        ]
        rows = figure20(samples)
        assert rows[0].failures == 1
        assert rows[0].total.count == 1
        assert "failed XTABLE translation" in format_figure20(rows)

    def test_missing_engine_prints_dash(self):
        rows = figure20([_sample(engine="sql")])
        text = format_figure20(rows)
        # No appel/xquery samples -> dashes in their columns.
        assert text.count("-") >= 2

    def test_sample_total_property(self):
        sample = _sample(total=0.01)
        assert abs(sample.total_seconds - 0.01) < 1e-12
        assert not sample.failed


class TestMarkdown:
    def test_markdown_figure20(self):
        from repro.bench.reporting import markdown_figure20

        rows = figure20([_sample(engine="sql"), _sample(engine="appel")])
        text = markdown_figure20(rows)
        assert text.startswith("|  | APPEL engine |")
        assert "| Average |" in text
        assert "—" in text  # missing xquery column

    def test_markdown_figure21_blank_cell(self):
        from repro.bench.reporting import markdown_figure21

        rows = figure21([
            _sample(engine="sql", level="Medium"),
            _sample(engine="xquery", level="Medium", failed=True),
        ])
        text = markdown_figure21(rows)
        assert "| Medium |" in text
        assert "—" in text


class TestOtherFormatters:
    def test_shredding_formatter(self):
        result = ShreddingResult(
            per_policy_seconds=(0.001, 0.002),
            aggregate=Aggregate.of([0.001, 0.002]),
        )
        text = format_shredding(result)
        assert "average" in text and "policies: 2" in text

    def test_warm_cold_formatter_labels(self):
        rows = [WarmColdResult(engine="sql", cold_seconds=0.002,
                               warm_seconds=0.001)]
        text = format_warm_cold(rows)
        assert "SQL" in text
        assert "1.000" in text  # delta in ms

    def test_unknown_engine_label_passthrough(self):
        rows = [WarmColdResult(engine="exotic", cold_seconds=0.0,
                               warm_seconds=0.0)]
        assert "exotic" in format_warm_cold(rows)


class TestAggregateEdge:
    def test_single_value(self):
        agg = Aggregate.of([0.5])
        assert agg.average == agg.maximum == agg.minimum == 0.5
        assert agg.count == 1
