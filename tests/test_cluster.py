"""The cluster tier end to end: routing, replicas, failover, parity.

Workers run in-process (threads) throughout — the cluster semantics are
identical to process mode (one smoke test below proves the spawn path),
and thread workers keep the suite fast and give the failover tests a
handle on each worker's ``PolicyServer`` for crash injection.
"""

from __future__ import annotations

import time

import pytest

from repro.appel.serializer import serialize_ruleset
from repro.bench.harness import cluster_corpus
from repro.cluster import ClusterClient, P3PCluster, Topology
from repro.corpus.volga import jane_preference
from repro.net import protocol
from repro.net.client import HttpClientAgent
from repro.testing.faults import crash_pool

JANE = serialize_ruleset(jane_preference(), indent=False)

# Small corpus for the routing tests; every site hashes to exactly one
# shard, and with 8 sites on 2 shards both sides of the ring are hit.
ENTRIES = cluster_corpus(corpus_size=8)


def install_entries(client: ClusterClient, entries=ENTRIES) -> None:
    for site, policy_xml, reference in entries:
        client.install_policy(policy_xml, site=site,
                              reference_file=reference)


def wait_for_replicas(cluster: P3PCluster, entries=ENTRIES,
                      timeout: float = 5.0) -> None:
    """Block until every replica's snapshot contains every installed
    policy (the refresh loop is asynchronous; tests that read through
    replicas must not race it)."""
    deadline = time.monotonic() + timeout
    pending = [(site.split(".")[1], worker)
               for site, _, _ in entries
               for worker in cluster.replicas[cluster.owner_shard(site)]]
    while pending:
        name, worker = pending[-1]
        server = worker.policy_server
        if server is not None and \
                server.policies.policy_id_by_name(name) is not None:
            pending.pop()
            continue
        if time.monotonic() > deadline:
            raise TimeoutError(f"replica never saw policy {name!r}")
        time.sleep(0.02)


@pytest.fixture(scope="module")
def cluster():
    """A started 2-shard x 1-replica in-process cluster with the small
    corpus installed (module-scoped: read-only tests share it)."""
    with P3PCluster(shards=2, replicas=1, in_process=True,
                    refresh_interval=0.05).start() as cluster:
        with ClusterClient(cluster.base_url, JANE) as admin:
            install_entries(admin)
        wait_for_replicas(cluster)
        yield cluster


class TestRoutedInstalls:
    def test_policy_lands_on_owning_primary_only(self, cluster):
        for site, _, _ in ENTRIES:
            owner = cluster.owner_shard(site)
            name = site.split(".")[1]
            for shard in (0, 1):
                server = cluster.primary(shard).policy_server
                found = server.policies.policy_id_by_name(name) is not None
                assert found == (shard == owner), (
                    f"{name} on shard {shard}, owner {owner}")

    def test_install_without_site_is_rejected(self, cluster):
        with HttpClientAgent(cluster.base_url) as agent:
            with pytest.raises(protocol.ProtocolError) as err:
                agent.install_policy(ENTRIES[0][1])
            assert err.value.code == protocol.ERR_BAD_REQUEST

    def test_corpus_spans_both_shards(self, cluster):
        owners = {cluster.owner_shard(site) for site, _, _ in ENTRIES}
        assert owners == {0, 1}


class TestRoutedChecks:
    def test_router_and_direct_paths_agree(self, cluster):
        """A plain agent at the router and a topology-aware client get
        the same decision for every site."""
        with HttpClientAgent(cluster.base_url, JANE) as via_router, \
                ClusterClient(cluster.base_url, JANE) as direct:
            for site, _, _ in ENTRIES:
                a = via_router.check(site, "/catalog/item-1")
                b = direct.check(site, "/catalog/item-1")
                assert (a.behavior, a.rule_index) == \
                    (b.behavior, b.rule_index)
            # The topology-aware client really did bypass the router.
            assert direct.direct_checks == len(ENTRIES)
            assert direct.router_fallbacks == 0

    def test_batch_splits_by_shard_and_preserves_order(self, cluster):
        with HttpClientAgent(cluster.base_url, JANE) as agent:
            sites = [site for site, _, _ in ENTRIES]
            batch = agent.check_batch((site, "/catalog/item-2")
                                      for site in sites)
            assert len(batch) == len(sites)
            singles = [agent.check(site, "/catalog/item-2")
                       for site in sites]
            assert [(r.behavior, r.rule_index) for r in batch] == \
                [(r.behavior, r.rule_index) for r in singles]

    def test_unknown_site_still_answers(self, cluster):
        """A site no shard has a policy for routes fine and comes back
        undecided, exactly like the single-server behaviour."""
        with HttpClientAgent(cluster.base_url, JANE) as agent:
            response = agent.check("www.nowhere.invalid", "/")
            assert response.policy_id is None


class TestShardIdentity:
    def test_wrong_shard_header_is_rejected(self, cluster):
        site = ENTRIES[0][0]
        owner = cluster.owner_shard(site)
        wrong = 1 - owner
        url = cluster.primary_url(owner)
        with HttpClientAgent(
                url, JANE, retry=None,
                default_headers={
                    protocol.SHARD_HEADER: str(wrong),
                    protocol.TOPOLOGY_HEADER:
                        str(cluster.topology.version),
                }) as agent:
            with pytest.raises(protocol.ProtocolError) as err:
                agent.check(site, "/catalog/item-0")
            assert err.value.code == protocol.ERR_WRONG_SHARD

    def test_stale_topology_version_is_rejected(self, cluster):
        site = ENTRIES[0][0]
        owner = cluster.owner_shard(site)
        with HttpClientAgent(
                cluster.primary_url(owner), JANE, retry=None,
                default_headers={
                    protocol.SHARD_HEADER: str(owner),
                    protocol.TOPOLOGY_HEADER:
                        str(cluster.topology.version + 7),
                }) as agent:
            with pytest.raises(protocol.ProtocolError) as err:
                agent.check(site, "/catalog/item-0")
            assert err.value.code == protocol.ERR_WRONG_SHARD

    def test_health_probes_are_shard_agnostic(self, cluster):
        with HttpClientAgent(
                cluster.primary_url(0), retry=None,
                default_headers={protocol.SHARD_HEADER: "99"}) as agent:
            assert agent.health()["status"] == "ok"

    def test_client_recovers_from_stale_topology(self, cluster):
        """A client holding yesterday's ring gets ``wrong-shard``,
        refreshes, and completes the check — one extra round trip, never
        a wrong answer."""
        site = ENTRIES[0][0]
        with ClusterClient(cluster.base_url, JANE) as client:
            client.refresh_topology()
            refreshes = client.topology_refreshes
            client.topology = Topology(
                shards=cluster.topology.shards,
                replicas=cluster.topology.replicas,
                version=cluster.topology.version + 7)
            for agent in client._agents.values():
                agent.close()
            client._agents.clear()
            response = client.check(site, "/catalog/item-3")
            assert response.decision is not None
            assert client.topology_refreshes == refreshes + 1
            assert client.topology.version == cluster.topology.version
            assert client.router_fallbacks == 0


class TestTopologyEndpoint:
    def test_wire_topology_roundtrips(self, cluster):
        with HttpClientAgent(cluster.base_url) as agent:
            snapshot = agent.call("GET", "/v1/topology")
        assert Topology.from_wire(snapshot["topology"]) == \
            cluster.topology
        backends = snapshot["backends"]
        for shard in ("0", "1"):
            assert backends[shard]["primary"].startswith("http://")
            assert len(backends[shard]["replicas"]) == 1


class TestAggregatedMetrics:
    def test_metrics_cover_router_and_every_backend(self, cluster):
        with ClusterClient(cluster.base_url, JANE) as client:
            client.check(ENTRIES[0][0], "/catalog/item-4")
            metrics = client.metrics()
        router = metrics["cluster"]["router"]
        assert router["server_id"].startswith("router-")
        assert router["uptime_seconds"] > 0
        assert "forwarding" in router
        aggregate = metrics["cluster"]["aggregate"]
        assert aggregate["backends"] == 4          # 2 primaries + 2 replicas
        assert aggregate["checks_served"] > 0
        ids = set()
        for shard in ("0", "1"):
            block = metrics["shards"][shard]
            primary = block["primary"]["server"]
            assert primary["pid"] > 0
            assert primary["role"] == "primary"
            assert primary["shard"] == int(shard)
            ids.add(primary["server_id"])
            (replica,) = block["replicas"]
            assert replica["server"]["role"] == "replica"
            ids.add(replica["server"]["server_id"])
            replication = replica["replication"]
            assert replication["generation"] >= 1
            assert replication["lag_seconds"] is not None
        assert len(ids) == 4                       # every backend distinct

    def test_replica_served_reads_are_counted(self, cluster):
        router = cluster.router
        before = router.counters.snapshot()["replica_reads"]
        with HttpClientAgent(cluster.base_url, JANE) as agent:
            agent.check(ENTRIES[1][0], "/catalog/item-5")
        assert router.counters.snapshot()["replica_reads"] == before + 1


class TestDifferential:
    def test_cluster_match_equals_single_server_match(self, corpus):
        """Acceptance: the full corpus, installed across shards, must
        produce decision-for-decision the same match a single
        ``PolicyServer.match_all`` does (compared by policy name —
        policy ids are shard-local)."""
        from repro.p3p.serializer import serialize_policy
        from repro.server import PolicyServer

        with PolicyServer() as single:
            for policy in corpus:
                single.install_policy(policy)
            single.register_preference(jane_preference())
            expected = {
                entry.name: (entry.behavior, entry.rule_index)
                for entry in single.match_all(jane_preference()).decisions
            }

        with P3PCluster(shards=3, in_process=True).start() as cluster:
            with ClusterClient(cluster.base_url, JANE) as client:
                for policy in corpus:
                    client.install_policy(
                        serialize_policy(policy),
                        site=f"www.{policy.name}.example.com")
                merged = client.match_corpus()

        got = {entry["name"]: (entry["behavior"], entry["rule_index"])
               for entry in merged["results"]}
        assert got == expected
        assert len(got) == len(corpus)
        # Every entry says which shard answered, and >1 shard took part.
        shards = {entry["shard"] for entry in merged["results"]}
        assert len(shards) > 1


class TestFailover:
    @pytest.fixture()
    def fresh(self):
        """A private 2x1 cluster the test may freely damage."""
        with P3PCluster(shards=2, replicas=1, in_process=True,
                        refresh_interval=0.05).start() as cluster:
            with ClusterClient(cluster.base_url, JANE) as admin:
                install_entries(admin)
            wait_for_replicas(cluster)
            yield cluster

    def test_crashed_primary_fails_over_to_replica(self, fresh):
        site = ENTRIES[0][0]
        shard = fresh.owner_shard(site)
        with HttpClientAgent(fresh.base_url, JANE) as agent:
            baseline = agent.check(site, "/catalog/item-6")

            worker = fresh.primary(shard)
            crash_pool(worker.policy_server.pool)
            fresh.kill_primary(shard)
            assert fresh.primary_url(shard) is None

            # Reads keep working, served by the shard's replica.
            survived = agent.check(site, "/catalog/item-6")
            assert (survived.behavior, survived.rule_index) == \
                (baseline.behavior, baseline.rule_index)

            # Installs need the primary: shard-unavailable, retryable.
            with pytest.raises(protocol.ProtocolError) as err:
                HttpClientAgent(fresh.base_url).install_policy(
                    ENTRIES[0][1], site=site)
            assert err.value.code == protocol.ERR_SHARD_UNAVAILABLE
            assert err.value.retry_after is not None

            # Restart heals the shard: installs land again.
            fresh.restart_primary(shard)
            with HttpClientAgent(fresh.base_url) as installer:
                receipt = installer.install_policy(
                    ENTRIES[0][1], site=site,
                    reference_file=ENTRIES[0][2])
            assert receipt.statements > 0
            after = agent.check(site, "/catalog/item-6")
            assert (after.behavior, after.rule_index) == \
                (baseline.behavior, baseline.rule_index)

    def test_no_duplicate_check_log_rows_across_retries(self, fresh):
        """The same ``check_key`` presented repeatedly — as failover
        retries do — logs exactly one row, even across a primary
        crash/restart."""
        site = ENTRIES[2][0]
        shard = fresh.owner_shard(site)
        with HttpClientAgent(fresh.base_url, JANE) as agent:
            digest = agent.register_preference()
            payload = protocol.CheckRequest(
                site=site, uri="/dup/probe", preference_hash=digest,
                check_key="failover-dup-probe").to_wire()

            primary = HttpClientAgent(
                fresh.primary_url(shard), retry=None,
                default_headers={
                    protocol.SHARD_HEADER: str(shard),
                    protocol.TOPOLOGY_HEADER:
                        str(fresh.topology.version),
                })
            try:
                primary.call("POST", "/v1/check", payload,
                             retry_key="failover-dup-probe")
                primary.call("POST", "/v1/check", payload,
                             retry_key="failover-dup-probe")
            finally:
                primary.close()

            worker = fresh.primary(shard)
            worker.policy_server.flush_log()
            crash_pool(worker.policy_server.pool)
            fresh.kill_primary(shard)
            fresh.restart_primary(shard)

            # The retried request arrives once more after the restart
            # (via the router this time) — still no second row.
            agent.call("POST", "/v1/check", payload,
                       retry_key="failover-dup-probe")

            server = fresh.primary(shard).policy_server
            server.flush_log()
            with server.pool.read() as db:
                rows = db.execute(
                    "SELECT COUNT(*) FROM check_log "
                    "WHERE check_key = ?",
                    ("failover-dup-probe",)).fetchone()[0]
                duplicates = db.execute(
                    "SELECT check_key, COUNT(*) AS n FROM check_log "
                    "WHERE check_key IS NOT NULL "
                    "GROUP BY check_key HAVING n > 1").fetchall()
            assert rows == 1
            assert duplicates == []


class TestPartialMatch:
    def test_dead_shard_is_reported_not_silently_dropped(self):
        """scatter_match with one dead shard (no replicas to fail over
        to) must answer with the live shard's results, ``partial:
        true``, and a per-shard error entry — not a silently smaller
        corpus, and not a hard failure."""
        with P3PCluster(shards=2, replicas=0,
                        in_process=True).start() as cluster:
            with ClusterClient(cluster.base_url, JANE) as admin:
                install_entries(admin)

            with ClusterClient(cluster.base_url, JANE) as client:
                complete = client.match_corpus()
                assert complete["partial"] is False
                assert complete["shard_errors"] == {}
                full_names = {e["name"] for e in complete["results"]}

                dead = cluster.owner_shard(ENTRIES[0][0])
                cluster.kill_primary(dead)

                merged = client.match_corpus()
                assert merged["partial"] is True
                assert set(merged["shard_errors"]) == {str(dead)}
                error = merged["shard_errors"][str(dead)]
                assert error["code"] == protocol.ERR_SHARD_UNAVAILABLE
                assert error["message"]

                live_shards = {e["shard"] for e in merged["results"]}
                assert merged["results"]          # live shard answered
                assert dead not in live_shards
                surviving = {e["name"] for e in merged["results"]}
                assert surviving < full_names     # strictly partial

                # Every shard dead: now the match itself fails.
                for shard in cluster.topology.shard_ids():
                    if shard != dead:
                        cluster.kill_primary(shard)
                with pytest.raises(protocol.ProtocolError) as err:
                    client.match_corpus()
                assert err.value.code == protocol.ERR_SHARD_UNAVAILABLE


class TestProcessMode:
    def test_spawned_cluster_serves_and_shuts_down_cleanly(self):
        """The real deployment shape: spawned worker processes, graceful
        SIGTERM drain, exit code 0."""
        with P3PCluster(shards=2, replicas=1).start() as cluster:
            with ClusterClient(cluster.base_url, JANE) as client:
                install_entries(client, ENTRIES[:2])
                for site, _, _ in ENTRIES[:2]:
                    assert client.check(site, "/").decision is not None
            # Drain replicas then primaries ourselves so the exit codes
            # are observable; close() below only tidies router/tmpdir.
            workers = [w for group in cluster.replicas.values()
                       for w in group] + list(cluster.primaries)
            assert [w.terminate() for w in workers] == [0, 0, 0, 0]
