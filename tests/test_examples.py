"""Every example script runs to completion and prints its key claims."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "behavior='request'" in out
    assert "Section 2.2 walk-through reproduces" in out


def test_bookstore_server():
    out = _run("bookstore_server.py")
    assert "conflict report" in out
    assert "version history" in out
    assert "'Medium': 'request'" in out  # the revision wins Medium users


def test_cookie_compact_policies():
    out = _run("cookie_compact_policies.py")
    assert "cookies accepted" in out
    assert 'P3P: CP="' in out


def test_policy_enforcement():
    out = _run("policy_enforcement.py")
    assert "[ALLOW] fulfilment" in out
    assert "[DENY ] marketing call list" in out
    assert "OVERDUE #user.home-info.postal" in out


def test_preference_studio():
    out = _run("preference_studio.py")
    assert "tightens privacy: True" in out
    assert "cautious shopper now accepts" in out


@pytest.mark.slow
def test_architecture_comparison():
    out = _run("architecture_comparison.py")
    assert "decisions identical across architectures" in out
    assert "Figure 20" in out
