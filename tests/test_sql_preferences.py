"""Preferences as SQL: the Section 6.3.2 deployment and the minimal subset."""

import pytest

from repro.corpus.volga import VOLGA_POLICY_NO_OPTIN_XML
from repro.errors import TranslationError
from repro.p3p.parser import parse_policy
from repro.storage import Database, PolicyStore
from repro.translate.sql_preferences import (
    APPLICABLE_POLICY_PLACEHOLDER,
    compile_preference,
    preference_from_sql,
    validate_sql_rule,
)


@pytest.fixture()
def store(volga):
    db = Database()
    store = PolicyStore(db)
    store.install_policy(volga)
    return store


class TestCompiledPreferences:
    def test_compiled_matches_translator(self, store, volga, jane):
        preference = compile_preference(jane)
        behavior, index = preference.evaluate(store.db, 1)
        assert (behavior, index) == ("request", 2)

    def test_compiled_reusable_across_policies(self, store, jane):
        bad = store.install_policy(
            parse_policy(VOLGA_POLICY_NO_OPTIN_XML)).policy_id
        preference = compile_preference(jane)
        assert preference.evaluate(store.db, 1) == ("request", 2)
        assert preference.evaluate(store.db, bad) == ("block", 0)

    def test_suite_compiles_and_agrees(self, store, suite):
        from repro.appel.engine import AppelEngine
        from repro.storage.reconstruct import reconstruct_policy

        engine = AppelEngine()
        policy = reconstruct_policy(store.db, 1)
        for level, ruleset in suite.items():
            preference = compile_preference(ruleset)
            behavior, index = preference.evaluate(store.db, 1)
            expected = engine.evaluate(policy, ruleset)
            assert (behavior, index) == \
                (expected.behavior, expected.rule_index), level

    def test_no_match_returns_none(self, store):
        from repro.appel.model import expression, rule, ruleset

        preference = compile_preference(
            ruleset(rule("block",
                         expression("POLICY", expression("TEST"))))
        )
        assert preference.evaluate(store.db, 1) == (None, None)


class TestHandWrittenPreferences:
    def test_hand_written_rule(self, store):
        sql = (
            f"SELECT * FROM ({APPLICABLE_POLICY_PLACEHOLDER}) "
            "AS applicable_policy WHERE EXISTS ("
            "SELECT * FROM purpose "
            "WHERE purpose.policy_id = applicable_policy.policy_id "
            "AND purpose = 'contact' AND required = 'opt-in')"
        )
        preference = preference_from_sql([
            ("block", sql),
            ("request",
             f"SELECT * FROM ({APPLICABLE_POLICY_PLACEHOLDER}) "
             "AS applicable_policy"),
        ])
        # Volga states contact as opt-in, so the block rule fires.
        assert preference.evaluate(store.db, 1) == ("block", 0)


class TestMinimalSubsetValidation:
    def test_select_accepted(self):
        validate_sql_rule("SELECT 'block' FROM policy WHERE 1")

    @pytest.mark.parametrize("bad", [
        "DELETE FROM policy",
        "SELECT 1; DROP TABLE policy",
        "UPDATE policy SET name = 'x'",
        "INSERT INTO policy VALUES (1)",
        "PRAGMA writable_schema = 1",
        "CREATE TABLE evil (x)",
    ])
    def test_mutations_rejected(self, bad):
        with pytest.raises(TranslationError):
            validate_sql_rule(bad)

    def test_foreign_table_rejected(self):
        with pytest.raises(TranslationError):
            validate_sql_rule("SELECT * FROM sqlite_master")

    def test_policy_tables_allowed(self):
        validate_sql_rule(
            "SELECT * FROM statement WHERE EXISTS "
            "(SELECT * FROM purpose WHERE purpose = 'current')"
        )

    def test_non_select_rejected(self):
        with pytest.raises(TranslationError):
            validate_sql_rule("WITH x AS (SELECT 1) SELECT * FROM x")

    def test_compiled_rules_pass_validation(self, jane, suite):
        # Everything our own translator emits is within the subset.
        compile_preference(jane, validate=True)
        for ruleset in suite.values():
            compile_preference(ruleset, validate=True)
