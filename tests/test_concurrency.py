"""Concurrent serving: N threads hammering PolicyServer.check.

The contract under test: on a shared on-disk database, concurrent
checks raise no sqlite3 thread errors, agree with a serial run of the
same requests, and land in the check log exactly once after a flush.
"""

import threading

import pytest

from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import VOLGA_REFERENCE_XML, volga_policy
from repro.server.policy_server import PolicyServer

SITE = "volga.example.com"
THREADS = 8
CHECKS_PER_THREAD = 20


def _install(server):
    server.install_policy(volga_policy(), site=SITE)
    server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
    return server


@pytest.fixture()
def disk_server(tmp_path):
    server = _install(PolicyServer(str(tmp_path / "serve.db")))
    yield server
    server.close()


def _requests():
    """A mixed workload: every preference level, covered and uncovered
    URIs, each request distinguishable in the log."""
    suite = jrc_suite()
    levels = list(suite.values())
    requests = []
    for thread in range(THREADS):
        for i in range(CHECKS_PER_THREAD):
            area = "/catalog" if i % 4 else "/legacy"
            uri = f"{area}/t{thread}-c{i}"
            requests.append((SITE, uri, levels[(thread + i) % len(levels)]))
    return requests


class TestHammer:
    def test_threads_hammering_check_directly(self, disk_server):
        requests = _requests()
        errors = []
        results = {}

        def worker(thread_index):
            try:
                chunk = requests[thread_index::THREADS]
                results[thread_index] = [
                    disk_server.check(site, uri, preference)
                    for site, uri, preference in chunk
                ]
            except Exception as exc:  # includes sqlite3 thread errors
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert sum(len(chunk) for chunk in results.values()) == \
            len(requests)

        # Exactly once: after a flush every check is logged, and no
        # check twice (URIs are unique per request).
        disk_server.flush_log()
        with disk_server.pool.read() as db:
            total = db.scalar("SELECT COUNT(*) FROM check_log")
            distinct = db.scalar("SELECT COUNT(DISTINCT uri) FROM check_log")
        assert total == len(requests)
        assert distinct == len(requests)

    def test_concurrent_results_match_serial_run(self, disk_server,
                                                 tmp_path):
        requests = _requests()
        concurrent = disk_server.serve_many(requests, threads=THREADS)

        serial_server = _install(PolicyServer(str(tmp_path / "serial.db")))
        try:
            serial = serial_server.serve_many(requests, threads=1)
        finally:
            serial_server.close()

        def decisions(results):
            return [(r.site, r.uri, r.behavior, r.rule_index, r.covered)
                    for r in results]

        assert decisions(concurrent) == decisions(serial)

    def test_serve_many_preserves_request_order(self, disk_server):
        requests = _requests()[:40]
        results = disk_server.serve_many(requests, threads=4)
        assert [(r.site, r.uri) for r in results] == \
            [(site, uri) for site, uri, _ in requests]

    def test_serve_many_flushes_before_returning(self, disk_server):
        requests = _requests()[:30]
        disk_server.serve_many(requests, threads=4)
        assert disk_server.log.pending == 0
        with disk_server.pool.read() as db:
            assert db.scalar("SELECT COUNT(*) FROM check_log") == \
                len(requests)

    def test_failed_batch_still_flushes_completed_checks(self,
                                                         disk_server):
        """serve_many flushes in a finally: the checks that completed
        before a worker raised must be durable, not stranded in the
        buffer behind an exception."""
        level = next(iter(jrc_suite().values()))
        requests = [(SITE, "/catalog/ok-1", level),
                    (SITE, "/catalog/ok-2", level),
                    (SITE, "/catalog/boom", object())]  # not a Ruleset
        with pytest.raises(Exception):
            disk_server.serve_many(requests, threads=1)
        assert disk_server.log.pending == 0
        with disk_server.pool.read() as db:
            assert db.scalar("SELECT COUNT(*) FROM check_log") == 2


class TestInMemoryConcurrency:
    def test_memory_server_serializes_but_stays_correct(self):
        """An in-memory pool cannot parallelize, but threaded serving
        must still be safe and exactly-once."""
        server = _install(PolicyServer())
        try:
            requests = _requests()[:60]
            results = server.serve_many(requests, threads=4)
            assert len(results) == len(requests)
            assert server.check_count() == len(requests)
        finally:
            server.close()


class TestLogBatching:
    def test_log_is_buffered_until_batch_size(self, disk_server):
        suite = jrc_suite()
        jane_level = next(iter(suite.values()))
        for i in range(5):
            disk_server.check(SITE, f"/catalog/b{i}", jane_level)
        assert disk_server.log.pending == 5
        with disk_server.pool.read() as db:
            assert db.scalar("SELECT COUNT(*) FROM check_log") == 0
        assert disk_server.flush_log() == 5
        assert disk_server.log.pending == 0

    def test_batch_size_triggers_flush(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "batch.db"),
                                       log_batch_size=4))
        try:
            suite = jrc_suite()
            level = next(iter(suite.values()))
            for i in range(4):
                server.check(SITE, f"/catalog/{i}", level)
            assert server.log.pending == 0
            assert server.log.batches == 1
            assert server.log.written == 4
        finally:
            server.close()

    def test_interval_triggers_flush(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "interval.db"),
                                       log_batch_size=10_000,
                                       log_flush_interval=0.0))
        try:
            suite = jrc_suite()
            level = next(iter(suite.values()))
            server.check(SITE, "/catalog/a", level)
            # interval 0: the first buffered row is already "old".
            assert server.log.pending == 0
        finally:
            server.close()

    def test_close_flushes(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "close.db")))
        suite = jrc_suite()
        level = next(iter(suite.values()))
        server.check(SITE, "/catalog/x", level)
        assert server.log.pending == 1
        server.close()
        # Reopen and confirm the row was committed on close.
        reopened = PolicyServer(str(tmp_path / "close.db"))
        try:
            assert reopened.check_count() == 1
        finally:
            reopened.close()

    def test_check_count_flushes_automatically(self, disk_server):
        suite = jrc_suite()
        level = next(iter(suite.values()))
        disk_server.check(SITE, "/catalog/y", level)
        assert disk_server.check_count() == 1
        assert disk_server.log.pending == 0


class TestIdempotentLogging:
    def test_repeated_check_key_logs_once(self, disk_server):
        level = next(iter(jrc_suite().values()))
        for _ in range(3):  # a client retrying a lost response
            disk_server.check(SITE, "/catalog/r", level,
                              check_key="retry-1")
        assert disk_server.check_count() == 1
        assert disk_server.log.deduped == 2

    def test_distinct_keys_and_keyless_checks_all_log(self, disk_server):
        level = next(iter(jrc_suite().values()))
        disk_server.check(SITE, "/catalog/a", level, check_key="k-1")
        disk_server.check(SITE, "/catalog/b", level, check_key="k-2")
        disk_server.check(SITE, "/catalog/c", level)  # legacy caller
        disk_server.check(SITE, "/catalog/d", level)
        assert disk_server.check_count() == 4

    def test_dedupe_survives_a_restart(self, tmp_path):
        """The in-memory window is empty after a restart; the partial
        unique index must still reject the replayed key."""
        path = str(tmp_path / "restart.db")
        server = _install(PolicyServer(path))
        level = next(iter(jrc_suite().values()))
        server.check(SITE, "/catalog/x", level, check_key="carried")
        server.close()

        reopened = PolicyServer(path)
        try:
            reopened.check(SITE, "/catalog/x", level,
                           check_key="carried")
            assert reopened.check_count() == 1
        finally:
            reopened.close()

    def test_window_is_bounded(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "window.db")))
        try:
            assert len(server.log._seen_keys) <= server.log.dedupe_window
            level = next(iter(jrc_suite().values()))
            window = server.log.dedupe_window
            for i in range(window + 50):
                server.log.append(
                    (SITE, f"/u{i}", None, None, None, "h", 0.0,
                     "now", f"k-{i}"), check_key=f"k-{i}")
            assert len(server.log._seen_keys) == window
        finally:
            server.close()

    def test_flush_inside_enclosing_write_defers(self, disk_server):
        """A flush joining an open write() transaction must not commit
        (or roll back) the enclosing work — it re-queues instead."""
        level = next(iter(jrc_suite().values()))
        disk_server.check(SITE, "/catalog/d", level, check_key="defer")
        with disk_server.pool.write() as db:
            db.execute("CREATE TABLE half_done (x INTEGER)")
            assert disk_server.flush_log() == 0
            assert disk_server.log.pending == 1
            db.commit()
        assert disk_server.log.deferrals == 1
        assert disk_server.flush_log() == 1

    def test_old_databases_gain_the_check_key_column(self, tmp_path):
        """A check_log created before the idempotency column migrates
        in place and keeps its rows."""
        import sqlite3 as sql

        path = str(tmp_path / "legacy.db")
        connection = sql.connect(path)
        connection.execute(
            "CREATE TABLE check_log ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " site TEXT NOT NULL, uri TEXT NOT NULL,"
            " policy_id INTEGER, behavior TEXT, rule_index INTEGER,"
            " preference_hash TEXT NOT NULL,"
            " elapsed_seconds REAL NOT NULL, checked_at TEXT NOT NULL)")
        connection.execute(
            "INSERT INTO check_log (site, uri, preference_hash, "
            "elapsed_seconds, checked_at) "
            "VALUES ('s', '/u', 'h', 0.0, 'then')")
        connection.commit()
        connection.close()

        server = _install(PolicyServer(path))
        try:
            level = next(iter(jrc_suite().values()))
            server.check(SITE, "/catalog/new", level, check_key="fresh")
            server.check(SITE, "/catalog/new", level, check_key="fresh")
            assert server.check_count() == 2  # legacy row + one new
        finally:
            server.close()
