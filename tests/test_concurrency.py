"""Concurrent serving: N threads hammering PolicyServer.check.

The contract under test: on a shared on-disk database, concurrent
checks raise no sqlite3 thread errors, agree with a serial run of the
same requests, and land in the check log exactly once after a flush.
"""

import threading

import pytest

from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import VOLGA_REFERENCE_XML, volga_policy
from repro.server.policy_server import PolicyServer

SITE = "volga.example.com"
THREADS = 8
CHECKS_PER_THREAD = 20


def _install(server):
    server.install_policy(volga_policy(), site=SITE)
    server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
    return server


@pytest.fixture()
def disk_server(tmp_path):
    server = _install(PolicyServer(str(tmp_path / "serve.db")))
    yield server
    server.close()


def _requests():
    """A mixed workload: every preference level, covered and uncovered
    URIs, each request distinguishable in the log."""
    suite = jrc_suite()
    levels = list(suite.values())
    requests = []
    for thread in range(THREADS):
        for i in range(CHECKS_PER_THREAD):
            area = "/catalog" if i % 4 else "/legacy"
            uri = f"{area}/t{thread}-c{i}"
            requests.append((SITE, uri, levels[(thread + i) % len(levels)]))
    return requests


class TestHammer:
    def test_threads_hammering_check_directly(self, disk_server):
        requests = _requests()
        errors = []
        results = {}

        def worker(thread_index):
            try:
                chunk = requests[thread_index::THREADS]
                results[thread_index] = [
                    disk_server.check(site, uri, preference)
                    for site, uri, preference in chunk
                ]
            except Exception as exc:  # includes sqlite3 thread errors
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert sum(len(chunk) for chunk in results.values()) == \
            len(requests)

        # Exactly once: after a flush every check is logged, and no
        # check twice (URIs are unique per request).
        disk_server.flush_log()
        with disk_server.pool.read() as db:
            total = db.scalar("SELECT COUNT(*) FROM check_log")
            distinct = db.scalar("SELECT COUNT(DISTINCT uri) FROM check_log")
        assert total == len(requests)
        assert distinct == len(requests)

    def test_concurrent_results_match_serial_run(self, disk_server,
                                                 tmp_path):
        requests = _requests()
        concurrent = disk_server.serve_many(requests, threads=THREADS)

        serial_server = _install(PolicyServer(str(tmp_path / "serial.db")))
        try:
            serial = serial_server.serve_many(requests, threads=1)
        finally:
            serial_server.close()

        def decisions(results):
            return [(r.site, r.uri, r.behavior, r.rule_index, r.covered)
                    for r in results]

        assert decisions(concurrent) == decisions(serial)

    def test_serve_many_preserves_request_order(self, disk_server):
        requests = _requests()[:40]
        results = disk_server.serve_many(requests, threads=4)
        assert [(r.site, r.uri) for r in results] == \
            [(site, uri) for site, uri, _ in requests]

    def test_serve_many_flushes_before_returning(self, disk_server):
        requests = _requests()[:30]
        disk_server.serve_many(requests, threads=4)
        assert disk_server.log.pending == 0
        with disk_server.pool.read() as db:
            assert db.scalar("SELECT COUNT(*) FROM check_log") == \
                len(requests)


class TestInMemoryConcurrency:
    def test_memory_server_serializes_but_stays_correct(self):
        """An in-memory pool cannot parallelize, but threaded serving
        must still be safe and exactly-once."""
        server = _install(PolicyServer())
        try:
            requests = _requests()[:60]
            results = server.serve_many(requests, threads=4)
            assert len(results) == len(requests)
            assert server.check_count() == len(requests)
        finally:
            server.close()


class TestLogBatching:
    def test_log_is_buffered_until_batch_size(self, disk_server):
        suite = jrc_suite()
        jane_level = next(iter(suite.values()))
        for i in range(5):
            disk_server.check(SITE, f"/catalog/b{i}", jane_level)
        assert disk_server.log.pending == 5
        with disk_server.pool.read() as db:
            assert db.scalar("SELECT COUNT(*) FROM check_log") == 0
        assert disk_server.flush_log() == 5
        assert disk_server.log.pending == 0

    def test_batch_size_triggers_flush(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "batch.db"),
                                       log_batch_size=4))
        try:
            suite = jrc_suite()
            level = next(iter(suite.values()))
            for i in range(4):
                server.check(SITE, f"/catalog/{i}", level)
            assert server.log.pending == 0
            assert server.log.batches == 1
            assert server.log.written == 4
        finally:
            server.close()

    def test_interval_triggers_flush(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "interval.db"),
                                       log_batch_size=10_000,
                                       log_flush_interval=0.0))
        try:
            suite = jrc_suite()
            level = next(iter(suite.values()))
            server.check(SITE, "/catalog/a", level)
            # interval 0: the first buffered row is already "old".
            assert server.log.pending == 0
        finally:
            server.close()

    def test_close_flushes(self, tmp_path):
        server = _install(PolicyServer(str(tmp_path / "close.db")))
        suite = jrc_suite()
        level = next(iter(suite.values()))
        server.check(SITE, "/catalog/x", level)
        assert server.log.pending == 1
        server.close()
        # Reopen and confirm the row was committed on close.
        reopened = PolicyServer(str(tmp_path / "close.db"))
        try:
            assert reopened.check_count() == 1
        finally:
            reopened.close()

    def test_check_count_flushes_automatically(self, disk_server):
        suite = jrc_suite()
        level = next(iter(suite.values()))
        disk_server.check(SITE, "/catalog/y", level)
        assert disk_server.check_count() == 1
        assert disk_server.log.pending == 0
