"""The concurrency-safety lint: each rule fires on its known-bad
fixture, passes its known-good twin, and finds nothing in the shipped
tree."""

import textwrap
from pathlib import Path

from repro.analysis import (
    RULE_DOCS,
    concurrency_paths,
    concurrency_source,
    explain_rule,
    known_rule_ids,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(src, rel_path="src/repro/net/aio.py"):
    return concurrency_source(textwrap.dedent(src), rel_path)


def codes(findings):
    return [finding.code for finding in findings]


class TestAsyncBlocking:
    def test_time_sleep_flagged(self):
        findings = lint("""\
            import time
            async def handle():
                time.sleep(1)
        """)
        assert codes(findings) == ["async-blocking"]
        assert findings[0].line == 3

    def test_db_query_flagged(self):
        assert codes(lint("""\
            async def handle(self):
                rows = self.db.query("SELECT 1")
        """)) == ["async-blocking"]

    def test_pool_read_flagged(self):
        assert codes(lint("""\
            async def handle(self):
                with self.pool.read() as db:
                    pass
        """)) == ["async-blocking"]

    def test_open_flagged(self):
        assert codes(lint("""\
            async def handle():
                data = open("f").read()
        """)) == ["async-blocking"]

    def test_server_call_flagged(self):
        assert codes(lint("""\
            async def handle(self):
                self.server.match_all(pref)
        """)) == ["async-blocking"]

    def test_executor_nested_def_passes(self):
        assert lint("""\
            async def handle(self):
                def work():
                    with self.pool.read() as db:
                        return db.query("SELECT 1")
                return await self._in_executor(work)
        """) == []

    def test_executor_lambda_passes(self):
        assert lint("""\
            async def handle(self, loop):
                return await loop.run_in_executor(
                    None, lambda: self.db.query("SELECT 1"))
        """) == []

    def test_awaited_call_assumed_coroutine(self):
        assert lint("""\
            async def handle(self):
                return await self.batching.check(site, uri)
        """) == []

    def test_awaited_call_arguments_still_checked(self):
        assert codes(lint("""\
            import time
            async def handle(self):
                return await self.send(time.sleep(1))
        """)) == ["async-blocking"]

    def test_asyncio_stream_read_write_pass(self):
        assert lint("""\
            async def handle(reader, writer):
                data = await reader.read(1024)
                writer.write(data)
                await writer.drain()
        """) == []

    def test_sync_def_not_flagged(self):
        assert lint("""\
            import time
            def handle():
                time.sleep(1)
        """) == []


class TestBareAcquire:
    def test_bare_acquire_flagged(self):
        findings = lint("""\
            def work(self):
                self._lock.acquire()
                self.counter += 1
                self._lock.release()
        """)
        assert codes(findings) == ["bare-acquire"]

    def test_try_finally_release_passes(self):
        assert lint("""\
            def work(self):
                self._lock.acquire()
                try:
                    self.counter += 1
                finally:
                    self._lock.release()
        """) == []

    def test_with_statement_passes(self):
        assert lint("""\
            def work(self):
                with self._lock:
                    self.counter += 1
        """) == []


class TestDoubleAcquire:
    def test_self_call_under_lock_flagged(self):
        findings = lint("""\
            import threading
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                def bump(self):
                    with self._lock:
                        self.snapshot()
                def snapshot(self):
                    with self._lock:
                        return 1
        """)
        assert "double-acquire" in codes(findings)

    def test_nested_with_flagged(self):
        findings = lint("""\
            import threading
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
        """)
        assert "double-acquire" in codes(findings)

    def test_rlock_reentry_passes(self):
        assert lint("""\
            import threading
            class Counter:
                def __init__(self):
                    self._lock = threading.RLock()
                def bump(self):
                    with self._lock:
                        self.snapshot()
                def snapshot(self):
                    with self._lock:
                        return 1
        """) == []

    def test_sequential_acquires_pass(self):
        assert lint("""\
            import threading
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                def bump(self):
                    with self._lock:
                        pass
                    with self._lock:
                        pass
        """) == []


class TestUnguardedAttribute:
    def test_mixed_guarding_flagged(self):
        findings = lint("""\
            import threading
            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def bump(self):
                    with self._lock:
                        self.count += 1
                def reset(self):
                    self.count = 0
        """)
        assert codes(findings) == ["unguarded-attribute"]
        assert findings[0].severity == "warning"

    def test_init_writes_exempt(self):
        assert lint("""\
            import threading
            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def bump(self):
                    with self._lock:
                        self.count += 1
        """) == []

    def test_consistently_guarded_passes(self):
        assert lint("""\
            import threading
            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def bump(self):
                    with self._lock:
                        self.count += 1
                def reset(self):
                    with self._lock:
                        self.count = 0
        """) == []


class TestSpawnTarget:
    def test_lambda_target_flagged(self):
        assert codes(lint("""\
            def start(ctx):
                ctx.Process(target=lambda: 1).start()
        """)) == ["spawn-target"]

    def test_bound_method_target_flagged(self):
        assert codes(lint("""\
            def start(self):
                self._context.Process(target=self._run).start()
        """)) == ["spawn-target"]

    def test_module_level_name_passes(self):
        assert lint("""\
            def start(self, config, channel):
                self._context.Process(
                    target=worker_main, args=(config, channel)).start()
        """) == []

    def test_thread_target_not_checked(self):
        assert lint("""\
            import threading
            def stop(self, httpd):
                threading.Thread(target=httpd.shutdown).start()
        """) == []


class TestSpawnConfigMutable:
    def test_unfrozen_dataclass_flagged(self):
        assert codes(lint("""\
            from dataclasses import dataclass
            @dataclass
            class WorkerConfig:
                shard: int
        """)) == ["spawn-config-mutable"]

    def test_mutable_field_flagged(self):
        assert codes(lint("""\
            from dataclasses import dataclass
            @dataclass(frozen=True)
            class WorkerConfig:
                hooks: list
        """)) == ["spawn-config-mutable"]

    def test_frozen_immutable_fields_pass(self):
        assert lint("""\
            from dataclasses import dataclass
            @dataclass(frozen=True)
            class WorkerConfig:
                shard: int
                db_path: str | None
                replicas: tuple
        """) == []

    def test_non_config_class_not_checked(self):
        assert lint("""\
            from dataclasses import dataclass
            @dataclass
            class Snapshot:
                rows: list
        """) == []


class TestSyntaxError:
    def test_unparseable_source_reported(self):
        findings = concurrency_source("def broken(:\n", "src/x.py")
        assert codes(findings) == ["syntax-error"]


class TestShippedTree:
    def test_src_is_clean(self):
        """Acceptance: no false positives on the shipped sources."""
        findings = concurrency_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert findings == []


class TestRuleCatalog:
    CONCURRENCY_RULES = (
        "async-blocking", "bare-acquire", "double-acquire",
        "unguarded-attribute", "spawn-target", "spawn-config-mutable",
    )

    def test_every_rule_documented(self):
        for code in self.CONCURRENCY_RULES:
            assert code in RULE_DOCS
            text = explain_rule(code)
            assert code in text

    def test_known_rule_ids_sorted(self):
        ids = known_rule_ids()
        assert list(ids) == sorted(ids)
        for code in self.CONCURRENCY_RULES:
            assert code in ids
