"""The codebase lint: invariants, baseline workflow, repo gate."""

from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    count_by_severity,
    format_findings,
    lint_paths,
    lint_source,
    load_baseline,
    save_baseline,
    sort_findings,
    split_by_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def codes(findings):
    return [finding.code for finding in findings]


class TestSqliteConnect:
    def test_flagged_outside_storage(self):
        src = "import sqlite3\nconn = sqlite3.connect(':memory:')\n"
        findings = lint_source(src, "src/repro/server/x.py")
        assert codes(findings) == ["sqlite-connect"]
        assert findings[0].line == 2

    def test_allowed_inside_storage(self):
        src = "import sqlite3\nconn = sqlite3.connect(':memory:')\n"
        assert lint_source(src, "src/repro/storage/x.py") == []


class TestDynamicSql:
    def test_fstring_flagged(self):
        src = 'db.execute(f"SELECT * FROM t WHERE id = {x}")\n'
        assert codes(lint_source(src, "src/repro/server/x.py")) \
            == ["dynamic-sql"]

    def test_percent_format_flagged(self):
        src = 'db.query("SELECT %s" % name)\n'
        assert codes(lint_source(src, "src/repro/net/x.py")) \
            == ["dynamic-sql"]

    def test_str_format_flagged(self):
        src = 'db.query_one("SELECT {}".format(name))\n'
        assert codes(lint_source(src, "src/repro/engines/x.py")) \
            == ["dynamic-sql"]

    def test_concat_with_runtime_value_flagged(self):
        src = 'db.execute("SELECT * FROM " + table)\n'
        assert codes(lint_source(src, "src/repro/server/x.py")) \
            == ["dynamic-sql"]

    def test_static_concat_allowed(self):
        src = 'db.execute("SELECT * FROM t " + "WHERE x = ?", (x,))\n'
        assert lint_source(src, "src/repro/server/x.py") == []

    def test_fstring_without_interpolation_allowed(self):
        src = 'db.execute(f"SELECT 1")\n'
        assert lint_source(src, "src/repro/server/x.py") == []

    def test_parameter_bind_allowed(self):
        src = 'db.execute("SELECT * FROM t WHERE id = ?", (x,))\n'
        assert lint_source(src, "src/repro/server/x.py") == []

    def test_allowed_in_translate_and_storage(self):
        src = 'db.execute(f"SELECT * FROM t WHERE id = {x}")\n'
        assert lint_source(src, "src/repro/translate/x.py") == []
        assert lint_source(src, "src/repro/storage/x.py") == []


class TestComposerDynamicSql:
    """The complementary rule inside the SQL-composer layers: f-strings
    that *build* SQL must not interpolate bare values."""

    def test_bare_attribute_in_sql_fstring_flagged(self):
        src = 'sql = f"SELECT * FROM t WHERE col = {c.value}"\n'
        findings = lint_source(src, "src/repro/xquery/structural.py")
        assert codes(findings) == ["dynamic-sql"]
        assert "sql_literal" in findings[0].message

    def test_subscript_interpolation_flagged(self):
        src = 'sql = f"SELECT {cols[0]} FROM t"\n'
        assert codes(lint_source(src, "src/repro/translate/x.py")) \
            == ["dynamic-sql"]

    def test_neutralizer_call_allowed(self):
        src = 'sql = f"SELECT * FROM t WHERE col = {sql_literal(c.value)}"\n'
        assert lint_source(src, "src/repro/xquery/structural.py") == []

    def test_name_interpolation_allowed(self):
        """Prebuilt fragments arrive as plain names — those pass."""
        src = 'sql = f"SELECT {columns} FROM ({inner}) AS nested"\n'
        assert lint_source(src, "src/repro/xquery/structural.py") == []

    def test_error_message_fstring_allowed(self):
        """No SQL keywords in the static text — not a SQL f-string."""
        src = 'raise ValueError(f"unknown element {node.name}")\n'
        assert lint_source(src, "src/repro/xquery/structural.py") == []

    def test_outside_composer_paths_left_to_the_execute_rule(self):
        src = 'sql = f"SELECT * FROM t WHERE col = {c.value}"\n'
        assert lint_source(src, "src/repro/server/x.py") == []


class TestUnboundedCache:
    def test_bare_dict_cache_on_serving_path(self):
        src = ("class S:\n"
               "    def __init__(self):\n"
               "        self._plan_cache = {}\n")
        findings = lint_source(src, "src/repro/server/x.py")
        assert codes(findings) == ["unbounded-cache"]
        assert findings[0].severity == "warning"

    def test_dict_call_flagged_too(self):
        src = "class S:\n    cache: dict = dict()\n"
        assert codes(lint_source(src, "src/repro/net/x.py")) \
            == ["unbounded-cache"]

    def test_non_cache_attribute_allowed(self):
        src = "class S:\n    def __init__(self):\n        self._rows = {}\n"
        assert lint_source(src, "src/repro/server/x.py") == []

    def test_off_serving_path_allowed(self):
        src = "class S:\n    def __init__(self):\n        self._cache = {}\n"
        assert lint_source(src, "src/repro/corpus/x.py") == []

    def test_ordereddict_cache_flagged(self):
        src = ("from collections import OrderedDict\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._reference_cache = OrderedDict()\n")
        assert codes(lint_source(src, "src/repro/net/x.py")) \
            == ["unbounded-cache"]

    def test_qualified_ordereddict_cache_flagged(self):
        src = ("import collections\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._cache = collections.OrderedDict()\n")
        assert codes(lint_source(src, "src/repro/server/x.py")) \
            == ["unbounded-cache"]

    def test_defaultdict_cache_flagged(self):
        src = ("from collections import defaultdict\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._entry_cache = defaultdict(list)\n")
        assert codes(lint_source(src, "src/repro/cluster/x.py")) \
            == ["unbounded-cache"]

    def test_cluster_is_a_serving_path(self):
        src = "class S:\n    def __init__(self):\n        self._cache = {}\n"
        assert codes(lint_source(src, "src/repro/cluster/x.py")) \
            == ["unbounded-cache"]

    def test_annotated_bare_dict_cache_flagged(self):
        src = ("class S:\n"
               "    def __init__(self):\n"
               "        self._reference_cache: dict[str, str] = {}\n")
        assert codes(lint_source(src, "src/repro/net/x.py")) \
            == ["unbounded-cache"]

    def test_bounded_cache_allowed(self):
        src = ("from repro.translate.plan import TranslationCache\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._reference_cache = TranslationCache(64)\n")
        assert lint_source(src, "src/repro/net/x.py") == []


class TestParsing:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def f(:\n", "src/repro/x.py")
        assert codes(findings) == ["syntax-error"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "server").mkdir()
        (tmp_path / "server" / "bad.py").write_text(
            "import sqlite3\nsqlite3.connect('x')\n", encoding="utf-8")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert codes(findings) == ["sqlite-connect"]
        assert findings[0].path == "server/bad.py"


class TestFindingModel:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("fatal", "x", "boom")

    def test_sort_is_severity_then_location(self):
        a = Finding("warning", "w", "m", path="a.py", line=1)
        b = Finding("error", "e", "m", path="z.py", line=9)
        assert sort_findings([a, b]) == [b, a]

    def test_counts_and_format(self):
        findings = [Finding("error", "e", "m", path="a.py", line=1),
                    Finding("warning", "w", "m", path="a.py", line=2)]
        assert count_by_severity(findings) == {"error": 1, "warning": 1,
                                               "info": 0}
        rendered = format_findings(findings)
        assert "a.py:1" in rendered and "2 finding(s)" in rendered
        assert format_findings([]) == "no findings"


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [Finding("error", "e", "msg", path="a.py", line=3)]
        path = tmp_path / "baseline.json"
        save_baseline(path, findings)
        assert load_baseline(path) == {("e", "a.py", 3, "msg")}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_split_partitions_on_exact_key(self):
        old = Finding("error", "e", "msg", path="a.py", line=3)
        moved = Finding("error", "e", "msg", path="a.py", line=4)
        baseline = {old.key()}
        new, grandfathered = split_by_baseline([old, moved], baseline)
        assert new == [moved]
        assert grandfathered == [old]


class TestRepoGate:
    def test_src_has_no_findings_beyond_the_baseline(self):
        """The CI invariant: everything lint finds today is in the
        checked-in baseline — a new violation shows up here first."""
        findings = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        new, _ = split_by_baseline(findings, baseline)
        assert new == [], format_findings(new)

    def test_baseline_entries_carry_file_and_line(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        for code, path, line, _ in baseline:
            assert path.endswith(".py") and line > 0, (code, path)
