"""Deep differential fuzzing (slow): the five-way agreement at scale.

The quick property suite runs 40 examples; this slow-marked pass runs a
few hundred with deeper policies and wider preferences, because the
five-way engine agreement is the load-bearing claim of the reproduction.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.engines import (
    GenericSqlMatchEngine,
    NativeAppelMatchEngine,
    SqlMatchEngine,
    XQueryNativeMatchEngine,
    XTableMatchEngine,
)

from tests.test_property import policies, rulesets

pytestmark = pytest.mark.slow


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(policy=policies(), preference=rulesets())
def test_five_way_agreement_deep(policy, preference):
    engines = [
        NativeAppelMatchEngine(),
        SqlMatchEngine(),
        GenericSqlMatchEngine(),
        XQueryNativeMatchEngine(),
        XTableMatchEngine(complexity_limit=1_000_000),
    ]
    outcomes = {}
    for engine in engines:
        handle = engine.install(policy)
        outcome = engine.match(handle, preference)
        assert not outcome.failed, (engine.name, outcome.error)
        outcomes[engine.name] = (outcome.behavior, outcome.rule_index)
    assert len(set(outcomes.values())) == 1, outcomes
