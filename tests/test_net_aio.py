"""The asyncio front end: protocol parity, batching, idempotency.

The async server must be observationally identical to the threaded one
— same decisions, same error envelopes, same check-log rows — while
servicing concurrent same-preference checks through one micro-batched
``BulkPlan`` round trip.  The differential tests here drive the full
corpus × every JRC level through both front ends and diff the
decisions; the idempotency tests retry a fixed ``check_key`` across
batch boundaries and count log rows.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import (
    VOLGA_POLICY_XML,
    VOLGA_REFERENCE_XML,
    jane_preference,
    volga_policy,
)
from repro.net import protocol
from repro.net.aio import AsyncP3PServer, serve_async
from repro.net.client import HttpClientAgent
from repro.server.policy_server import PolicyServer

from tests.test_net_httpd import raw_request

SITE = "volga.example.com"


@pytest.fixture()
def aio(tmp_path):
    """A disk-backed async server on an ephemeral port, Volga installed."""
    server = serve_async(str(tmp_path / "aio.db"))
    thread = server.run_in_thread()
    agent = HttpClientAgent(server.base_url)
    agent.install_policy(VOLGA_POLICY_XML, site=SITE,
                         reference_file=VOLGA_REFERENCE_XML)
    agent.close()
    yield server
    server.close()
    thread.join(timeout=5)


@pytest.fixture()
def agent(aio):
    with HttpClientAgent(aio.base_url, jane_preference()) as jane:
        yield jane


class TestBasics:
    def test_healthz(self, agent):
        assert agent.health()["status"] == "ok"

    def test_ephemeral_port_bound_before_loop(self, tmp_path):
        server = serve_async(str(tmp_path / "cold.db"))
        try:
            # The socket is bound in the constructor — base_url is
            # valid before serve_forever has ever run.
            assert server.port != 0
            assert str(server.port) in server.base_url
        finally:
            server.close()

    def test_check_decision_matches_threaded(self, aio, agent, tmp_path):
        over_wire = agent.check(SITE, "/catalog/book-1")
        reference = PolicyServer(str(tmp_path / "ref.db"))
        try:
            reference.install_policy(volga_policy(), site=SITE)
            reference.install_reference_file(VOLGA_REFERENCE_XML, SITE)
            local = reference.check(SITE, "/catalog/book-1",
                                    jane_preference())
        finally:
            reference.close()
        assert over_wire.decision == (SITE, "/catalog/book-1",
                                      local.policy_id, local.behavior,
                                      local.rule_index)

    def test_uncovered_uri(self, agent):
        result = agent.check(SITE, "/legacy/old-page")
        assert not result.covered
        assert result.allowed

    def test_metrics_have_batching_block(self, aio, agent):
        agent.check(SITE, "/catalog/metrics-probe")
        metrics = agent.metrics()
        assert metrics["server"]["frontend"] == "async"
        batching = metrics["batching"]
        assert batching["requests"] >= 1
        assert batching["batches"] >= 1
        assert batching["depth_max"] >= 1
        assert 0.0 <= batching["window_occupancy"] <= 1.0
        assert batching["by_preference"]

    def test_wrong_method_is_405(self, aio):
        status, _, body = raw_request(aio, "GET", "/v1/check")
        assert status == 405
        assert json.loads(body)["error"]["code"] == \
            protocol.ERR_METHOD_NOT_ALLOWED

    def test_unknown_preference_hash_is_404(self, aio):
        status, _, body = raw_request(
            aio, "POST", "/v1/check",
            body=protocol.encode({"site": SITE, "uri": "/x",
                                  "preference_hash": "f" * 64}))
        assert status == 404
        assert json.loads(body)["error"]["code"] == \
            protocol.ERR_UNKNOWN_PREFERENCE

    def test_oversized_body_is_413(self, tmp_path):
        server = serve_async(str(tmp_path / "small.db"),
                             max_body_bytes=8192)
        thread = server.run_in_thread()
        try:
            status, _, body = raw_request(
                server, "POST", "/v1/preferences",
                body=b"x" * 16384)
            assert status == 413
            assert json.loads(body)["error"]["code"] == \
                protocol.ERR_PAYLOAD_TOO_LARGE
        finally:
            server.close()
            thread.join(timeout=5)

    def test_reference_fetch_and_revalidate(self, aio):
        status, headers, body = raw_request(
            aio, "GET", f"/w3c/p3p.xml?site={SITE}")
        assert status == 200
        assert body.decode("utf-8") == VOLGA_REFERENCE_XML
        etag = headers["etag"]
        status, _, _ = raw_request(aio, "GET",
                                   f"/w3c/p3p.xml?site={SITE}",
                                   headers={"If-None-Match": etag})
        assert status == 304


class TestCoalescing:
    def test_concurrent_checks_coalesce(self, aio, tmp_path):
        """Concurrent same-preference checks share micro-batches: with
        a generous window, 8 clients × 10 checks must produce far fewer
        batches than requests."""
        jane = jane_preference()
        bootstrap = HttpClientAgent(aio.base_url, jane)
        digest = bootstrap.register_preference()
        bootstrap.check(SITE, "/catalog/item-0")
        bootstrap.close()
        before = aio.batching_snapshot()

        def drive(worker: int) -> None:
            with HttpClientAgent(aio.base_url, jane,
                                 preference_hash=digest) as client:
                for i in range(10):
                    client.check(SITE, f"/catalog/item-{i % 8}")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(drive, range(8)))

        after = aio.batching_snapshot()
        requests = after["requests"] - before["requests"]
        batches = after["batches"] - before["batches"]
        assert requests == 80
        assert batches < requests
        assert after["coalesced"] > before["coalesced"]
        assert after["depth_max"] >= 2


def _install_corpus(base_url: str, entries) -> None:
    with HttpClientAgent(base_url) as admin:
        for site, policy_xml, reference_xml in entries:
            admin.install_policy(policy_xml, site=site,
                                 reference_file=reference_xml)


class TestDifferentialCorpus:
    """async + batched ≡ threaded per-request over corpus × JRC suite."""

    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.bench.harness import cluster_corpus

        return cluster_corpus(corpus_size=12)

    @pytest.fixture(scope="class")
    def reference_server(self, corpus, tmp_path_factory):
        """The in-process oracle: one PolicyServer, per-request checks."""
        path = tmp_path_factory.mktemp("diff") / "oracle.db"
        server = PolicyServer(str(path))
        from repro.p3p.parser import parse_policy

        for site, policy_xml, reference_xml in corpus:
            server.install_policy(parse_policy(policy_xml), site=site)
            server.install_reference_file(reference_xml, site)
        yield server
        server.close()

    @pytest.mark.parametrize("level", sorted(jrc_suite().keys()))
    def test_async_batched_matches_threaded(self, level, corpus,
                                            reference_server, tmp_path):
        preference = jrc_suite()[level]
        requests = [(site, f"/catalog/item-{i % 4}")
                    for i, (site, _, _) in enumerate(corpus * 2)]
        expected = {
            (site, uri): reference_server.check(site, uri, preference)
            for site, uri in requests
        }

        server = serve_async(str(tmp_path / f"diff-{level}.db"),
                             batch_window=0.005)
        thread = server.run_in_thread()
        try:
            _install_corpus(server.base_url, corpus)
            bootstrap = HttpClientAgent(server.base_url, preference)
            digest = bootstrap.register_preference()
            bootstrap.close()

            def drive(chunk):
                decisions = {}
                with HttpClientAgent(server.base_url, preference,
                                     preference_hash=digest) as client:
                    for site, uri in chunk:
                        decisions[(site, uri)] = client.check(site, uri)
                return decisions

            chunks = [requests[i::6] for i in range(6)]
            observed: dict = {}
            with ThreadPoolExecutor(max_workers=6) as pool:
                for result in pool.map(drive, chunks):
                    observed.update(result)
        finally:
            server.close()
            thread.join(timeout=5)

        assert set(observed) == set(expected)
        for key, oracle in expected.items():
            wire = observed[key]
            assert wire.policy_id == oracle.policy_id, key
            assert wire.behavior == oracle.behavior, key
            assert wire.rule_index == oracle.rule_index, key
            assert wire.covered == oracle.covered, key


class TestIdempotency:
    def test_retried_check_key_logs_once_across_batches(self, aio):
        """The same check_key re-sent after the first batch has been
        serviced must still deduplicate: at most one check_log row."""
        jane = jane_preference()
        bootstrap = HttpClientAgent(aio.base_url, jane)
        digest = bootstrap.register_preference()
        bootstrap.close()
        payload = protocol.encode(protocol.CheckRequest(
            site=SITE, uri="/catalog/item-1", preference_hash=digest,
            check_key="fixed-key-aio-001").to_wire())

        first = raw_request(aio, "POST", "/v1/check", body=payload)
        time.sleep(0.05)        # the first batch has long since flushed
        second = raw_request(aio, "POST", "/v1/check", body=payload)
        assert first[0] == 200 and second[0] == 200
        decision_fields = ("site", "uri", "policy_id", "behavior",
                           "rule_index", "covered")
        first_body = json.loads(first[2])
        second_body = json.loads(second[2])
        assert [first_body.get(f) for f in decision_fields] == \
            [second_body.get(f) for f in decision_fields]

        aio.policy_server.flush_log()
        with aio.policy_server.pool.read() as db:
            rows = db.scalar(
                "SELECT COUNT(*) FROM check_log WHERE check_key = ?",
                ("fixed-key-aio-001",))
        assert rows == 1

    def test_batch_of_distinct_keys_all_logged(self, aio, agent):
        agent.check_batch([(SITE, f"/catalog/item-{i}") for i in range(6)])
        aio.policy_server.flush_log()
        with aio.policy_server.pool.read() as db:
            rows = db.scalar(
                "SELECT COUNT(*) FROM check_log WHERE uri LIKE ?",
                ("/catalog/item-%",))
        assert rows >= 6


class TestClusterFrontend:
    def test_async_worker_serves_shard_checks(self, tmp_path):
        from repro.cluster.worker import InProcessWorker, WorkerConfig

        config = WorkerConfig(shard_id=0, role="primary",
                              db_path=str(tmp_path / "shard0.db"),
                              frontend="async")
        worker = InProcessWorker(config).start()
        try:
            assert isinstance(worker.httpd, AsyncP3PServer)
            agent = HttpClientAgent(worker.base_url, jane_preference())
            agent.install_policy(VOLGA_POLICY_XML, site=SITE,
                                 reference_file=VOLGA_REFERENCE_XML)
            result = agent.check(SITE, "/catalog/book-1")
            assert result.covered
            metrics = agent.metrics()
            assert metrics["server"]["frontend"] == "async"
            assert metrics["server"]["shard"] == 0
            agent.close()
        finally:
            worker.terminate()

    def test_async_cluster_end_to_end(self, tmp_path):
        from repro.appel.serializer import serialize_ruleset
        from repro.cluster import ClusterClient, P3PCluster

        appel = serialize_ruleset(jane_preference(), indent=False)
        cluster = P3PCluster(shards=2, replicas=0,
                             db_dir=str(tmp_path / "cluster"),
                             in_process=True, frontend="async").start()
        try:
            client = ClusterClient(cluster.base_url, appel)
            client.install_policy(VOLGA_POLICY_XML, site=SITE,
                                  reference_file=VOLGA_REFERENCE_XML)
            result = client.check(SITE, "/catalog/book-1")
            assert result.covered
            client.close()
        finally:
            cluster.close()
