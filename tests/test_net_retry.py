"""RetryPolicy: bounded backoff, deterministic jitter, deadline budget."""

import pytest

from repro.net import protocol
from repro.net.retry import (
    NO_RETRY,
    RetryDecision,
    RetryPolicy,
    default_classify,
)


class Flaky:
    """A callable that fails *failures* times, then returns a value."""

    def __init__(self, failures, exc_factory, value="ok"):
        self.failures = failures
        self.exc_factory = exc_factory
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return self.value


class FakeClock:
    """Injectable sleep/clock pair: sleeping advances the clock."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds

    def clock(self):
        return self.now


def run(policy, call, **kwargs):
    timer = FakeClock()
    result = policy.run(call, sleep=timer.sleep, clock=timer.clock,
                        **kwargs)
    return result, timer


class TestClassification:
    def test_transport_errors_retry(self):
        assert default_classify(ConnectionResetError()).retry
        assert default_classify(BrokenPipeError()).retry
        assert default_classify(TimeoutError()).retry

    def test_overloaded_retries_and_carries_retry_after(self):
        exc = protocol.ProtocolError(protocol.ERR_OVERLOADED, "shed",
                                     retry_after=2.5)
        decision = default_classify(exc)
        assert decision.retry
        assert decision.retry_after == 2.5

    def test_internal_error_retries(self):
        exc = protocol.ProtocolError(protocol.ERR_INTERNAL, "boom")
        assert default_classify(exc).retry

    def test_deterministic_errors_do_not_retry(self):
        for code in (protocol.ERR_BAD_REQUEST, protocol.ERR_PARSE,
                     protocol.ERR_NOT_FOUND,
                     protocol.ERR_UNKNOWN_PREFERENCE):
            exc = protocol.ProtocolError(code, "no")
            assert not default_classify(exc).retry
        assert not default_classify(ValueError("logic bug")).retry


class TestBackoff:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        delays = [policy.backoff_delay(n) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.1)
        once = policy.backoff_delay(1, key="check-1")
        again = policy.backoff_delay(1, key="check-1")
        assert once == again  # same key, same schedule
        assert 0.1 <= once <= 0.1 * 1.1
        assert policy.backoff_delay(1, key="check-2") != once

    def test_invalid_configuration_is_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestRun:
    def test_success_needs_no_retry(self):
        flaky = Flaky(0, ConnectionResetError)
        result, timer = run(RetryPolicy(), flaky)
        assert result == "ok"
        assert flaky.calls == 1
        assert timer.sleeps == []

    def test_transient_failures_heal(self):
        flaky = Flaky(2, ConnectionResetError)
        result, timer = run(RetryPolicy(max_attempts=4, jitter=0.0),
                            flaky)
        assert result == "ok"
        assert flaky.calls == 3
        assert len(timer.sleeps) == 2

    def test_attempts_are_bounded(self):
        flaky = Flaky(10, ConnectionResetError)
        with pytest.raises(ConnectionResetError):
            run(RetryPolicy(max_attempts=3), flaky)
        assert flaky.calls == 3

    def test_non_retryable_error_propagates_immediately(self):
        flaky = Flaky(10, lambda: protocol.ProtocolError(
            protocol.ERR_BAD_REQUEST, "bad"))
        with pytest.raises(protocol.ProtocolError):
            run(RetryPolicy(max_attempts=5), flaky)
        assert flaky.calls == 1

    def test_retry_after_stretches_the_delay(self):
        flaky = Flaky(1, lambda: protocol.ProtocolError(
            protocol.ERR_OVERLOADED, "shed", retry_after=1.5))
        policy = RetryPolicy(base_delay=0.01, jitter=0.0, deadline=10.0)
        result, timer = run(policy, flaky)
        assert result == "ok"
        assert timer.sleeps == [1.5]

    def test_deadline_refuses_a_sleep_that_would_overrun(self):
        flaky = Flaky(10, lambda: protocol.ProtocolError(
            protocol.ERR_OVERLOADED, "shed", retry_after=60.0))
        policy = RetryPolicy(max_attempts=10, deadline=5.0)
        with pytest.raises(protocol.ProtocolError):
            run(policy, flaky)
        # Attempt 1 failed; the 60 s Retry-After cannot fit in 5 s.
        assert flaky.calls == 1

    def test_on_retry_counts_attempts(self):
        flaky = Flaky(2, ConnectionResetError)
        seen = []
        run(RetryPolicy(jitter=0.0), flaky,
            on_retry=lambda exc, attempt: seen.append(attempt))
        assert seen == [1, 2]

    def test_custom_classifier_wins(self):
        flaky = Flaky(1, ValueError)
        result, _ = run(RetryPolicy(), flaky,
                        classify=lambda exc: RetryDecision(True))
        assert result == "ok"

    def test_no_retry_policy_gives_up_at_once(self):
        flaky = Flaky(1, ConnectionResetError)
        with pytest.raises(ConnectionResetError):
            run(NO_RETRY, flaky)
        assert flaky.calls == 1
