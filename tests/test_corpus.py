"""Workload generators: distribution targets and determinism."""

from repro.appel.analysis import ruleset_stats, validate_ruleset
from repro.corpus.policies import (
    COMPANY_NAMES,
    STATEMENT_PLAN,
    corpus_statistics,
    fortune_corpus,
)
from repro.corpus.preferences import LEVELS, jrc_suite
from repro.p3p.validator import validate_policy


class TestFortuneCorpus:
    """Section 6.2 calibration: '29 companies ... 1.6 to 11.9 KBytes,
    average 4.4 KBytes ... 54 statements (about 2 per policy)'."""

    def test_twenty_nine_policies(self, corpus):
        assert len(corpus) == 29
        assert len(COMPANY_NAMES) == 29

    def test_fifty_four_statements(self, corpus):
        assert sum(p.statement_count() for p in corpus) == 54
        assert sum(STATEMENT_PLAN) == 54

    def test_size_distribution_tracks_paper(self, corpus):
        stats = corpus_statistics(corpus)
        assert 1.0 <= stats.min_kb <= 2.5
        assert 9.0 <= stats.max_kb <= 14.0
        assert 2.5 <= stats.avg_kb <= 5.5
        assert 1.5 <= stats.statements_per_policy <= 2.5

    def test_deterministic_per_seed(self):
        assert fortune_corpus(seed=7) == fortune_corpus(seed=7)

    def test_different_seeds_differ(self):
        assert fortune_corpus(seed=1) != fortune_corpus(seed=2)

    def test_policies_are_structurally_valid(self, corpus):
        for policy in corpus:
            errors = [p for p in validate_policy(policy)
                      if p.severity == "error"]
            assert errors == [], policy.name

    def test_unique_names(self, corpus):
        names = [p.name for p in corpus]
        assert len(names) == len(set(names))

    def test_custom_count(self):
        policies = fortune_corpus(count=5)
        assert len(policies) == 5
        larger = fortune_corpus(count=35)
        assert len(larger) == 35
        assert len({p.name for p in larger}) == 35

    def test_opturi_present_when_opt_in_used(self, corpus):
        for policy in corpus:
            has_opt = any(
                value.required in ("opt-in", "opt-out")
                for statement in policy.statements
                for value in statement.purposes + statement.recipients
            )
            if has_opt:
                assert policy.opturi is not None, policy.name


class TestJrcSuite:
    """Figure 19 calibration."""

    def test_levels_in_figure19_order(self, suite):
        assert tuple(suite) == LEVELS

    def test_rule_counts(self, suite):
        counts = {level: rs.rule_count() for level, rs in suite.items()}
        assert counts == {"Very High": 10, "High": 7, "Medium": 4,
                          "Low": 2, "Very Low": 1}

    def test_sizes_roughly_track_figure19(self, suite):
        # Paper sizes: 3.1 / 2.8 / 2.1 / 0.9 / 0.3 KB.
        sizes = {level: ruleset_stats(rs).size_kb
                 for level, rs in suite.items()}
        assert 2.0 <= sizes["Very High"] <= 4.5
        assert 1.2 <= sizes["High"] <= 3.5
        assert 1.2 <= sizes["Medium"] <= 3.0
        assert 0.3 <= sizes["Low"] <= 1.2
        assert sizes["Very Low"] <= 0.5

    def test_statically_valid(self, suite):
        for rs in suite.values():
            assert [p for p in validate_ruleset(rs)
                    if p.severity == "error"] == []

    def test_all_but_very_low_have_block_rules(self, suite):
        for level, rs in suite.items():
            behaviors = set(rs.behaviors())
            if level == "Very Low":
                assert behaviors == {"request"}
            else:
                assert "block" in behaviors

    def test_deterministic(self):
        first = {level: rs for level, rs in jrc_suite().items()}
        second = jrc_suite()
        assert first == second

    def test_stricter_levels_block_more_of_the_corpus(self, suite, corpus):
        """Monotonicity: Very High blocks at least as many corpus policies
        as High, which blocks at least as many as Low."""
        from repro.appel.engine import AppelEngine

        engine = AppelEngine()
        blocks = {}
        for level in ("Very High", "High", "Low", "Very Low"):
            blocks[level] = sum(
                1 for policy in corpus
                if engine.evaluate(policy, suite[level]).behavior == "block"
            )
        assert blocks["Very High"] >= blocks["High"] >= blocks["Low"] \
            >= blocks["Very Low"]
        assert blocks["Very High"] > 0
        assert blocks["Very Low"] == 0
