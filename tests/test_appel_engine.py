"""Native APPEL engine semantics: connectives, defaults, evaluation order.

These tests pin the reference semantics that every other engine must
reproduce (the differential tests in test_property.py check the others
against this one).
"""

import pytest

from repro.appel.engine import (
    AppelEngine,
    SchemaDocumentResolver,
    augment_document,
)
from repro.appel.model import expression, rule, ruleset
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.serializer import policy_to_element
from repro.vocab import basedata


def _policy(*statements: Statement) -> Policy:
    return Policy(statements=statements)


def _statement(purposes=(), recipients=(), retention=None, data=(),
               **kwargs) -> Statement:
    return Statement(
        purposes=tuple(PurposeValue(*p) if isinstance(p, tuple)
                       else PurposeValue(p) for p in purposes),
        recipients=tuple(RecipientValue(*r) if isinstance(r, tuple)
                         else RecipientValue(r) for r in recipients),
        retention=retention,
        data=tuple(data),
        **kwargs,
    )


def _fires(engine: AppelEngine, policy: Policy, *exprs, connective="and"):
    """Does a single block rule with the given body fire against policy?"""
    rs = ruleset(rule("block", *exprs, connective=connective),
                 rule("request"))
    return engine.evaluate(policy, rs).behavior == "block"


@pytest.fixture()
def engine():
    return AppelEngine()


class TestBasicMatching:
    def test_empty_rule_always_fires(self, engine):
        rs = ruleset(rule("request"))
        result = engine.evaluate(_policy(_statement()), rs)
        assert result.behavior == "request"
        assert result.rule_index == 0

    def test_element_existence(self, engine):
        policy = _policy(_statement(purposes=["current"]))
        assert _fires(engine, policy,
                      expression("POLICY", expression("STATEMENT")))

    def test_missing_element_no_match(self, engine):
        policy = _policy(_statement())  # no PURPOSE element
        assert not _fires(
            engine, policy,
            expression("POLICY",
                       expression("STATEMENT", expression("PURPOSE"))),
        )

    def test_value_element_matching(self, engine):
        policy = _policy(_statement(purposes=["current", "admin"]))
        body = expression("POLICY",
                          expression("STATEMENT",
                                     expression("PURPOSE",
                                                expression("admin"))))
        assert _fires(engine, policy, body)

    def test_top_level_non_policy_never_matches(self, engine):
        policy = _policy(_statement())
        assert not _fires(engine, policy, expression("STATEMENT"))

    def test_no_rule_fires_returns_none(self, engine):
        rs = ruleset(rule("block", expression("POLICY",
                                              expression("TEST"))))
        result = engine.evaluate(_policy(_statement()), rs)
        assert result.behavior is None
        assert result.rule_index is None


class TestEvaluationOrder:
    """Section 2.2: 'Rules are evaluated in the order in which they are
    specified' and the first firing rule decides."""

    def test_first_firing_rule_wins(self, engine):
        policy = _policy(_statement(purposes=["telemarketing"]))
        rs = ruleset(
            rule("limited", expression("POLICY", expression("STATEMENT"))),
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression(
                                                      "telemarketing"))))),
            rule("request"),
        )
        result = engine.evaluate(policy, rs)
        assert result.behavior == "limited"
        assert result.rule_index == 0

    def test_later_rule_fires_when_earlier_do_not(self, engine):
        policy = _policy(_statement(purposes=["current"]))
        rs = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("admin"))))),
            rule("request"),
        )
        result = engine.evaluate(policy, rs)
        assert result.rule_index == 1


class TestAttributeDefaults:
    """The crux of the paper's Section 2.2 walk-through."""

    def test_omitted_policy_required_presumed_always(self, engine):
        # Policy says <contact/>; rule demands required="always" -> match.
        policy = _policy(_statement(purposes=["contact"]))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact",
                                             required="always"))),
        )
        assert _fires(engine, policy, body)

    def test_opt_in_does_not_match_always(self, engine):
        policy = _policy(_statement(purposes=[("contact", "opt-in")]))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact",
                                             required="always"))),
        )
        assert not _fires(engine, policy, body)

    def test_opt_in_matches_opt_in(self, engine):
        policy = _policy(_statement(purposes=[("contact", "opt-in")]))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact",
                                             required="opt-in"))),
        )
        assert _fires(engine, policy, body)

    def test_unknown_attribute_never_matches(self, engine):
        policy = _policy(_statement(purposes=["contact"]))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact", banana="yes"))),
        )
        assert not _fires(engine, policy, body)


class TestConnectives:
    """All six connectives (Section 2.2)."""

    @pytest.fixture()
    def two_purpose_policy(self):
        return _policy(_statement(purposes=["admin", "develop"]))

    def _purpose_body(self, connective, *names):
        return expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  *[expression(n) for n in names],
                                  connective=connective)),
        )

    def test_and_all_present(self, engine, two_purpose_policy):
        assert _fires(engine, two_purpose_policy,
                      self._purpose_body("and", "admin", "develop"))

    def test_and_one_missing(self, engine, two_purpose_policy):
        assert not _fires(engine, two_purpose_policy,
                          self._purpose_body("and", "admin", "contact"))

    def test_or_one_present(self, engine, two_purpose_policy):
        assert _fires(engine, two_purpose_policy,
                      self._purpose_body("or", "contact", "develop"))

    def test_or_none_present(self, engine, two_purpose_policy):
        assert not _fires(engine, two_purpose_policy,
                          self._purpose_body("or", "contact", "historical"))

    def test_non_and_fires_when_not_all_present(self, engine,
                                                two_purpose_policy):
        assert _fires(engine, two_purpose_policy,
                      self._purpose_body("non-and", "admin", "contact"))

    def test_non_and_quiet_when_all_present(self, engine,
                                            two_purpose_policy):
        assert not _fires(engine, two_purpose_policy,
                          self._purpose_body("non-and", "admin", "develop"))

    def test_non_or_fires_when_none_present(self, engine,
                                            two_purpose_policy):
        assert _fires(engine, two_purpose_policy,
                      self._purpose_body("non-or", "contact", "historical"))

    def test_non_or_quiet_when_one_present(self, engine,
                                           two_purpose_policy):
        assert not _fires(engine, two_purpose_policy,
                          self._purpose_body("non-or", "admin", "contact"))

    def test_non_or_requires_element_to_exist(self, engine):
        # A statement with no PURPOSE element cannot match PURPOSE[non-or].
        policy = _policy(_statement(recipients=["ours"]))
        assert not _fires(engine, policy,
                          self._purpose_body("non-or", "contact"))

    def test_and_exact_all_and_only(self, engine, two_purpose_policy):
        """Section 2.2: '(a) all of the contained expressions can be found
        ... and (b) the policy contains only elements listed in the rule'"""
        assert _fires(engine, two_purpose_policy,
                      self._purpose_body("and-exact", "admin", "develop"))

    def test_and_exact_fails_on_extra_element(self, engine):
        policy = _policy(_statement(purposes=["admin", "develop",
                                              "current"]))
        assert not _fires(engine, policy,
                          self._purpose_body("and-exact", "admin",
                                             "develop"))

    def test_and_exact_allows_listed_superset(self, engine,
                                              two_purpose_policy):
        # Listing more than the policy has: part (a) fails.
        assert not _fires(engine, two_purpose_policy,
                          self._purpose_body("and-exact", "admin",
                                             "develop", "contact"))

    def test_or_exact_subset_ok(self, engine, two_purpose_policy):
        assert _fires(engine, two_purpose_policy,
                      self._purpose_body("or-exact", "admin", "develop",
                                         "contact"))

    def test_or_exact_fails_on_unlisted_element(self, engine):
        policy = _policy(_statement(purposes=["admin", "current"]))
        assert not _fires(engine, policy,
                          self._purpose_body("or-exact", "admin"))


class TestJaneWalkthrough:
    """Section 2.2's full narrative, on the real figures."""

    def test_volga_conforms(self, engine, volga, jane):
        result = engine.evaluate(volga, jane)
        assert result.behavior == "request"
        assert result.rule_index == 2

    def test_dropping_opt_in_fires_rule_one(self, engine, jane):
        from repro.corpus.volga import VOLGA_POLICY_NO_OPTIN_XML
        from repro.p3p.parser import parse_policy

        result = engine.evaluate(parse_policy(VOLGA_POLICY_NO_OPTIN_XML),
                                 jane)
        assert result.behavior == "block"
        assert result.rule_index == 0

    def test_unrelated_recipient_fires_rule_two(self, engine, jane):
        from repro.corpus.volga import VOLGA_POLICY_UNRELATED_XML
        from repro.p3p.parser import parse_policy

        result = engine.evaluate(parse_policy(VOLGA_POLICY_UNRELATED_XML),
                                 jane)
        assert result.behavior == "block"
        assert result.rule_index == 1


class TestAugmentation:
    def test_augment_document_adds_base_categories(self, volga):
        root = policy_to_element(volga)
        added = augment_document(root)
        assert added > 0

    def test_augmented_policy_matches_category_rules(self, engine):
        # #user.bdate carries no inline categories but is 'demographic' in
        # the base schema; the engine must see that category.
        policy = _policy(_statement(
            purposes=["current"],
            data=[DataItem("#user.bdate")],
        ))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("DATA-GROUP",
                                  expression("DATA",
                                             expression("CATEGORIES",
                                                        expression(
                                                            "demographic"))))),
        )
        assert _fires(engine, policy, body)

    def test_augment_disabled_misses_category_rules(self):
        engine = AppelEngine(augment=False)
        policy = _policy(_statement(data=[DataItem("#user.bdate")]))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("DATA-GROUP",
                                  expression("DATA",
                                             expression("CATEGORIES",
                                                        expression(
                                                            "demographic"))))),
        )
        assert not _fires(engine, policy, body)

    def test_resolver_agrees_with_index(self):
        resolver = SchemaDocumentResolver()
        for ref in ("#user.name", "#user.home-info.postal",
                    "#dynamic.clickstream", "#user", "#dynamic.miscdata"):
            assert resolver.categories_for(ref) == \
                basedata.categories_for_ref(ref)

    def test_resolver_knows(self):
        resolver = SchemaDocumentResolver()
        assert resolver.knows("#user.name")
        assert not resolver.knows("#corp.secret")

    def test_prepared_policy_reuse(self, engine, volga, jane):
        prepared = engine.prepare(volga)
        assert prepared.categories_added > 0
        result = engine.evaluate_prepared(prepared, jane)
        assert result.behavior == "request"
