"""`audit_corpus` against a cluster replica: the plan audit passes on
a backup-refreshed copy of a primary, and the read-only write-set
contract flags the statement a replica must never run."""

import pytest

from repro.analysis import (
    StatementContract,
    audit_corpus,
    check_statement,
)
from repro.cluster.replica import ShardReplica
from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import jrc_suite
from repro.server.policy_server import PolicyServer
from repro.storage.database import Database


@pytest.fixture(scope="module")
def policies():
    return fortune_corpus(seed=2003)[:6]


@pytest.fixture(scope="module")
def replica_path(tmp_path_factory, policies):
    """A replica file refreshed once from a populated primary."""
    root = tmp_path_factory.mktemp("cluster")
    primary_path = str(root / "primary.db")
    replica = str(root / "replica.db")
    with PolicyServer(primary_path) as primary:
        for index, policy in enumerate(policies):
            primary.install_policy(policy,
                                   site=f"site{index}.example.com")
        with ShardReplica(primary_path, replica) as shard:
            assert shard.refresh()
            assert shard.generation == 1
            shard.policy_server.close()
    return replica


class TestReplicaAudit:
    def test_audit_passes_on_refreshed_copy(self, replica_path,
                                            policies):
        replica_db = Database(replica_path)
        try:
            report = audit_corpus(policies, jrc_suite(), db=replica_db)
        finally:
            replica_db.close()
        assert report.ok
        assert report.findings == ()
        assert report.policies == len(policies)
        assert report.preferences == len(jrc_suite())
        assert report.plans_explained >= len(jrc_suite())

    def test_audit_leaves_the_replica_untouched(self, replica_path,
                                                policies):
        """The audit's pledge: pure reads, safe on a read-only tier."""
        before = Database(replica_path)
        counts_before = {
            table: before.scalar(f"SELECT COUNT(*) FROM {table}")
            for table in before.table_names()}
        before.close()

        replica_db = Database(replica_path)
        try:
            audit_corpus(policies, jrc_suite(), db=replica_db)
        finally:
            replica_db.close()

        after = Database(replica_path)
        counts_after = {
            table: after.scalar(f"SELECT COUNT(*) FROM {table}")
            for table in after.table_names()}
        after.close()
        assert counts_after == counts_before

    def test_audit_sees_the_primary_corpus(self, replica_path,
                                           policies):
        replica_db = Database(replica_path)
        try:
            names = [row["name"] for row in replica_db.query(
                "SELECT name FROM policy ORDER BY policy_id")]
        finally:
            replica_db.close()
        assert names == [policy.name for policy in policies]


class TestReplicaWriteSet:
    def test_seeded_replica_write_is_flagged(self, replica_path):
        """The read-only write-set rule, exercised against the actual
        replica schema: a decision-cache write-back — legal on the
        primary — is an illegal-write on the replica tier."""
        replica_db = Database(replica_path)
        try:
            findings = check_statement(replica_db, StatementContract(
                where="replica/decision-write-back", binds=6,
                sql="INSERT OR REPLACE INTO decision_cache "
                    "(pref_hash, policy_id, policy_version, behavior, "
                    "rule_index, computed_at) VALUES (?, ?, ?, ?, ?, ?)"))
        finally:
            replica_db.close()
        assert [f.code for f in findings] == ["illegal-write"]
        assert "read-only tier" in findings[0].message

    def test_replica_read_paths_pass(self, replica_path):
        from repro.storage.decision_cache import DecisionCache

        replica_db = Database(replica_path)
        try:
            findings = check_statement(replica_db, StatementContract(
                where="replica/decision-lookup", binds=2,
                sql=DecisionCache.LOOKUP_SQL))
        finally:
            replica_db.close()
        assert findings == []
