"""Policy version diffs."""

from dataclasses import replace

from repro.p3p.diff import diff_policies
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)


def _base() -> Policy:
    return Policy(
        name="shop",
        access="contact-and-other",
        statements=(
            Statement(
                purposes=(PurposeValue("current"),
                          PurposeValue("contact", "opt-in")),
                recipients=(RecipientValue("ours"),),
                retention="stated-purpose",
                data=(DataItem("#user.name"),),
            ),
        ),
    )


class TestNoChanges:
    def test_identical_policies(self):
        diff = diff_policies(_base(), _base())
        assert diff.empty
        assert diff.render() == "no privacy-relevant changes"
        assert diff.tightens_privacy() is None


class TestValueChanges:
    def test_purpose_added(self):
        new = _base()
        statement = replace(
            new.statements[0],
            purposes=new.statements[0].purposes
            + (PurposeValue("telemarketing"),),
        )
        diff = diff_policies(_base(), replace(new, statements=(statement,)))
        assert not diff.empty
        rendered = diff.render()
        assert "purpose 'telemarketing' added" in rendered
        assert diff.tightens_privacy() is False

    def test_purpose_removed(self):
        old = _base()
        statement = replace(old.statements[0],
                            purposes=(PurposeValue("current"),))
        diff = diff_policies(old, replace(old, statements=(statement,)))
        assert "purpose 'contact' removed" in diff.render()
        assert diff.tightens_privacy() is True

    def test_consent_tightened(self):
        old = _base()
        statement = replace(
            old.statements[0],
            purposes=(PurposeValue("current"),
                      PurposeValue("contact", "always")),
        )
        # going FROM always TO opt-in is a privacy improvement
        diff = diff_policies(replace(old, statements=(statement,)), old)
        assert "'always' -> 'opt-in'" in diff.render()
        assert diff.tightens_privacy() is True

    def test_consent_loosened(self):
        old = _base()
        statement = replace(
            old.statements[0],
            purposes=(PurposeValue("current"),
                      PurposeValue("contact", "always")),
        )
        diff = diff_policies(old, replace(old, statements=(statement,)))
        assert diff.tightens_privacy() is False

    def test_recipient_added(self):
        old = _base()
        statement = replace(
            old.statements[0],
            recipients=(RecipientValue("ours"),
                        RecipientValue("unrelated")),
        )
        diff = diff_policies(old, replace(old, statements=(statement,)))
        assert "recipient 'unrelated' added" in diff.render()


class TestStructuralChanges:
    def test_data_added_and_removed(self):
        old = _base()
        statement = replace(
            old.statements[0],
            data=(DataItem("#user.bdate"),),
        )
        diff = diff_policies(old, replace(old, statements=(statement,)))
        rendered = diff.render()
        assert "now collects #user.bdate" in rendered
        assert "no longer collects #user.name" in rendered
        assert diff.tightens_privacy() is None  # mixed

    def test_retention_change(self):
        old = _base()
        statement = replace(old.statements[0], retention="indefinitely")
        diff = diff_policies(old, replace(old, statements=(statement,)))
        assert "retention 'stated-purpose' -> 'indefinitely'" in \
            diff.render()

    def test_statement_added(self):
        old = _base()
        new = old.with_statement(Statement(non_identifiable=True))
        diff = diff_policies(old, new)
        assert diff.statements_added == (1,)
        assert diff.tightens_privacy() is False

    def test_statement_removed(self):
        old = _base().with_statement(Statement(non_identifiable=True))
        diff = diff_policies(old, _base())
        assert diff.statements_removed == (1,)
        assert diff.tightens_privacy() is True

    def test_access_and_disputes_changes(self):
        from repro.p3p.model import Disputes

        old = _base()
        new = replace(old, access="none",
                      disputes=(Disputes(resolution_type="service"),))
        diff = diff_policies(old, new)
        rendered = diff.render()
        assert "access 'contact-and-other' -> 'none'" in rendered
        assert "dispute resolution added" in rendered


class TestAgainstVersionStore:
    def test_diff_between_stored_versions(self, volga):
        """Diffing works on reconstructed versions from the store."""
        from repro.storage import VersionedPolicyStore

        store = VersionedPolicyStore()
        store.install(volga)
        statement = replace(volga.statements[1],
                            retention="indefinitely")
        revised = replace(volga, statements=(volga.statements[0],
                                             statement))
        store.install(revised)

        old = store.version("volga", 1)
        new = store.version("volga", 2)
        diff = diff_policies(old, new)
        assert "retention 'business-practices' -> 'indefinitely'" in \
            diff.render()
