"""Behavior-to-action mapping (request / limited / block / prompt)."""

from dataclasses import replace

from repro.appel.model import expression, rule, ruleset
from repro.appel.engine import AppelEngine
from repro.p3p.model import DataItem
from repro.server.decisions import AgentAction, decide, optional_refs


class TestOptionalRefs:
    def test_no_optional_data(self, volga):
        assert optional_refs(volga) == ()

    def test_optional_items_collected(self, volga):
        statement = volga.statements[0]
        data = tuple(
            replace(item, optional="yes")
            if item.ref == "#user.home-info.postal" else item
            for item in statement.data
        )
        policy = replace(volga,
                         statements=(replace(statement, data=data),)
                         + volga.statements[1:])
        assert optional_refs(policy) == ("#user.home-info.postal",)

    def test_duplicates_collapsed(self, volga):
        statement = volga.statements[0]
        extra = DataItem("#user.bdate", optional="yes")
        policy = replace(
            volga,
            statements=(
                replace(statement, data=statement.data + (extra, extra)),
            ),
        )
        assert optional_refs(policy).count("#user.bdate") == 1


class TestDecide:
    def test_request_proceeds(self, volga):
        action = decide("request", volga)
        assert action.proceed
        assert not action.withhold_refs
        assert not action.prompt_user

    def test_block_stops(self, volga):
        action = decide("block", volga)
        assert not action.proceed

    def test_limited_withholds_optional(self, volga):
        statement = volga.statements[0]
        data = tuple(replace(item, optional="yes")
                     for item in statement.data)
        policy = replace(volga, statements=(
            replace(statement, data=data),) + volga.statements[1:])
        action = decide("limited", policy)
        assert action.proceed
        assert action.limited
        assert "#user.name" in action.withhold_refs

    def test_limited_without_optional_data_still_proceeds(self, volga):
        action = decide("limited", volga)
        assert action.proceed
        assert not action.limited

    def test_prompt_flag_propagates(self, volga):
        prompting = rule("request", prompt=True)
        action = decide("request", volga, fired_rule=prompting)
        assert action.prompt_user

    def test_undecided_defaults_to_block(self, volga):
        action = decide(None, volga)
        assert not action.proceed
        assert action.prompt_user

    def test_undecided_can_proceed_when_configured(self, volga):
        assert decide(None, volga, undecided_proceeds=True).proceed

    def test_custom_behavior_prompts(self, volga):
        action = decide("shrug", volga)
        assert not action.proceed
        assert action.prompt_user
        assert "shrug" in action.reason


class TestEndToEndLimited:
    def test_limited_rule_through_engine(self, volga):
        """A 'limited' rule fires and the agent withholds optional data."""
        statement = volga.statements[0]
        data = tuple(
            replace(item, optional="yes")
            if item.ref == "#dynamic.miscdata" else item
            for item in statement.data
        )
        policy = replace(volga,
                         statements=(replace(statement, data=data),)
                         + volga.statements[1:])
        preference = ruleset(
            rule("limited",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("current")))),
                 prompt=True),
            rule("request"),
        )
        outcome = AppelEngine().evaluate(policy, preference)
        assert outcome.behavior == "limited"
        action = decide(outcome.behavior, policy,
                        fired_rule=preference.rules[outcome.rule_index])
        assert action.proceed
        assert action.withhold_refs == ("#dynamic.miscdata",)
        assert action.prompt_user
