"""CLI: every subcommand through main(argv)."""

import pytest

from repro.appel.serializer import serialize_ruleset
from repro.cli import main
from repro.corpus.volga import VOLGA_POLICY_XML
from repro.corpus.preferences import low_preference


@pytest.fixture()
def policy_file(tmp_path):
    path = tmp_path / "policy.xml"
    path.write_text(VOLGA_POLICY_XML, encoding="utf-8")
    return str(path)


@pytest.fixture()
def preference_file(tmp_path):
    path = tmp_path / "pref.xml"
    path.write_text(serialize_ruleset(low_preference()), encoding="utf-8")
    return str(path)


class TestValidate:
    def test_valid_policy(self, policy_file, capsys):
        assert main(["validate", policy_file]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_invalid_policy(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<POLICY discuri='http://x/p'></POLICY>",
                        encoding="utf-8")
        assert main(["validate", str(path)]) == 1
        assert "no STATEMENT" in capsys.readouterr().out

    def test_unparseable_policy(self, tmp_path, capsys):
        path = tmp_path / "broken.xml"
        path.write_text("<POLICY", encoding="utf-8")
        assert main(["validate", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestShred:
    def test_in_memory(self, policy_file, capsys):
        assert main(["shred", policy_file]) == 0
        out = capsys.readouterr().out
        assert "statements=2" in out

    def test_to_file(self, policy_file, tmp_path, capsys):
        db_path = str(tmp_path / "policies.db")
        assert main(["shred", policy_file, "-o", db_path]) == 0
        import sqlite3

        connection = sqlite3.connect(db_path)
        count = connection.execute(
            "SELECT COUNT(*) FROM statement").fetchone()[0]
        assert count == 2


class TestTranslate:
    def test_sql_dialect(self, preference_file, capsys):
        assert main(["translate", preference_file]) == 0
        out = capsys.readouterr().out
        assert "SELECT 'block'" in out
        assert "FROM purpose" in out

    def test_generic_dialect(self, preference_file, capsys):
        assert main(["translate", preference_file,
                     "--dialect", "sql-generic"]) == 0
        assert "FROM telemarketing" in capsys.readouterr().out

    def test_xquery_dialect(self, preference_file, capsys):
        assert main(["translate", preference_file,
                     "--dialect", "xquery"]) == 0
        assert 'document("applicable-policy")' in capsys.readouterr().out


class TestMatch:
    @pytest.mark.parametrize("engine", ["appel", "sql", "sql-generic",
                                        "xquery", "xquery-native"])
    def test_engines(self, engine, policy_file, preference_file, capsys):
        assert main(["match", policy_file, preference_file,
                     "--engine", engine]) == 0
        assert "behavior=request" in capsys.readouterr().out

    def test_block_exit_code(self, policy_file, tmp_path, capsys):
        from repro.corpus.preferences import very_high_preference

        pref = tmp_path / "vh.xml"
        pref.write_text(serialize_ruleset(very_high_preference()),
                        encoding="utf-8")
        assert main(["match", policy_file, str(pref)]) == 3
        assert "behavior=block" in capsys.readouterr().out

    def test_match_all_runs_the_corpus(self, preference_file, capsys):
        assert main(["match", "--all", preference_file,
                     "--corpus-size", "6"]) == 0
        out = capsys.readouterr().out
        assert "6 policies" in out
        assert "6 decisions materialized" in out
        assert "6 hit(s), 0 miss(es)" in out

    def test_match_without_preference_errors(self, policy_file, capsys):
        assert main(["match", policy_file]) == 2
        assert "PREFERENCE file is required" in capsys.readouterr().err


class TestCorpus:
    def test_emits_files(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert main(["corpus", "-o", str(out_dir)]) == 0
        policies = list(out_dir.glob("policy-*.xml"))
        preferences = list(out_dir.glob("preference-*.xml"))
        assert len(policies) == 29
        assert len(preferences) == 5
        assert "29 policies" in capsys.readouterr().out


class TestNotice:
    def test_notice_renders(self, policy_file, capsys):
        assert main(["notice", policy_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Privacy notice for volga")
        assert "only with your consent" in out


class TestExplain:
    def test_explain_request(self, policy_file, preference_file, capsys):
        assert main(["explain", policy_file, preference_file]) == 0
        out = capsys.readouterr().out
        assert "outcome: 'request'" in out
        assert "did not fire" in out

    def test_explain_block_exit_code(self, policy_file, tmp_path, capsys):
        from repro.corpus.preferences import very_high_preference

        pref = tmp_path / "vh.xml"
        pref.write_text(serialize_ruleset(very_high_preference()),
                        encoding="utf-8")
        assert main(["explain", policy_file, str(pref)]) == 3
        assert "FIRED" in capsys.readouterr().out


class TestReport:
    def test_corpus_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Vocabulary census" in out
        assert "Consent profile" in out
        assert "Very High" in out

    def test_report_on_files(self, policy_file, capsys):
        assert main(["report", policy_file]) == 0
        assert "1 policies" in capsys.readouterr().out


class TestBench:
    def test_fast_experiments(self, capsys):
        assert main(["bench", "dataset-stats", "preference-stats"]) == 0
        out = capsys.readouterr().out
        assert "Dataset" in out
        assert "Figure 19" in out

    def test_unknown_experiment(self, capsys):
        assert main(["bench", "figure99"]) == 2


class TestServe:
    """The serve subcommand, run on a worker thread via the test hook."""

    def _run_server(self, argv, monkeypatch):
        import threading

        from repro import cli

        started = threading.Event()
        state = {}

        def hook(httpd):
            state["httpd"] = httpd
            started.set()

        monkeypatch.setattr(cli, "_SERVE_STARTED_HOOK", hook)

        def target():
            state["exit"] = cli.main(argv)

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        assert started.wait(timeout=10), "server never started"
        return thread, state

    def test_serve_answers_and_shuts_down_cleanly(self, tmp_path,
                                                  monkeypatch, capsys):
        from repro.net.client import HttpClientAgent

        ready = tmp_path / "ready"
        thread, state = self._run_server(
            ["serve", "--db", str(tmp_path / "serve.db"),
             "--port", "0", "--ready-file", str(ready)],
            monkeypatch)
        httpd = state["httpd"]
        try:
            host, port = ready.read_text(encoding="utf-8").split()
            assert int(port) == httpd.port
            with HttpClientAgent(f"http://{host}:{port}") as agent:
                assert agent.wait_until_healthy(timeout=5)
                assert agent.health()["status"] == "ok"
        finally:
            httpd.shutdown()
            thread.join(timeout=10)
        assert state["exit"] == 0
        out = capsys.readouterr().out
        assert "serving on http://" in out
        assert "check-log rows durable" in out

    def test_serve_flushes_checks_before_exit(self, tmp_path,
                                              monkeypatch):
        import sqlite3

        from repro.corpus.volga import (VOLGA_POLICY_XML,
                                        VOLGA_REFERENCE_XML,
                                        jane_preference)
        from repro.net.client import HttpClientAgent

        db = tmp_path / "durable.db"
        thread, state = self._run_server(
            ["serve", "--db", str(db), "--port", "0",
             "--max-inflight", "8"], monkeypatch)
        httpd = state["httpd"]
        try:
            with HttpClientAgent(httpd.base_url,
                                 jane_preference()) as agent:
                agent.install_policy(
                    VOLGA_POLICY_XML, site="volga.example.com",
                    reference_file=VOLGA_REFERENCE_XML)
                for index in range(3):
                    agent.check("volga.example.com", f"/catalog/{index}")
            assert httpd.admission.max_inflight == 8
        finally:
            httpd.shutdown()
            thread.join(timeout=10)
        assert state["exit"] == 0
        connection = sqlite3.connect(str(db))
        try:
            count = connection.execute(
                "SELECT COUNT(*) FROM check_log").fetchone()[0]
        finally:
            connection.close()
        assert count == 3

    def test_bench_http_load_listed(self):
        from repro import cli

        assert "http-load" in cli._BENCH_EXPERIMENTS


@pytest.fixture()
def shadowed_preference_file(tmp_path):
    """Catch-all first: the second rule is unreachable."""
    from repro.appel.model import expression, rule, ruleset

    rs = ruleset(
        rule("request"),
        rule("block", expression(
            "POLICY", expression("STATEMENT", expression(
                "PURPOSE", expression("telemarketing"),
                connective="or")))),
    )
    path = tmp_path / "shadowed.xml"
    path.write_text(serialize_ruleset(rs), encoding="utf-8")
    return str(path)


class TestLint:
    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "ok.py").write_text(
            'db.execute("SELECT * FROM t WHERE id = ?", (x,))\n',
            encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "ok.py"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_new_finding_exits_nonzero(self, tmp_path, capsys,
                                       monkeypatch):
        server = tmp_path / "server"
        server.mkdir()
        (server / "bad.py").write_text(
            "import sqlite3\nsqlite3.connect(':memory:')\n",
            encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "server"]) == 1
        out = capsys.readouterr().out
        assert "sqlite-connect" in out and "bad.py:2" in out

    def test_baseline_grandfathers_findings(self, tmp_path, capsys,
                                            monkeypatch):
        server = tmp_path / "server"
        server.mkdir()
        (server / "bad.py").write_text(
            "import sqlite3\nsqlite3.connect(':memory:')\n",
            encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "server", "--update-baseline"]) == 0
        assert main(["lint", "server"]) == 0
        assert "grandfathered" in capsys.readouterr().out
        # A fresh violation still gates even with the baseline present.
        (server / "worse.py").write_text(
            'db.execute(f"SELECT {x}")\n', encoding="utf-8")
        assert main(["lint", "server"]) == 1


class TestAudit:
    def test_explicit_files_clean(self, policy_file, preference_file,
                                  capsys):
        assert main(["audit", policy_file,
                     "-p", preference_file, "--no-literal"]) == 0
        out = capsys.readouterr().out
        assert "full scans of hot tables: 0" in out
        assert "differential OK" in out

    def test_literal_pipeline_audited_by_default(self, policy_file,
                                                 preference_file, capsys):
        assert main(["audit", policy_file, "-p", preference_file]) == 0
        assert "statement(s) explained" in capsys.readouterr().out

    def test_unreachable_rule_reported(self, policy_file,
                                       shadowed_preference_file, capsys):
        code = main(["audit", policy_file,
                     "-p", shadowed_preference_file, "--no-literal"])
        out = capsys.readouterr().out
        assert "unreachable-rule" in out
        assert "differential OK" in out
        assert code == 0  # informational: the plans themselves are clean


class TestPreferenceLoadWarnings:
    def test_translate_prints_lint_to_stderr(self, tmp_path, capsys,
                                             shadowed_preference_file):
        assert main(["translate", shadowed_preference_file]) == 0
        err = capsys.readouterr().err
        assert "unreachable-rule" in err

    def test_match_prints_lint_to_stderr(self, policy_file, capsys,
                                         shadowed_preference_file):
        main(["match", policy_file, shadowed_preference_file])
        assert "unreachable-rule" in capsys.readouterr().err

    def test_clean_preference_is_silent(self, policy_file,
                                        preference_file, capsys):
        main(["match", policy_file, preference_file])
        assert "lint:" not in capsys.readouterr().err
