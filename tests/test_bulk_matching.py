"""BulkPlan: set-at-a-time corpus matching against every reference.

Four independent evaluation pipelines must agree on every (policy,
preference) decision across the full corpus x all five JRC levels:

* the native APPEL engine (the paper's client-side reference),
* the literal SQL pipeline (policy id spliced in, one round-trip per
  rule — :func:`evaluate_ruleset`),
* the per-policy compiled plan (:meth:`CompiledPlan.execute`),
* the bulk plan (:meth:`BulkPlan.execute`) — the whole corpus in one
  statement, plus its ``policy_id IN (...)`` micro-batch variant.
"""

from __future__ import annotations

import pytest

from repro.appel.engine import AppelEngine
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    applicable_policy_literal,
    evaluate_ruleset,
)
from repro.translate.plan import BulkPlan, combine_bulk_rules


@pytest.fixture(scope="module")
def optimized_store(corpus):
    store = PolicyStore()
    handles = [store.install_policy(policy).policy_id
               for policy in corpus]
    yield store, handles
    store.db.close()


class TestBulkPlanShape:
    def test_full_corpus_form_takes_no_parameters(self, suite):
        translator = OptimizedSqlTranslator()
        for preference in suite.values():
            plan = translator.compile_bulk(preference)
            assert plan.batch_size == 0
            assert plan.parameter_count == 0
            assert plan.sql.count("?") == 0

    def test_batched_form_takes_ids_per_rule(self, suite):
        preference = suite["High"]
        plan = OptimizedSqlTranslator().compile_bulk(preference,
                                                     batch_size=3)
        assert plan.parameter_count == 3 * len(preference.rules)
        assert plan.sql.count("?") == plan.parameter_count
        assert plan.parameters((5, 9, 2)) == \
            (5, 9, 2) * len(preference.rules)

    def test_batched_parameters_enforce_arity(self, suite):
        plan = OptimizedSqlTranslator().compile_bulk(suite["Low"],
                                                     batch_size=2)
        with pytest.raises(ValueError):
            plan.parameters((1,))

    def test_first_rule_wins_via_window_function(self, suite):
        plan = OptimizedSqlTranslator().compile_bulk(suite["Low"])
        assert "MIN(rule_index) OVER (PARTITION BY policy_id)" in plan.sql
        assert "LIMIT 1" not in plan.sql
        assert plan.sql.count("UNION ALL") == len(plan.rules) - 1

    def test_empty_plan_never_touches_the_database(self):
        plan = BulkPlan(rules=(), sql=combine_bulk_rules(()))
        assert plan.sql == ""
        # db=None proves no query is attempted.
        assert plan.execute(None) == {}

    def test_only_active_policies_are_evaluated(self, suite):
        assert "active = 1" in OptimizedSqlTranslator().BULK_POLICY_SOURCE


class TestDifferentialFullCorpus:
    """Every corpus policy x all five JRC preference levels, 4 ways."""

    def test_bulk_agrees_with_plan_literal_and_native(
            self, optimized_store, corpus, suite):
        store, handles = optimized_store
        translator = OptimizedSqlTranslator()
        native = AppelEngine()
        checked = 0
        for level, preference in suite.items():
            plan = translator.compile_ruleset(preference)
            fired = translator.compile_bulk(preference).execute(store.db)
            for policy, handle in zip(corpus, handles):
                got = fired.get(handle, (None, None))
                assert got == plan.execute(store.db, handle), \
                    (level, handle)
                literal = translator.translate_ruleset(
                    preference, applicable_policy_literal(handle))
                assert got == evaluate_ruleset(store.db, literal), \
                    (level, handle)
                verdict = native.evaluate(policy, preference)
                assert got == (verdict.behavior, verdict.rule_index), \
                    (level, handle)
                checked += 1
        assert checked == len(corpus) * len(suite)

    def test_micro_batches_cover_the_corpus(self, optimized_store, suite):
        store, handles = optimized_store
        translator = OptimizedSqlTranslator()
        for preference in suite.values():
            full = translator.compile_bulk(preference).execute(store.db)
            chunked: dict[int, tuple] = {}
            for offset in range(0, len(handles), 4):
                chunk = tuple(handles[offset:offset + 4])
                plan = translator.compile_bulk(preference,
                                               batch_size=len(chunk))
                chunked.update(plan.execute(store.db, chunk))
            assert chunked == full

    def test_generic_schema_bulk_agrees_too(self, small_corpus, suite):
        store = GenericPolicyStore()
        handles = [store.install_policy(policy)
                   for policy in small_corpus]
        translator = GenericSqlTranslator()
        try:
            for preference in suite.values():
                plan = translator.compile_ruleset(preference)
                fired = translator.compile_bulk(preference) \
                    .execute(store.db)
                for handle in handles:
                    assert fired.get(handle, (None, None)) == \
                        plan.execute(store.db, handle)
        finally:
            store.db.close()


class TestSingleRoundTrip:
    def test_whole_corpus_is_exactly_one_statement(self, optimized_store,
                                                   suite):
        store, handles = optimized_store
        plan = OptimizedSqlTranslator().compile_bulk(suite["High"])
        plan.execute(store.db)                   # warm
        before = store.db.stats.statements
        fired = plan.execute(store.db)
        assert store.db.stats.statements == before + 1
        assert set(fired) <= set(handles)

    def test_micro_batch_is_exactly_one_statement(self, optimized_store,
                                                  suite):
        store, handles = optimized_store
        chunk = tuple(handles[:5])
        plan = OptimizedSqlTranslator().compile_bulk(suite["High"],
                                                     batch_size=len(chunk))
        plan.execute(store.db, chunk)            # warm
        before = store.db.stats.statements
        fired = plan.execute(store.db, chunk)
        assert store.db.stats.statements == before + 1
        assert set(fired) <= set(chunk)

    def test_superseded_versions_produce_no_rows(self, corpus, suite):
        """The bulk source is the *active* corpus: reinstalling a name
        leaves the old policy_id out of the next bulk result."""
        from repro.storage.versioning import VersionedPolicyStore

        store = VersionedPolicyStore()
        try:
            first = store.install(corpus[0]).policy_id
            second = store.install(corpus[0]).policy_id
            fired = OptimizedSqlTranslator() \
                .compile_bulk(suite["Very High"]).execute(store.db)
            assert first not in fired
            assert set(fired) <= {second}
        finally:
            store.db.close()
