"""Human-readable notice generation."""

from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.notice import policy_notice, statement_notice
from repro.p3p.wizard import PolicyAnswers, build_policy


class TestVolgaNotice:
    def test_header_and_entity(self, volga):
        notice = policy_notice(volga)
        assert notice.startswith("Privacy notice for volga")
        assert "Operated by Volga Books." in notice

    def test_purposes_in_plain_language(self, volga):
        notice = policy_notice(volga)
        assert "complete the activity you requested" in notice
        assert "contact you for marketing" in notice

    def test_consent_annotations(self, volga):
        notice = policy_notice(volga)
        assert "(only with your consent)" in notice

    def test_recipients_and_retention(self, volga):
        notice = policy_notice(volga)
        assert "partners who follow the same practices" in notice
        assert "discarded at the earliest opportunity" in notice

    def test_opturi_and_access(self, volga):
        notice = policy_notice(volga)
        assert "Consent choices can be changed at" in notice
        assert "contact and certain other data" in notice

    def test_consequence_quoted(self, volga):
        notice = policy_notice(volga)
        assert '"We use this information to complete your purchase."' \
            in notice

    def test_no_disputes_called_out(self, volga):
        assert "names no dispute resolution channel" in \
            policy_notice(volga)


class TestStatementNotice:
    def test_non_identifiable(self):
        statement = Statement(non_identifiable=True)
        text = statement_notice(statement, 3)
        assert text.startswith("3.")
        assert "anonymized" in text

    def test_data_names_humanized(self):
        statement = Statement(
            purposes=(PurposeValue("current"),),
            recipients=(RecipientValue("ours"),),
            retention="no-retention",
            data=(DataItem("#user.home-info.postal.street"),),
        )
        text = statement_notice(statement, 1)
        assert "user / home info / postal / street" in text
        assert "not retained beyond the interaction" in text

    def test_custom_schema_ref_humanized(self):
        statement = Statement(
            data=(DataItem("http://shop.example.com/schema#order.id"),),
        )
        assert "order / id" in statement_notice(statement, 1)

    def test_empty_data(self):
        assert "collects no data" in statement_notice(Statement(), 1)


class TestWizardRoundTrip:
    def test_wizard_policy_produces_coherent_notice(self):
        policy = build_policy(PolicyAnswers(
            company_name="Northwind Books",
            does_marketing=True,
            does_analytics=True,
        ))
        notice = policy_notice(policy)
        assert "Operated by Northwind Books." in notice
        assert "only with your consent" in notice     # opt-in marketing
        # pseudonymous analytics renders as the anonymized paragraph
        assert "anonymized" in notice
        assert "Complaints can be raised with" in notice

    def test_corpus_notices_render(self, corpus):
        for policy in corpus[:10]:
            notice = policy_notice(policy)
            assert notice.startswith("Privacy notice for")
            assert str(policy.statement_count()) + "." in notice
