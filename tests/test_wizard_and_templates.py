"""The deployment tools of Section 3.3: policy wizard + rule templates."""

import pytest

from repro.appel.engine import AppelEngine
from repro.appel.templates import (
    TEMPLATES,
    compose_preference,
    template_keys,
)
from repro.errors import AppelParseError, PolicyValidationError
from repro.p3p.validator import validate_policy
from repro.p3p.wizard import PolicyAnswers, build_policy


class TestPolicyWizard:
    def test_minimal_site(self):
        policy = build_policy(PolicyAnswers(company_name="Tiny Blog",
                                            collects_contact_data=False,
                                            offers_disputes=False))
        assert policy.name == "tiny-blog"
        assert policy.statement_count() == 1
        errors = [p for p in validate_policy(policy)
                  if p.severity == "error"]
        assert errors == []

    def test_full_commerce_site(self):
        policy = build_policy(PolicyAnswers(
            company_name="Mega Shop",
            homepage="http://shop.example.com",
            collects_payment_data=True,
            does_marketing=True,
            does_analytics=True,
            shares_with_partners=True,
        ))
        assert policy.statement_count() == 3
        assert policy.opturi is not None  # marketing with consent
        errors = [p for p in validate_policy(policy)
                  if p.severity == "error"]
        assert errors == []

    def test_marketing_without_consent(self):
        policy = build_policy(PolicyAnswers(
            company_name="Spam Co", does_marketing=True,
            marketing_needs_consent=False,
        ))
        marketing = policy.statements[1]
        assert all(p.required == "always" for p in marketing.purposes)
        assert policy.opturi is None

    def test_identifiable_analytics(self):
        policy = build_policy(PolicyAnswers(
            company_name="Watcher", does_analytics=True,
            analytics_identifiable=True,
        ))
        analytics = policy.statements[1]
        assert "individual-analysis" in analytics.purpose_names()
        assert not analytics.non_identifiable

    def test_pseudonymous_analytics(self):
        policy = build_policy(PolicyAnswers(
            company_name="Counter", does_analytics=True,
        ))
        analytics = policy.statements[1]
        assert "pseudo-analysis" in analytics.purpose_names()
        assert analytics.non_identifiable

    def test_disputes_channel(self):
        policy = build_policy(PolicyAnswers(company_name="Fair Corp"))
        assert policy.disputes
        assert policy.disputes[0].service.endswith("/complaints")

    def test_empty_name_rejected(self):
        with pytest.raises(PolicyValidationError):
            build_policy(PolicyAnswers(company_name=""))

    def test_wizard_policy_roundtrips(self):
        from repro.p3p.parser import parse_policy
        from repro.p3p.serializer import serialize_policy

        policy = build_policy(PolicyAnswers(
            company_name="Round Trip", does_marketing=True,
            does_analytics=True,
        ))
        assert parse_policy(serialize_policy(policy)) == policy


class TestRuleTemplates:
    def test_catalog_is_documented(self):
        assert len(TEMPLATES) >= 8
        for template in TEMPLATES.values():
            assert template.title
            assert template.explanation
            assert template.build().behavior == "block"

    def test_compose_appends_catch_all(self):
        preference = compose_preference(["no-telemarketing"])
        assert preference.rule_count() == 2
        assert preference.rules[-1].is_catch_all()
        assert preference.rules[-1].behavior == "request"

    def test_unknown_key_rejected(self):
        with pytest.raises(AppelParseError):
            compose_preference(["no-such-template"])

    def test_statically_valid(self):
        from repro.appel.analysis import validate_ruleset

        preference = compose_preference(list(template_keys()))
        errors = [p for p in validate_ruleset(preference)
                  if p.severity == "error"]
        assert errors == []

    def test_semantics_against_wizard_policies(self):
        engine = AppelEngine()

        spam = build_policy(PolicyAnswers(
            company_name="Spam Co", does_marketing=True,
            marketing_needs_consent=False,
        ))
        polite = build_policy(PolicyAnswers(
            company_name="Polite Co", does_marketing=True,
            marketing_needs_consent=True,
        ))

        needs_consent = compose_preference(["no-uncontrolled-marketing"])
        assert engine.evaluate(spam, needs_consent).behavior == "block"
        assert engine.evaluate(polite, needs_consent).behavior == "request"

        no_profiling = compose_preference(["no-profiling"])
        assert engine.evaluate(polite, no_profiling).behavior == "block"

    def test_require_disputes_template(self):
        engine = AppelEngine()
        with_disputes = build_policy(PolicyAnswers(company_name="A"))
        without = build_policy(PolicyAnswers(company_name="B",
                                             offers_disputes=False))
        preference = compose_preference(["require-disputes"])
        assert engine.evaluate(with_disputes,
                               preference).behavior == "request"
        assert engine.evaluate(without, preference).behavior == "block"

    def test_templates_agree_across_engines(self):
        """Template-built preferences run identically on the SQL path."""
        from repro.engines import SqlMatchEngine

        preference = compose_preference(list(template_keys()))
        native = AppelEngine()
        sql = SqlMatchEngine()
        for answers in (
            PolicyAnswers(company_name="A"),
            PolicyAnswers(company_name="B", does_marketing=True,
                          marketing_needs_consent=False,
                          shares_with_partners=True),
            PolicyAnswers(company_name="C", does_analytics=True,
                          analytics_identifiable=True,
                          offers_disputes=False),
        ):
            policy = build_policy(answers)
            expected = native.evaluate(policy, preference)
            handle = sql.install(policy)
            outcome = sql.match(handle, preference)
            assert (outcome.behavior, outcome.rule_index) == \
                (expected.behavior, expected.rule_index)
