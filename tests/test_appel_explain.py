"""Explainable matching: traces agree with the engine and carry reasons."""

import pytest

from repro.appel.engine import AppelEngine
from repro.appel.explain import ExplainingEngine
from repro.appel.model import expression, rule, ruleset
from repro.corpus.volga import (
    VOLGA_POLICY_NO_OPTIN_XML,
    VOLGA_POLICY_UNRELATED_XML,
)
from repro.p3p.parser import parse_policy


@pytest.fixture()
def explaining():
    return ExplainingEngine()


class TestAgreementWithEngine:
    def test_volga_scenarios(self, explaining, volga, jane):
        plain = AppelEngine()
        for policy in (volga,
                       parse_policy(VOLGA_POLICY_NO_OPTIN_XML),
                       parse_policy(VOLGA_POLICY_UNRELATED_XML)):
            expected = plain.evaluate(policy, jane)
            explained = explaining.explain(policy, jane)
            assert explained.behavior == expected.behavior
            assert explained.rule_index == expected.rule_index

    def test_suite_against_corpus_sample(self, explaining, small_corpus,
                                         suite):
        plain = AppelEngine()
        for policy in small_corpus:
            for preference in suite.values():
                expected = plain.evaluate(policy, preference)
                explained = explaining.explain(policy, preference)
                assert (explained.behavior, explained.rule_index) == \
                    (expected.behavior, expected.rule_index)


class TestTraceContents:
    def test_all_rules_traced(self, explaining, volga, jane):
        explanation = explaining.explain(volga, jane)
        assert len(explanation.rules) == jane.rule_count()
        assert [t.fired for t in explanation.rules] == [False, False, True]

    def test_fired_rule_has_matched_path(self, explaining, jane):
        policy = parse_policy(VOLGA_POLICY_UNRELATED_XML)
        explanation = explaining.explain(policy, jane)
        fired = explanation.rules[1]
        assert fired.fired
        rendered = fired.render()
        assert "FIRED" in rendered
        assert "unrelated" in rendered
        assert "matched" in rendered

    def test_attribute_mismatch_reported(self, explaining, volga):
        # Demand required="always" on a purpose Volga states as opt-in,
        # in the statement where it actually appears.
        preference = ruleset(
            rule("block",
                 expression(
                     "POLICY",
                     expression("STATEMENT",
                                expression("RETENTION",
                                           expression(
                                               "business-practices")),
                                expression("PURPOSE",
                                           expression("contact",
                                                      required="always"))))),
            rule("request"),
        )
        explanation = explaining.explain(volga, preference)
        assert explanation.behavior == "request"
        rendered = explanation.rules[0].render()
        assert "attr mismatch" in rendered
        assert "'opt-in'" in rendered

    def test_catch_all_trace(self, explaining, volga, jane):
        explanation = explaining.explain(volga, jane)
        assert "<empty body>" in explanation.rules[2].render()

    def test_render_full_explanation(self, explaining, volga, jane):
        text = explaining.explain(volga, jane).render()
        assert text.startswith("outcome: 'request' (rule 2)")
        assert "rule 0 ('block') did not fire" in text

    def test_near_miss_visible_after_fired_rule(self, explaining, jane):
        """Rules after the first firing one are still traced."""
        policy = parse_policy(VOLGA_POLICY_NO_OPTIN_XML)
        explanation = explaining.explain(policy, jane)
        assert explanation.rule_index == 0
        assert len(explanation.rules) == 3  # all traced regardless
