"""Chaos suite: seeded faults over the serving stack, healed end to end.

The contract under test: with retries enabled and faults injected on a
deterministic schedule, (a) every decision equals the fault-free run of
the same requests, (b) no ``check_key`` is ever logged twice, and
(c) committed check-log rows survive a crash exactly once.
"""

import sqlite3
import threading

import pytest

from repro.corpus.volga import (
    VOLGA_POLICY_XML,
    VOLGA_REFERENCE_XML,
    jane_preference,
)
from repro.net import protocol
from repro.net.client import HttpClientAgent
from repro.net.httpd import serve
from repro.net.retry import RetryPolicy
from repro.server.policy_server import PolicyServer
from repro.testing import (
    FaultPlan,
    crash_pool,
    http_fault_hook,
    install_pool_faults,
)

SITE = "volga.example.com"

#: Fast schedule so a chaos run prices mechanics, not sleep time.
FAST_RETRY = RetryPolicy(max_attempts=8, base_delay=0.005,
                         multiplier=2.0, max_delay=0.05, deadline=10.0)

URIS = [f"/catalog/item-{i % 6}" if i % 3 else f"/legacy/item-{i}"
        for i in range(30)]


def assert_no_duplicate_keys(policy_server):
    policy_server.flush_log()
    with policy_server.pool.read() as db:
        duplicates = db.query(
            "SELECT check_key, COUNT(*) FROM check_log "
            "WHERE check_key IS NOT NULL "
            "GROUP BY check_key HAVING COUNT(*) > 1"
        )
    assert list(duplicates) == []


@pytest.fixture()
def chaos_httpd(tmp_path):
    server = serve(str(tmp_path / "chaos.db"))
    thread = server.run_in_thread()
    with HttpClientAgent(server.base_url) as admin:
        admin.install_policy(VOLGA_POLICY_XML, site=SITE,
                             reference_file=VOLGA_REFERENCE_XML)
    yield server
    server.fault_hook = None
    server.close()
    thread.join(timeout=5)


def fault_free_decisions(chaos_httpd):
    with HttpClientAgent(chaos_httpd.base_url, jane_preference(),
                         retry=None) as agent:
        return [agent.check(SITE, uri).decision for uri in URIS]


class TestFaultPlan:
    def test_every_nth_occurrence_fires(self):
        plan = FaultPlan(every={"sqlite": 3})
        fired = [plan.should("sqlite") for _ in range(9)]
        assert fired == [False, False, True] * 3
        assert plan.occurrences["sqlite"] == 9
        assert plan.injected["sqlite"] == 3

    def test_rates_are_seeded_and_reproducible(self):
        first = FaultPlan(seed=7, rates={"delay": 0.5})
        second = FaultPlan(seed=7, rates={"delay": 0.5})
        sequence = [first.should("delay") for _ in range(50)]
        assert sequence == [second.should("delay") for _ in range(50)]
        assert any(sequence) and not all(sequence)

    def test_max_faults_budget_caps_injection(self):
        plan = FaultPlan(every={"sqlite": 1}, max_faults=2)
        assert sum(plan.should("sqlite") for _ in range(10)) == 2
        assert plan.total_injected == 2

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(every={"tornado": 2})


class TestHttpChaos:
    def test_response_drops_heal_and_decisions_match(self, chaos_httpd):
        expected = fault_free_decisions(chaos_httpd)

        plan = FaultPlan(every={"response-drop": 3})
        chaos_httpd.fault_hook = http_fault_hook(plan)
        with HttpClientAgent(chaos_httpd.base_url, jane_preference(),
                             retry=FAST_RETRY) as agent:
            decisions = [agent.check(SITE, uri).decision for uri in URIS]
        chaos_httpd.fault_hook = None

        assert decisions == expected
        assert plan.total_injected > 0
        assert agent.retries >= plan.total_injected
        assert_no_duplicate_keys(chaos_httpd.policy_server)

    def test_consecutive_request_drops_need_the_backoff_policy(
            self, chaos_httpd):
        expected = fault_free_decisions(chaos_httpd)

        # Drop *every* request until the budget runs out: the single
        # stale-connection re-send cannot heal consecutive drops, only
        # the policy's bounded backoff can.
        plan = FaultPlan(every={"request-drop": 1}, max_faults=3)
        chaos_httpd.fault_hook = http_fault_hook(plan)
        with HttpClientAgent(chaos_httpd.base_url, jane_preference(),
                             retry=FAST_RETRY) as agent:
            decision = agent.check(SITE, URIS[0]).decision
        chaos_httpd.fault_hook = None

        assert decision == expected[0]
        assert plan.total_injected == 3
        assert agent.retries >= 3
        assert_no_duplicate_keys(chaos_httpd.policy_server)

    def test_truncated_responses_heal(self, chaos_httpd):
        expected = fault_free_decisions(chaos_httpd)

        plan = FaultPlan(every={"response-truncate": 4})
        chaos_httpd.fault_hook = http_fault_hook(plan)
        with HttpClientAgent(chaos_httpd.base_url, jane_preference(),
                             retry=FAST_RETRY) as agent:
            decisions = [agent.check(SITE, uri).decision for uri in URIS]
        chaos_httpd.fault_hook = None

        assert decisions == expected
        assert plan.total_injected > 0
        assert_no_duplicate_keys(chaos_httpd.policy_server)

    def test_faulted_batches_log_each_check_once(self, chaos_httpd):
        plan = FaultPlan(every={"response-drop": 2})
        chaos_httpd.fault_hook = http_fault_hook(plan)
        with HttpClientAgent(chaos_httpd.base_url, jane_preference(),
                             retry=FAST_RETRY) as agent:
            for start in range(0, len(URIS), 10):
                batch = [(SITE, uri) for uri in URIS[start:start + 10]]
                assert len(agent.check_batch(batch)) == len(batch)
        chaos_httpd.fault_hook = None

        backend = chaos_httpd.policy_server
        assert plan.total_injected > 0
        assert_no_duplicate_keys(backend)
        backend.flush_log()
        with backend.pool.read() as db:
            logged = db.scalar(
                "SELECT COUNT(DISTINCT check_key) FROM check_log "
                "WHERE check_key IS NOT NULL")
        assert logged == len(URIS)

    def test_shed_load_heals_via_retry_after(self, tmp_path):
        server = serve(str(tmp_path / "tiny.db"), max_inflight=1,
                       retry_after=0.05)
        thread = server.run_in_thread()
        try:
            with HttpClientAgent(server.base_url) as admin:
                admin.install_policy(VOLGA_POLICY_XML, site=SITE,
                                     reference_file=VOLGA_REFERENCE_XML)
            agent = HttpClientAgent(server.base_url, jane_preference(),
                                    retry=FAST_RETRY)
            agent.check(SITE, "/catalog/warm")

            assert server.admission.try_enter()  # occupy the only slot
            release = threading.Timer(0.2, server.admission.leave)
            release.start()
            try:
                # The 503 + Retry-After round trips through the policy:
                # the client waits the server out instead of failing.
                result = agent.check(SITE, "/catalog/overload")
                assert result.behavior is not None
                assert agent.retries >= 1
            finally:
                release.join()
            agent.close()
        finally:
            server.close()
            thread.join(timeout=5)


class TestSqliteFaults:
    def test_faulted_flush_requeues_and_later_flush_drains(self, tmp_path):
        from repro.corpus.volga import volga_policy
        server = PolicyServer(str(tmp_path / "flaky.db"),
                              log_batch_size=1000)
        server.install_policy(volga_policy(), site=SITE)
        server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
        jane = jane_preference()
        try:
            requests = [(SITE, uri, jane, f"key-{i}")
                        for i, uri in enumerate(URIS)]
            plan = FaultPlan(every={"sqlite": 1}, max_faults=2)
            uninstall = install_pool_faults(server.pool, plan)
            try:
                for request in requests:
                    server.check(request[0], request[1], request[2],
                                 check_key=request[3])
                for _ in range(2):  # the two scheduled faults
                    with pytest.raises(sqlite3.OperationalError):
                        server.flush_log()
                assert server.log.pending == len(requests)  # re-queued
                assert server.flush_log() == len(requests)
            finally:
                uninstall()

            # Retrying every check after the failure window adds nothing.
            for request in requests:
                server.check(request[0], request[1], request[2],
                             check_key=request[3])
            assert_no_duplicate_keys(server)
            with server.pool.read() as db:
                assert db.scalar(
                    "SELECT COUNT(*) FROM check_log "
                    "WHERE check_key IS NOT NULL") == len(requests)
        finally:
            server.close()


class TestCrashRecovery:
    def _server(self, path, **kwargs):
        from repro.corpus.volga import volga_policy
        server = PolicyServer(str(path), **kwargs)
        server.install_policy(volga_policy(), site=SITE)
        server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
        return server

    def test_committed_rows_survive_a_crash_exactly_once(self, tmp_path):
        path = tmp_path / "crash.db"
        server = self._server(path, log_batch_size=1000)
        jane = jane_preference()

        committed = [f"crash-{i}" for i in range(10)]
        buffered = [f"lost-{i}" for i in range(5)]
        for i, key in enumerate(committed):
            server.check(SITE, f"/catalog/item-{i}", jane, check_key=key)
        server.flush_log()
        for i, key in enumerate(buffered):
            server.check(SITE, f"/catalog/late-{i}", jane, check_key=key)
        assert server.log.pending == len(buffered)
        crash_pool(server.pool)  # kill -9: buffered rows die

        survivor = PolicyServer(str(path))
        try:
            with survivor.pool.read() as db:
                keys = sorted(row[0] for row in db.query(
                    "SELECT check_key FROM check_log "
                    "WHERE check_key IS NOT NULL"))
            assert keys == sorted(committed)
            assert_no_duplicate_keys(survivor)

            # Clients retry what they never got an answer for — both
            # the lost checks and (spuriously) some committed ones.
            for i, key in enumerate(buffered):
                survivor.check(SITE, f"/catalog/late-{i}", jane,
                               check_key=key)
            for i, key in enumerate(committed[:3]):
                survivor.check(SITE, f"/catalog/item-{i}", jane,
                               check_key=key)
            survivor.flush_log()
            with survivor.pool.read() as db:
                total = db.scalar(
                    "SELECT COUNT(*) FROM check_log "
                    "WHERE check_key IS NOT NULL")
            assert total == len(committed) + len(buffered)
            assert_no_duplicate_keys(survivor)
        finally:
            survivor.close()

    @pytest.mark.slow
    def test_crash_mid_concurrent_load_loses_no_committed_row(
            self, tmp_path):
        path = tmp_path / "midload.db"
        server = self._server(path, log_batch_size=8,
                              log_flush_interval=0.01)
        jane = jane_preference()
        stop = threading.Event()
        issued: list[str] = []
        issued_lock = threading.Lock()

        def hammer(worker):
            n = 0
            while not stop.is_set():
                key = f"w{worker}-{n}"
                try:
                    server.check(SITE, f"/catalog/item-{n % 6}", jane,
                                 check_key=key)
                except Exception:
                    return  # the crash landed mid-call
                with issued_lock:
                    issued.append(key)
                n += 1

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        while True:  # crash only after real load has committed
            try:
                with server.pool.read() as db:
                    if db.scalar("SELECT COUNT(*) FROM check_log") >= 64:
                        break
            except Exception:
                break
        crash_pool(server.pool)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

        survivor = PolicyServer(str(path))
        try:
            with survivor.pool.read() as db:
                rows = db.scalar("SELECT COUNT(*) FROM check_log")
                distinct = db.scalar(
                    "SELECT COUNT(DISTINCT check_key) FROM check_log "
                    "WHERE check_key IS NOT NULL")
                logged = {row[0] for row in db.query(
                    "SELECT check_key FROM check_log "
                    "WHERE check_key IS NOT NULL")}
            # No duplicates, nothing invented: every logged key was
            # issued by a worker (committed rows are a prefix of the
            # issued stream; buffered tails may be lost, never forged).
            assert rows == distinct
            assert rows >= 64
            with issued_lock:
                tracked = set(issued)
            untracked = logged - tracked
            # A worker that crashed mid-call may have committed its row
            # without recording it as issued; at most one per worker.
            assert len(untracked) <= len(threads)
            assert_no_duplicate_keys(survivor)
        finally:
            survivor.close()


class TestProtocolHardening:
    def test_negative_content_length_is_rejected(self, chaos_httpd):
        import http.client
        connection = http.client.HTTPConnection(chaos_httpd.host,
                                                chaos_httpd.port,
                                                timeout=10)
        try:
            connection.putrequest("POST", "/v1/check",
                                  skip_accept_encoding=True)
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", "-17")
            connection.endheaders()
            response = connection.getresponse()
            body = response.read()
            assert response.status == 400
            envelope = protocol.ErrorEnvelope.from_wire(
                protocol.decode(body))
            assert envelope.code == protocol.ERR_BAD_REQUEST
        finally:
            connection.close()
