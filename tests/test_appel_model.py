"""APPEL model: builders, connectives, catch-all rules."""

import pytest

from repro.errors import AppelParseError, VocabularyError
from repro.appel.model import Expression, Rule, Ruleset, expression, rule, ruleset


class TestExpression:
    def test_builder_sorts_attributes(self):
        expr = expression("DATA", ref="#user.name", optional="no")
        assert expr.attributes == (("optional", "no"), ("ref", "#user.name"))

    def test_builder_maps_underscores_to_dashes(self):
        expr = expression("DISPUTES", resolution_type="service")
        assert expr.attribute("resolution-type") == "service"

    def test_attribute_lookup_missing_is_none(self):
        assert expression("DATA").attribute("ref") is None

    def test_bad_connective_rejected(self):
        with pytest.raises(VocabularyError):
            Expression(name="PURPOSE", connective="xor")

    def test_subexpression_names(self):
        expr = expression("PURPOSE", expression("admin"),
                          expression("contact"), expression("admin"))
        assert expr.subexpression_names() == frozenset({"admin", "contact"})

    def test_depth_and_size(self):
        expr = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE", expression("admin"))),
        )
        assert expr.depth() == 4
        assert expr.size() == 4


class TestRule:
    def test_requires_behavior(self):
        with pytest.raises(AppelParseError):
            Rule(behavior="")

    def test_catch_all(self):
        assert rule("request").is_catch_all()
        assert not rule("block", expression("POLICY")).is_catch_all()

    def test_size_sums_expressions(self):
        r = rule("block", expression("POLICY", expression("STATEMENT")),
                 expression("POLICY"))
        assert r.size() == 3


class TestRuleset:
    def test_requires_rules(self):
        with pytest.raises(AppelParseError):
            Ruleset(rules=())

    def test_behaviors_in_order(self, jane):
        assert jane.behaviors() == ("block", "block", "request")

    def test_has_catch_all(self, jane):
        assert jane.has_catch_all()
        no_catch = ruleset(rule("block", expression("POLICY")))
        assert not no_catch.has_catch_all()

    def test_rule_count(self, suite):
        # Figure 19's rule counts.
        expected = {"Very High": 10, "High": 7, "Medium": 4,
                    "Low": 2, "Very Low": 1}
        for level, rs in suite.items():
            assert rs.rule_count() == expected[level]
