"""Policy validation: P3P structural rules."""

import pytest

from repro.errors import PolicyValidationError
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.validator import ERROR, WARNING, is_valid, validate_policy


def _complete_statement(**overrides) -> Statement:
    base = dict(
        purposes=(PurposeValue("current"),),
        recipients=(RecipientValue("ours"),),
        retention="stated-purpose",
        data=(DataItem("#user.name"),),
    )
    base.update(overrides)
    return Statement(**base)


def _policy(*statements: Statement) -> Policy:
    return Policy(discuri="http://example.com/p", statements=statements)


class TestHappyPath:
    def test_volga_is_valid(self, volga):
        assert is_valid(volga)
        assert validate_policy(volga) == []

    def test_corpus_is_valid(self, corpus):
        for policy in corpus:
            errors = [p for p in validate_policy(policy)
                      if p.severity == ERROR]
            assert errors == []


class TestStatementRules:
    def test_missing_purpose_is_error(self):
        problems = validate_policy(_policy(_complete_statement(purposes=())))
        assert any(p.severity == ERROR and "PURPOSE" in p.message
                   for p in problems)

    def test_missing_recipient_is_error(self):
        problems = validate_policy(
            _policy(_complete_statement(recipients=()))
        )
        assert any("RECIPIENT" in p.message for p in problems)

    def test_missing_retention_is_error(self):
        problems = validate_policy(
            _policy(_complete_statement(retention=None))
        )
        assert any("RETENTION" in p.message for p in problems)

    def test_no_data_is_warning_only(self):
        problems = validate_policy(_policy(_complete_statement(data=())))
        assert all(p.severity == WARNING for p in problems)

    def test_non_identifiable_statement_needs_nothing(self):
        policy = _policy(Statement(non_identifiable=True))
        assert is_valid(policy)

    def test_duplicate_purpose_warns(self):
        statement = _complete_statement(
            purposes=(PurposeValue("current"), PurposeValue("current")),
        )
        problems = validate_policy(_policy(statement))
        assert any("duplicate purpose" in p.message for p in problems)

    def test_duplicate_recipient_warns(self):
        statement = _complete_statement(
            recipients=(RecipientValue("ours"), RecipientValue("ours")),
        )
        problems = validate_policy(_policy(statement))
        assert any("duplicate recipient" in p.message for p in problems)


class TestDataRules:
    def test_variable_ref_without_categories_is_error(self):
        statement = _complete_statement(
            data=(DataItem("#dynamic.miscdata"),),
        )
        problems = validate_policy(_policy(statement))
        assert any(p.severity == ERROR and "variable-category" in p.message
                   for p in problems)

    def test_variable_ref_with_categories_is_fine(self):
        statement = _complete_statement(
            data=(DataItem("#dynamic.miscdata", categories=("purchase",)),),
        )
        assert is_valid(_policy(statement))

    def test_unknown_ref_warns(self):
        statement = _complete_statement(
            data=(DataItem("#corp.custom"),),
        )
        problems = validate_policy(_policy(statement))
        assert any(p.severity == WARNING and "base data schema" in p.message
                   for p in problems)


class TestPolicyRules:
    def test_empty_policy_is_error(self):
        problems = validate_policy(Policy(discuri="http://x/p"))
        assert any("no STATEMENT" in p.message for p in problems)

    def test_missing_discuri_warns(self):
        problems = validate_policy(
            Policy(statements=(_complete_statement(),))
        )
        assert any("discuri" in p.message for p in problems)

    def test_opt_in_without_opturi_warns(self):
        statement = _complete_statement(
            purposes=(PurposeValue("contact", "opt-in"),),
        )
        problems = validate_policy(_policy(statement))
        assert any("opturi" in p.message for p in problems)

    def test_strict_mode_raises(self):
        with pytest.raises(PolicyValidationError):
            validate_policy(Policy(discuri="http://x/p"), strict=True)

    def test_strict_mode_passes_warnings(self, volga):
        # Warnings alone never raise.
        assert validate_policy(volga, strict=True) == []
