"""The structural-join XQuery compiler (ROADMAP item 5, beyond the paper).

Three claims under test:

* correctness — on every (preference level, policy) pair of the full
  corpus, the structural engine agrees with the native XQuery evaluator
  *and* with the literal SQL pipeline (the paper's reference semantics);
* no complexity guard — the Medium preference that reproduces the blank
  Figure 21 cell through :class:`XTableMatchEngine` compiles and runs
  structurally, returning the same decision as the native evaluator;
* plan architecture — one flat parameterized statement per ruleset
  (single round trip per check, verified through the statement
  counters), policy-independent binds, LRU plan-cache reuse.
"""

from __future__ import annotations

import pytest

from repro.engines import (
    SqlMatchEngine,
    XQueryNativeMatchEngine,
    XQueryStructuralMatchEngine,
    XTableMatchEngine,
)
from repro.storage.database import Database
from repro.storage.generic_schema import (
    create_generic_schema,
    create_structural_indexes,
)
from repro.xquery.structural import (
    POLICY_ID_BIND,
    combine_structural_rules,
    compile_ruleset,
)


@pytest.fixture(scope="module")
def engines(corpus):
    """One instance of each compared engine with the corpus installed.

    Handles align index-for-index across engines, so tests can zip them.
    """
    structural = XQueryStructuralMatchEngine(cache_translations=True)
    native = XQueryNativeMatchEngine()
    sql = SqlMatchEngine()
    handles = [
        (structural.install(p), native.install(p), sql.install(p))
        for p in corpus
    ]
    return structural, native, sql, handles


class TestDifferential:
    def test_full_corpus_all_levels(self, engines, suite):
        """structural == native evaluator == direct SQL, every pair."""
        structural, native, sql, handles = engines
        for level, preference in suite.items():
            for hs, hn, hq in handles:
                a = structural.match(hs, preference)
                b = native.match(hn, preference)
                c = sql.match(hq, preference)
                assert not a.failed and not b.failed and not c.failed
                assert (a.behavior, a.rule_index) == \
                    (b.behavior, b.rule_index), (level, hs)
                assert (a.behavior, a.rule_index) == \
                    (c.behavior, c.rule_index), (level, hs)

    def test_medium_succeeds_structurally_but_not_via_xtable(
            self, engines, suite, corpus):
        """The Figure 21 blank cell: still blank for XTABLE, filled here."""
        structural, native, _, handles = engines
        medium = suite["Medium"]

        xtable = XTableMatchEngine()
        handle = xtable.install(corpus[0])
        outcome = xtable.match(handle, medium)
        assert outcome.failed
        assert outcome.behavior is None
        assert "subqueries" in outcome.error

        hs, hn, _ = handles[0]
        filled = structural.match(hs, medium)
        reference = native.match(hn, medium)
        assert not filled.failed
        assert filled.behavior is not None
        assert (filled.behavior, filled.rule_index) == \
            (reference.behavior, reference.rule_index)


class TestPlanShape:
    def test_single_statement_per_check(self, engines, suite):
        """A plan executes as exactly one statement, every level."""
        structural, _, _, handles = engines
        db = structural.db
        handle = handles[0][0]
        for level, preference in suite.items():
            plan = compile_ruleset(preference)
            before = db.stats.statements
            plan.execute(db, handle)
            assert db.stats.statements - before == 1, level

    def test_engine_match_is_probe_plus_one_statement(self, engines, suite):
        structural, _, _, handles = engines
        db = structural.db
        handle = handles[0][0]
        structural.match(handle, suite["High"])  # warm the plan cache
        before = db.stats.statements
        structural.match(handle, suite["High"])
        # require_policy probe + the plan statement, nothing else.
        assert db.stats.statements - before == 2

    def test_medium_compiles_without_guard(self, suite):
        plan = compile_ruleset(suite["Medium"])
        assert len(plan.rules) == 4
        assert plan.sql.count("UNION ALL") == 3
        assert "MIN(rule_index) OVER ()" in plan.sql

    def test_single_rule_plan_skips_window(self, suite):
        plan = compile_ruleset(suite["Very Low"])
        assert len(plan.rules) == 1
        assert "OVER" not in plan.sql

    def test_empty_ruleset(self):
        assert combine_structural_rules(()) == ""

    def test_bind_arity_matches_placeholders(self, suite):
        from repro.analysis.plans import strip_quoted

        for level, preference in suite.items():
            plan = compile_ruleset(preference)
            assert strip_quoted(plan.sql).count("?") == \
                plan.parameter_count, level

    def test_parameters_substitute_policy_id(self, suite):
        plan = compile_ruleset(suite["Low"])
        assert POLICY_ID_BIND in {
            bind for rule in plan.rules for bind in rule.binds
        }
        values = plan.parameters(7)
        assert POLICY_ID_BIND not in values
        assert 7 in values
        assert len(values) == plan.parameter_count

    def test_plan_is_policy_independent(self, engines, suite):
        """One compiled plan, different bound handles, right answers."""
        structural, native, _, handles = engines
        plan = compile_ruleset(suite["High"])
        for hs, hn, _ in handles[:5]:
            got = plan.execute(structural.db, hs)
            want = native.match(hn, suite["High"])
            assert got == (want.behavior, want.rule_index)


class TestPlanCache:
    def test_cache_reuse(self, corpus, suite):
        engine = XQueryStructuralMatchEngine(cache_translations=True)
        handle = engine.install(corpus[0])
        engine.match(handle, suite["High"])
        assert engine._cache.misses == 1
        engine.match(handle, suite["High"])
        assert engine._cache.hits == 1

    def test_cache_off_by_default(self, corpus, suite):
        engine = XQueryStructuralMatchEngine()
        handle = engine.install(corpus[0])
        engine.match(handle, suite["High"])
        engine.match(handle, suite["High"])
        assert engine._cache.hits == 0


class TestAudit:
    def test_structural_plans_pass_explain_audit(self, suite):
        from repro.analysis.plans import (
            audit_structural_plan,
            plan_untrusted_strings,
        )

        db = Database()
        create_generic_schema(db)
        create_structural_indexes(db)
        for level, preference in suite.items():
            plan = compile_ruleset(preference)
            findings = audit_structural_plan(
                db, plan, where=level,
                untrusted=plan_untrusted_strings(preference))
            assert findings == [], level

    def test_audit_flags_missing_indexes(self, suite):
        """Without the structural indexes the hot node tables scan."""
        from repro.analysis.plans import audit_structural_plan

        db = Database()
        create_generic_schema(db)  # no create_structural_indexes
        # Medium touches purpose/recipient/statement/categories directly.
        plan = compile_ruleset(suite["Medium"])
        findings = audit_structural_plan(db, plan)
        assert any(f.code == "full-scan" for f in findings)

    def test_audit_flags_bind_arity_drift(self, suite):
        from dataclasses import replace

        from repro.analysis.plans import audit_structural_plan

        db = Database()
        create_generic_schema(db)
        create_structural_indexes(db)
        plan = compile_ruleset(suite["Low"])
        doctored = replace(plan, sql=plan.sql.replace("?", "1", 1))
        findings = audit_structural_plan(db, doctored)
        assert [f.code for f in findings] == ["bind-arity"]
