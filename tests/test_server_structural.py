"""The structural PolicyServer backend (`p3pdb serve --engine
structural`): decision parity with the SQL engine, lazy reconstruction
from a pre-existing store, and contract checks over its served plans."""

import pytest

from repro.analysis import (
    StatementContract,
    check_contracts,
    generic_catalog,
)
from repro.analysis.plans import HOT_NODE_TABLES
from repro.corpus.volga import (
    VOLGA_POLICY_NO_OPTIN_XML,
    VOLGA_POLICY_UNRELATED_XML,
    VOLGA_REFERENCE_XML,
)
from repro.p3p.parser import parse_policy
from repro.server.policy_server import PolicyServer


def deploy(server, volga):
    scenarios = {
        "good.example.com": volga,
        "no-optin.example.com": parse_policy(VOLGA_POLICY_NO_OPTIN_XML),
        "oversharing.example.com":
            parse_policy(VOLGA_POLICY_UNRELATED_XML),
    }
    for host, policy in scenarios.items():
        server.install_policy(policy, site=host)
        server.install_reference_file(
            VOLGA_REFERENCE_XML.replace("volga.example.com", host), host)
    return scenarios


class TestEngineSelection:
    def test_default_engine_is_sql(self):
        with PolicyServer() as server:
            assert server.engine == "sql"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            PolicyServer(engine="pedagogical")


class TestStructuralParity:
    def test_checks_match_sql_engine(self, volga, jane, suite):
        with PolicyServer() as sql_server, \
                PolicyServer(engine="structural") as st_server:
            deploy(sql_server, volga)
            deploy(st_server, volga)
            hosts = ("good.example.com", "no-optin.example.com",
                     "oversharing.example.com")
            preferences = {"jane": jane, **suite}
            for name, preference in preferences.items():
                for host in hosts:
                    a = sql_server.check(host, "/cart", preference)
                    b = st_server.check(host, "/cart", preference)
                    assert (a.behavior, a.rule_index) == \
                        (b.behavior, b.rule_index), (name, host)

    def test_structural_plan_cached_separately(self, volga, jane):
        with PolicyServer(engine="structural",
                          cache_decisions=False) as server:
            deploy(server, volga)
            server.check("good.example.com", "/cart", jane)
            server.check("good.example.com", "/cart", jane)
            # one structural plan, not one per check
            assert server.cache_size() == 1

    def test_decision_cache_warm_path_still_serves(self, volga, jane):
        with PolicyServer(engine="structural") as server:
            deploy(server, volga)
            first = server.check("good.example.com", "/cart", jane)
            second = server.check("good.example.com", "/cart", jane)
            assert first.behavior == second.behavior
            assert server.decisions.hits >= 1


class TestLazyReconstruction:
    def test_policy_predating_the_sidecar_is_reconstructed(
            self, tmp_path, volga, jane):
        db_path = str(tmp_path / "server.db")
        with PolicyServer(db_path) as old:
            deploy(old, volga)
            baseline = old.check("good.example.com", "/cart", jane)
        # Reopen the same file with the structural engine: the sidecar
        # starts empty, so the first check reconstructs the policy from
        # the optimized store.
        with PolicyServer(db_path, engine="structural",
                          cache_decisions=False) as server:
            assert server._structural_ids == {}
            result = server.check("good.example.com", "/cart", jane)
            assert (result.behavior, result.rule_index) == \
                (baseline.behavior, baseline.rule_index)
            assert server._structural_ids


class TestServedPlanContracts:
    def test_sqlcheck_over_served_structural_plans(self, volga, jane,
                                                   suite):
        """Every plan the structural backend serves passes the schema
        contract: names resolve, arity matches, read-only, indexed."""
        with PolicyServer(engine="structural") as server:
            deploy(server, volga)
            contracts = []
            for name, preference in {"jane": jane, **suite}.items():
                plan = server.translate_structural(preference)
                contracts.append(StatementContract(
                    where=f"served/{name}", sql=plan.sql,
                    catalog="generic", binds=plan.parameter_count,
                    probe=(plan.parameters(1) if plan.rules else ()),
                    hot_tables=HOT_NODE_TABLES))
            assert len(contracts) == 6
            assert check_contracts(
                contracts, {"generic": generic_catalog()}) == []

    def test_audit_plans_flag_audits_structural_compilations(
            self, volga, jane):
        with PolicyServer(engine="structural",
                          audit_plans=True) as server:
            deploy(server, volga)
            server.check("good.example.com", "/cart", jane)
            assert server.last_audit_findings == ()


class TestCliWiring:
    def test_serve_parser_accepts_engine(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--engine", "structural", "--port", "0"])
        assert args.engine == "structural"

    def test_serve_parser_rejects_unknown_engine(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--engine", "appel"])
