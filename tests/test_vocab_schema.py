"""Element catalog: structure, key chains, and table naming (Figure 8 inputs)."""

import pytest

from repro.errors import VocabularyError
from repro.vocab import schema, terms


class TestCatalogStructure:
    def test_root_is_policy(self):
        assert schema.ROOT == "POLICY"
        assert schema.parent_of("POLICY") is None

    def test_every_non_root_has_one_parent(self):
        for name in schema.CATALOG:
            if name == schema.ROOT:
                continue
            assert schema.parent_of(name) in schema.CATALOG

    def test_statement_children(self):
        spec = schema.spec("STATEMENT")
        assert set(spec.children) == {
            "CONSEQUENCE", "NON-IDENTIFIABLE", "PURPOSE", "RECIPIENT",
            "RETENTION", "DATA-GROUP",
        }

    def test_purpose_children_are_the_twelve_purposes(self):
        assert schema.spec("PURPOSE").children == terms.PURPOSES

    def test_value_children_helper(self):
        assert schema.value_children("RECIPIENT") == terms.RECIPIENTS
        assert schema.value_children("CATEGORIES") == terms.CATEGORIES

    def test_unknown_element_raises(self):
        with pytest.raises(VocabularyError):
            schema.spec("WIRETAP")
        with pytest.raises(VocabularyError):
            schema.parent_of("WIRETAP")

    def test_iter_elements_covers_catalog_once(self):
        names = [spec.name for spec in schema.iter_elements()]
        assert len(names) == len(set(names))
        assert set(names) == set(schema.CATALOG)

    def test_iter_elements_root_first(self):
        assert schema.iter_elements()[0].name == "POLICY"


class TestKeyChains:
    """Figure 8's chained primary keys, matching the Figure 13 joins."""

    def test_root_path_for_purpose_value(self):
        assert schema.root_path("admin") == (
            "POLICY", "STATEMENT", "PURPOSE", "admin",
        )

    def test_key_columns_admin(self):
        # The exact key shape visible in Figure 13's Admin subquery.
        assert schema.key_columns("admin") == (
            "admin_id", "purpose_id", "statement_id", "policy_id",
        )

    def test_foreign_key_is_parent_primary_key(self):
        for name in ("STATEMENT", "PURPOSE", "DATA", "contact"):
            parent = schema.parent_of(name)
            assert schema.foreign_key_columns(name) == \
                schema.key_columns(parent)

    def test_policy_key_is_single_column(self):
        assert schema.key_columns("POLICY") == ("policy_id",)


class TestNaming:
    def test_table_name_lowers_and_dashes(self):
        assert schema.table_name("DATA-GROUP") == "data_group"
        assert schema.table_name("individual-decision") == \
            "individual_decision"

    def test_id_column(self):
        assert schema.id_column("STATEMENT") == "statement_id"

    def test_attribute_columns(self):
        assert schema.attribute_columns("DATA") == ("ref", "optional")
        assert schema.attribute_columns("POLICY") == (
            "name", "discuri", "opturi",
        )


class TestAttributeSpecs:
    def test_required_defaults_to_always_on_contact(self):
        attr = schema.spec("contact").attribute("required")
        assert attr is not None
        assert attr.default == "always"

    def test_current_has_no_required(self):
        assert schema.spec("current").attribute("required") is None

    def test_ours_has_no_required(self):
        assert schema.spec("ours").attribute("required") is None

    def test_resolve_uses_default(self):
        attr = schema.spec("contact").attribute("required")
        assert attr.resolve(None) == "always"
        assert attr.resolve("opt-in") == "opt-in"

    def test_data_optional_defaults_no(self):
        attr = schema.spec("DATA").attribute("optional")
        assert attr.default == "no"

    def test_is_value_element(self):
        assert schema.is_value_element("admin")
        assert schema.is_value_element("purchase")
        assert not schema.is_value_element("STATEMENT")
        assert not schema.is_value_element("NOT-AN-ELEMENT")
