"""Serializer: canonical output and parse/serialize round-trips."""

from repro.p3p.model import (
    DataItem,
    Disputes,
    Entity,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.parser import parse_policy
from repro.p3p.serializer import serialize_policy


def _roundtrip(policy: Policy) -> Policy:
    return parse_policy(serialize_policy(policy))


class TestRoundTrips:
    def test_minimal_policy(self):
        policy = Policy(statements=(Statement(),))
        assert _roundtrip(policy) == policy

    def test_volga(self, volga):
        assert _roundtrip(volga) == volga

    def test_augmented_volga(self, volga):
        augmented = volga.augmented()
        assert _roundtrip(augmented) == augmented

    def test_full_feature_policy(self):
        policy = Policy(
            name="full",
            discuri="http://example.com/p",
            opturi="http://example.com/opt",
            access="ident-contact",
            test=True,
            entity=Entity(data=(("#business.name", "Full Corp"),)),
            disputes=(
                Disputes(resolution_type="independent",
                         service="http://example.com/disp",
                         verification="seal-123",
                         remedies=("correct", "money"),
                         long_description="We fix problems."),
            ),
            statements=(
                Statement(
                    purposes=(PurposeValue("current"),
                              PurposeValue("contact", "opt-in")),
                    recipients=(RecipientValue("ours"),
                                RecipientValue("unrelated", "opt-out")),
                    retention="no-retention",
                    data=(DataItem("#user.name"),
                          DataItem("#dynamic.miscdata",
                                   optional="yes",
                                   categories=("purchase", "financial"))),
                    consequence="Because reasons.",
                ),
                Statement(non_identifiable=True),
            ),
        )
        assert _roundtrip(policy) == policy

    def test_corpus_roundtrips(self, corpus):
        for policy in corpus:
            assert _roundtrip(policy) == policy


class TestCanonicalOutput:
    def test_default_required_omitted(self):
        policy = Policy(statements=(
            Statement(purposes=(PurposeValue("contact", "always"),)),
        ))
        xml = serialize_policy(policy)
        assert "required" not in xml

    def test_non_default_required_emitted(self):
        policy = Policy(statements=(
            Statement(purposes=(PurposeValue("contact", "opt-in"),)),
        ))
        assert 'required="opt-in"' in serialize_policy(policy)

    def test_default_optional_omitted(self):
        policy = Policy(statements=(
            Statement(data=(DataItem("#user.name"),)),
        ))
        assert "optional" not in serialize_policy(policy)

    def test_namespaced_serialization_reparses(self, volga):
        xml = serialize_policy(volga, namespaced=True)
        assert 'xmlns="http://www.w3.org/2002/01/P3Pv1"' in xml
        assert parse_policy(xml) == volga

    def test_empty_sections_not_emitted(self):
        xml = serialize_policy(Policy(statements=(Statement(),)))
        for tag in ("ENTITY", "ACCESS", "DISPUTES-GROUP", "PURPOSE",
                    "RECIPIENT", "RETENTION", "DATA-GROUP"):
            assert f"<{tag}" not in xml
