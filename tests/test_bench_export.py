"""JSON export of benchmark results."""

import json

import pytest

from repro.bench.export import run_all, save_results


@pytest.fixture(scope="module")
def results():
    # One full run for the whole module (a few seconds).
    return run_all()


class TestRunAll:
    def test_top_level_keys(self, results):
        assert set(results) == {
            "meta", "e1_dataset", "e2_preferences", "e3_shredding",
            "e4_figure20", "e5_figure21", "e6_warm_cold", "e7_ablation",
            "e8_concurrency", "e9_http_load", "e10_fault_tolerance",
            "e11_plan_compilation", "e12_bulk_matching",
        }

    def test_json_serializable(self, results):
        text = json.dumps(results)
        assert json.loads(text) == results

    def test_dataset_block(self, results):
        assert results["e1_dataset"]["policies"] == 29
        assert results["e1_dataset"]["statements"] == 54

    def test_figure20_block_has_three_engines(self, results):
        assert set(results["e4_figure20"]) == {"appel", "sql", "xquery"}
        sql = results["e4_figure20"]["sql"]
        assert sql["total"]["average_seconds"] > 0
        assert sql["failures"] == 0
        assert results["e4_figure20"]["xquery"]["failures"] > 0

    def test_shape_claims_visible_in_numbers(self, results):
        f20 = results["e4_figure20"]
        assert f20["sql"]["total"]["average_seconds"] \
            < f20["xquery"]["total"]["average_seconds"] \
            < f20["appel"]["total"]["average_seconds"]
        assert results["e7_ablation"]["augmentation_share"] > 0.5

    def test_medium_xquery_cell_marked_unavailable(self, results):
        cells = {(c["level"], c["engine"]): c
                 for c in results["e5_figure21"]}
        assert cells[("Medium", "xquery")]["unavailable"]
        assert not cells[("High", "xquery")]["unavailable"]

    def test_concurrency_block(self, results):
        rows = results["e8_concurrency"]
        assert {(r["mode"], r["threads"]) for r in rows} == {
            ("serial", 1), ("pooled", 1), ("pooled", 4), ("pooled", 16),
        }
        for row in rows:
            assert row["checks_per_second"] > 0

    def test_http_load_block(self, results):
        block = results["e9_http_load"]
        assert {(r["mode"], r["threads"]) for r in block["rows"]} == {
            ("in-process", 1), ("in-process", 4), ("in-process", 16),
            ("http", 1), ("http", 4), ("http", 16),
        }
        for row in block["rows"]:
            assert row["checks_per_second"] > 0
        assert set(block["overhead"]) == {"1", "4", "16"}
        for multiple in block["overhead"].values():
            assert multiple > 0

    def test_fault_tolerance_block(self, results):
        block = results["e10_fault_tolerance"]
        assert [r["mode"] for r in block["rows"]] == \
            ["no-retry", "retry", "retry-faults"]
        for row in block["rows"]:
            assert row["per_check_seconds"] > 0
        faulted = block["rows"][-1]
        assert faulted["faults_injected"] > 0
        assert faulted["retries"] >= faulted["faults_injected"]
        assert block["retry_overhead"] > 0

    def test_plan_compilation_block(self, results):
        rows = {r["mode"]: r for r in results["e11_plan_compilation"]}
        assert set(rows) == {"literal", "plan"}
        plan, literal = rows["plan"], rows["literal"]
        assert plan["round_trips_per_check"] == 1.0
        assert literal["round_trips_per_check"] >= \
            plan["round_trips_per_check"]
        assert plan["translations"] < literal["translations"]
        assert plan["cached_sql_chars"] < literal["cached_sql_chars"]

    def test_bulk_matching_block(self, results):
        rows = {r["mode"]: r for r in results["e12_bulk_matching"]}
        assert set(rows) == {"per-policy", "bulk", "cached"}
        assert rows["bulk"]["round_trips"] == 1
        assert rows["cached"]["round_trips"] == 1
        assert rows["per-policy"]["round_trips"] == \
            rows["per-policy"]["policies"]
        assert len({r["decisions"] for r in rows.values()}) == 1


class TestSaveResults:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "results.json"
        returned = save_results(str(path))
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == json.loads(json.dumps(returned))

    def test_cli_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "r.json"
        assert main(["bench", "--json", str(path)]) == 0
        assert path.exists()
        assert "wrote results" in capsys.readouterr().out
