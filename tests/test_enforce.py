"""Enforcement: consent registry, privacy validator, retention auditor."""

import datetime

import pytest

from repro.corpus.volga import volga_policy
from repro.enforce import (
    PURPOSE,
    RECIPIENT,
    AccessRequest,
    ConsentRegistry,
    PrivacyValidator,
    RetentionAuditor,
    ref_covers,
)
from repro.errors import StorageError, UnknownPolicyError
from repro.storage import Database, PolicyStore


@pytest.fixture()
def world():
    db = Database()
    store = PolicyStore(db)
    policy_id = store.install_policy(volga_policy()).policy_id
    return db, policy_id


class TestRefCovers:
    def test_exact(self):
        assert ref_covers("#user.name", "#user.name")

    def test_structure_covers_fields(self):
        assert ref_covers("#user.home-info.postal",
                          "#user.home-info.postal.street")

    def test_field_does_not_cover_structure(self):
        assert not ref_covers("#user.home-info.postal.street",
                              "#user.home-info.postal")

    def test_prefix_must_be_segment_aligned(self):
        assert not ref_covers("#user.name", "#user.names")

    def test_hash_optional(self):
        assert ref_covers("user.name", "#user.name.given")


class TestConsentRegistry:
    def test_always_is_implied(self, world):
        db, pid = world
        registry = ConsentRegistry(db)
        assert registry.is_consented("u", pid, PURPOSE, "current", "always")

    def test_opt_in_defaults_denied(self, world):
        db, pid = world
        registry = ConsentRegistry(db)
        assert not registry.is_consented("u", pid, PURPOSE, "contact",
                                         "opt-in")
        registry.grant("u", pid, PURPOSE, "contact")
        assert registry.is_consented("u", pid, PURPOSE, "contact",
                                     "opt-in")

    def test_opt_out_defaults_granted(self, world):
        db, pid = world
        registry = ConsentRegistry(db)
        assert registry.is_consented("u", pid, RECIPIENT, "same",
                                     "opt-out")
        registry.revoke("u", pid, RECIPIENT, "same")
        assert not registry.is_consented("u", pid, RECIPIENT, "same",
                                         "opt-out")

    def test_state_is_per_user(self, world):
        db, pid = world
        registry = ConsentRegistry(db)
        registry.grant("alice", pid, PURPOSE, "contact")
        assert registry.is_consented("alice", pid, PURPOSE, "contact",
                                     "opt-in")
        assert not registry.is_consented("bob", pid, PURPOSE, "contact",
                                         "opt-in")

    def test_records_for_user(self, world):
        db, pid = world
        registry = ConsentRegistry(db)
        registry.grant("alice", pid, PURPOSE, "contact")
        registry.revoke("alice", pid, PURPOSE, "telemarketing")
        records = registry.records_for_user("alice")
        assert [(r.value, r.granted) for r in records] == [
            ("contact", True), ("telemarketing", False),
        ]

    def test_unknown_kind_rejected(self, world):
        db, pid = world
        registry = ConsentRegistry(db)
        with pytest.raises(StorageError):
            registry.grant("u", pid, "mood", "happy")
        with pytest.raises(StorageError):
            registry.is_consented("u", pid, PURPOSE, "contact", "maybe")


class TestPrivacyValidator:
    def test_stated_use_allowed(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        decision = validator.check(
            AccessRequest("jane", pid, "current", "ours", "#user.name"))
        assert decision.allowed
        assert decision.statement_id == 1

    def test_structure_field_covered(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        decision = validator.check(AccessRequest(
            "jane", pid, "current", "ours",
            "#user.home-info.postal.street"))
        assert decision.allowed

    def test_unstated_purpose_denied(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        decision = validator.check(AccessRequest(
            "jane", pid, "telemarketing", "ours", "#user.name"))
        assert not decision.allowed
        assert "telemarketing" in decision.reason

    def test_uncollected_data_denied(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        decision = validator.check(AccessRequest(
            "jane", pid, "current", "ours", "#user.bdate"))
        assert not decision.allowed
        assert "no statement collects" in decision.reason

    def test_opt_in_purpose_needs_consent(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        request = AccessRequest("jane", pid, "contact", "ours",
                                "#user.home-info.online.email")
        assert not validator.check(request).allowed
        validator.consent.grant("jane", pid, PURPOSE, "contact")
        assert validator.check(request).allowed

    def test_unstated_recipient_denied(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        validator.consent.grant("jane", pid, PURPOSE, "contact")
        decision = validator.check(AccessRequest(
            "jane", pid, "contact", "public",
            "#user.home-info.online.email"))
        assert not decision.allowed

    def test_unknown_policy_raises(self, world):
        db, _ = world
        validator = PrivacyValidator(db)
        with pytest.raises(UnknownPolicyError):
            validator.check(AccessRequest("jane", 404, "current", "ours",
                                          "#user.name"))

    def test_audit_log_and_reports(self, world):
        db, pid = world
        validator = PrivacyValidator(db)
        validator.check(AccessRequest("jane", pid, "current", "ours",
                                      "#user.name"))
        validator.check(AccessRequest("jane", pid, "telemarketing",
                                      "ours", "#user.name"))
        denied = validator.denied_accesses(pid)
        assert len(denied) == 1
        assert denied[0]["purpose"] == "telemarketing"
        used = validator.purposes_used_for(pid, "#user.name")
        assert used == [("current", 1)]

    def test_logging_can_be_disabled(self, world):
        db, pid = world
        validator = PrivacyValidator(db, log_decisions=False)
        validator.check(AccessRequest("jane", pid, "current", "ours",
                                      "#user.name"))
        assert db.table_count("access_log") == 0


class TestRetentionAuditor:
    def _old(self, days):
        return (datetime.datetime.now(datetime.timezone.utc)
                - datetime.timedelta(days=days))

    def test_strictest_covering_retention_wins(self, world):
        db, pid = world
        auditor = RetentionAuditor(db)
        # miscdata appears in both statements: stated-purpose (stmt 1)
        # and business-practices (stmt 2) — strictest applies.
        assert auditor.retention_for(pid, "#dynamic.miscdata") == \
            "stated-purpose"
        assert auditor.retention_for(pid,
                                     "#user.home-info.online.email") == \
            "business-practices"
        assert auditor.retention_for(pid, "#user.bdate") is None

    def test_overdue_record_flagged(self, world):
        db, pid = world
        auditor = RetentionAuditor(db)
        auditor.record_stored(pid, "#user.name", self._old(90))
        findings = auditor.audit(pid)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.retention == "stated-purpose"
        assert finding.overdue_days > 50

    def test_fresh_record_not_flagged(self, world):
        db, pid = world
        auditor = RetentionAuditor(db)
        auditor.record_stored(pid, "#user.name", self._old(5))
        assert auditor.audit(pid) == []

    def test_indefinite_retention_never_flagged(self, world):
        db, pid = world
        auditor = RetentionAuditor(db, horizons={"business-practices": None})
        auditor.record_stored(pid, "#user.home-info.online.email",
                              self._old(10_000))
        assert auditor.audit(pid) == []

    def test_ungoverned_record_is_violation(self, world):
        db, pid = world
        auditor = RetentionAuditor(db)
        auditor.record_stored(pid, "#user.bdate", self._old(1))
        findings = auditor.audit(pid)
        assert len(findings) == 1
        assert findings[0].retention == "no-retention"

    def test_purge(self, world):
        db, pid = world
        auditor = RetentionAuditor(db)
        auditor.record_stored(pid, "#user.name", self._old(90))
        findings = auditor.audit(pid)
        assert auditor.purge(findings) == 1
        assert auditor.audit(pid) == []

    def test_unknown_policy_raises(self, world):
        db, _ = world
        auditor = RetentionAuditor(db)
        with pytest.raises(UnknownPolicyError):
            auditor.audit(999)
