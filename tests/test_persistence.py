"""File-backed persistence: close a server database, reopen it, keep going.

The paper's whole pitch is server-side state in a real database; that only
holds up if the database survives process restarts.  These tests exercise
the reopen path for every store.
"""

import pytest

from repro.corpus.volga import VOLGA_REFERENCE_XML, volga_policy
from repro.p3p.reference import parse_reference_file
from repro.server import PolicyServer
from repro.storage import (
    Database,
    GenericPolicyStore,
    PolicyStore,
    ReferenceStore,
)
from repro.storage.reconstruct import reconstruct_policy


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "p3p.db")


class TestPolicyStorePersistence:
    def test_reopen_and_read(self, db_path, volga):
        store = PolicyStore(Database(db_path))
        pid = store.install_policy(volga).policy_id
        store.db.close()

        reopened = PolicyStore(Database(db_path))
        assert reopened.has_policy(pid)
        assert reconstruct_policy(reopened.db, pid) == volga.augmented()
        reopened.db.close()

    def test_reopen_and_install_more(self, db_path, volga):
        store = PolicyStore(Database(db_path))
        first = store.install_policy(volga).policy_id
        store.db.close()

        reopened = PolicyStore(Database(db_path))
        second = reopened.install_policy(volga).policy_id
        assert second != first
        assert reopened.policy_ids() == [first, second]
        reopened.db.close()


class TestGenericStorePersistence:
    def test_id_sequences_resume(self, db_path, volga):
        store = GenericPolicyStore(Database(db_path))
        first = store.install_policy(volga)
        statements_before = store.db.table_count("statement")
        store.db.close()

        reopened = GenericPolicyStore(Database(db_path))
        second = reopened.install_policy(volga)
        assert second == first + 1  # no primary-key collision
        assert reopened.db.table_count("statement") == \
            statements_before * 2
        reopened.db.close()


class TestServerPersistence:
    def test_full_server_survives_restart(self, db_path, volga, jane):
        server = PolicyServer(Database(db_path))
        server.install_policy(volga, site="volga.example.com")
        server.install_reference_file(VOLGA_REFERENCE_XML,
                                      "volga.example.com")
        before = server.check("volga.example.com", "/catalog/x", jane)
        checks_before = server.check_count()
        server.db.close()

        restarted = PolicyServer(Database(db_path))
        after = restarted.check("volga.example.com", "/catalog/x", jane)
        assert after.behavior == before.behavior == "request"
        assert after.policy_id == before.policy_id
        # The check log persisted and keeps growing.
        assert restarted.check_count() == checks_before + 1
        restarted.db.close()

    def test_versioning_survives_restart(self, db_path, volga):
        server = PolicyServer(Database(db_path))
        server.install_policy(volga, site="volga.example.com")
        server.db.close()

        restarted = PolicyServer(Database(db_path))
        report = restarted.install_policy(volga, site="volga.example.com")
        history = restarted.versions.history("volga")
        assert [v.version for v in history] == [1, 2]
        assert history[-1].policy_id == report.policy_id
        restarted.db.close()


class TestReferenceStorePersistence:
    def test_lookup_after_reopen(self, db_path, volga):
        db = Database(db_path)
        policies = PolicyStore(db)
        pid = policies.install_policy(volga).policy_id
        references = ReferenceStore(db)
        references.install_reference_file(
            parse_reference_file(VOLGA_REFERENCE_XML),
            "volga.example.com", policy_ids={"volga": pid})
        db.close()

        reopened = ReferenceStore(Database(db_path))
        assert reopened.applicable_policy_id(
            "volga.example.com", "/shop") == pid
        reopened.db.close()
