"""Custom DATASCHEMA documents and the schema registry."""

import pytest

from repro.appel.engine import AppelEngine
from repro.appel.model import expression, rule, ruleset
from repro.errors import PolicyParseError, VocabularyError
from repro.p3p.model import DataItem, Policy, PurposeValue, RecipientValue, Statement
from repro.storage.shredder import PolicyStore
from repro.vocab.dataschema import (
    DataSchemaRegistry,
    parse_dataschema,
    split_ref,
)

SHOP_SCHEMA_URI = "http://shop.example.com/schema"
SHOP_SCHEMA_XML = """
<DATASCHEMA xmlns="http://www.w3.org/2002/01/P3Pv1">
  <DATA-STRUCT name="order">
  </DATA-STRUCT>
  <DATA-STRUCT name="order.id">
    <CATEGORIES><uniqueid/></CATEGORIES>
  </DATA-STRUCT>
  <DATA-STRUCT name="order.giftwrap">
    <CATEGORIES><preference/></CATEGORIES>
  </DATA-STRUCT>
  <DATA-STRUCT name="order.total">
    <CATEGORIES><purchase/><financial/></CATEGORIES>
  </DATA-STRUCT>
  <DATA-STRUCT name="survey" variable="yes"/>
</DATASCHEMA>
"""


@pytest.fixture()
def registry():
    schema = parse_dataschema(SHOP_SCHEMA_XML, SHOP_SCHEMA_URI)
    return DataSchemaRegistry([schema])


class TestSplitRef:
    def test_base_ref(self):
        assert split_ref("#user.name") == ("", "user.name")

    def test_custom_ref(self):
        assert split_ref(f"{SHOP_SCHEMA_URI}#order.id") == \
            (SHOP_SCHEMA_URI, "order.id")

    def test_bare_name(self):
        assert split_ref("user.name") == ("", "user.name")


class TestParsing:
    def test_elements_parsed(self):
        schema = parse_dataschema(SHOP_SCHEMA_XML, SHOP_SCHEMA_URI)
        assert schema.lookup("order.id").categories == \
            frozenset({"uniqueid"})
        assert schema.lookup("survey").variable

    def test_unknown_category_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_dataschema(
                '<DATASCHEMA><DATA-STRUCT name="x">'
                "<CATEGORIES><gossip/></CATEGORIES>"
                "</DATA-STRUCT></DATASCHEMA>", "u")

    def test_missing_name_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_dataschema("<DATASCHEMA><DATA-STRUCT/></DATASCHEMA>", "u")

    def test_empty_schema_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_dataschema("<DATASCHEMA/>", "u")

    def test_malformed_xml_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_dataschema("<DATASCHEMA", "u")


class TestRegistryResolution:
    def test_base_refs_still_resolve(self, registry):
        assert registry.is_known_ref("#user.name")
        assert "physical" in registry.categories_for_ref("#user.name")

    def test_custom_ref_resolves(self, registry):
        ref = f"{SHOP_SCHEMA_URI}#order.id"
        assert registry.is_known_ref(ref)
        assert registry.categories_for_ref(ref) == frozenset({"uniqueid"})

    def test_structure_union(self, registry):
        ref = f"{SHOP_SCHEMA_URI}#order"
        assert registry.categories_for_ref(ref) == frozenset(
            {"uniqueid", "preference", "purchase", "financial"}
        )

    def test_unknown_schema_uri(self, registry):
        ref = "http://other.example.com/schema#x"
        assert not registry.is_known_ref(ref)
        assert registry.categories_for_ref(ref) == frozenset()

    def test_variable_custom_ref(self, registry):
        assert registry.is_variable_ref(f"{SHOP_SCHEMA_URI}#survey")
        with pytest.raises(VocabularyError):
            registry.is_variable_ref("http://nowhere/#x")

    def test_empty_uri_schema_rejected(self):
        from repro.vocab.dataschema import CustomDataSchema

        registry = DataSchemaRegistry()
        with pytest.raises(VocabularyError):
            registry.register(CustomDataSchema(uri="", elements={}))


def _shop_policy() -> Policy:
    return Policy(
        name="shop",
        discuri="http://shop.example.com/p",
        statements=(
            Statement(
                purposes=(PurposeValue("current"),),
                recipients=(RecipientValue("ours"),),
                retention="stated-purpose",
                data=(
                    DataItem(f"{SHOP_SCHEMA_URI}#order.total"),
                    DataItem("#user.name"),
                ),
            ),
        ),
    )


class TestEndToEndWithCustomSchema:
    def test_augmented_expands_custom_refs(self, registry):
        augmented = _shop_policy().augmented(registry)
        items = {item.ref: item.categories
                 for item in augmented.statements[0].data}
        assert set(items[f"{SHOP_SCHEMA_URI}#order.total"]) == \
            {"purchase", "financial"}
        assert "physical" in items["#user.name"]

    def test_without_registry_custom_refs_unexpanded(self):
        augmented = _shop_policy().augmented()
        items = {item.ref: item.categories
                 for item in augmented.statements[0].data}
        assert items[f"{SHOP_SCHEMA_URI}#order.total"] == ()

    def test_shredder_expands_custom_categories(self, registry):
        store = PolicyStore(registry=registry)
        pid = store.install_policy(_shop_policy()).policy_id
        categories = {
            row["category"]
            for row in store.db.query(
                "SELECT category FROM category WHERE policy_id = ?",
                (pid,))
        }
        assert {"purchase", "financial"} <= categories

    def test_engine_matches_custom_categories(self, registry):
        """A category rule fires on the custom schema's financial tag —
        in both the native engine and the SQL pipeline."""
        preference = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("DATA-GROUP",
                                                  expression(
                                                      "DATA",
                                                      expression(
                                                          "CATEGORIES",
                                                          expression(
                                                              "financial"))))))),
            rule("request"),
        )
        engine = AppelEngine(registry=registry)
        native = engine.evaluate(_shop_policy(), preference)
        assert native.behavior == "block"

        from repro.translate.appel_to_sql import (
            OptimizedSqlTranslator,
            applicable_policy_literal,
            evaluate_ruleset,
        )

        store = PolicyStore(registry=registry)
        pid = store.install_policy(_shop_policy()).policy_id
        translated = OptimizedSqlTranslator().translate_ruleset(
            preference, applicable_policy_literal(pid))
        assert evaluate_ruleset(store.db, translated) == ("block", 0)

    def test_engines_agree_without_registry_too(self):
        """Unresolvable custom refs degrade identically everywhere."""
        preference = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("DATA-GROUP",
                                                  expression(
                                                      "DATA",
                                                      expression(
                                                          "CATEGORIES",
                                                          expression(
                                                              "financial"))))))),
            rule("request"),
        )
        native = AppelEngine().evaluate(_shop_policy(), preference)
        assert native.behavior == "request"

        from repro.translate.appel_to_sql import (
            OptimizedSqlTranslator,
            applicable_policy_literal,
            evaluate_ruleset,
        )

        store = PolicyStore()
        pid = store.install_policy(_shop_policy()).policy_id
        translated = OptimizedSqlTranslator().translate_ruleset(
            preference, applicable_policy_literal(pid))
        assert evaluate_ruleset(store.db, translated) == ("request", 1)
