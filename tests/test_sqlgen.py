"""SQL text-building helpers: the 'superfluous parenthesis' checks of
Figure 11's footnote, plus the six-connective combination table."""

import pytest

from repro.errors import TranslationError
from repro.translate import sqlgen
from repro.translate.sqlgen import FALSE_CLAUSE, TRUE_CLAUSE


class TestConjoinDisjoin:
    def test_conjoin_drops_true(self):
        assert sqlgen.conjoin(["a", TRUE_CLAUSE, "b"]) == "(a\n AND b)"

    def test_conjoin_single(self):
        assert sqlgen.conjoin(["a", TRUE_CLAUSE]) == "a"

    def test_conjoin_empty_is_true(self):
        assert sqlgen.conjoin([]) == TRUE_CLAUSE
        assert sqlgen.conjoin([TRUE_CLAUSE]) == TRUE_CLAUSE

    def test_conjoin_short_circuits_false(self):
        assert sqlgen.conjoin(["a", FALSE_CLAUSE]) == FALSE_CLAUSE

    def test_disjoin_drops_false(self):
        assert sqlgen.disjoin([FALSE_CLAUSE, "a"]) == "a"

    def test_disjoin_empty_is_false(self):
        assert sqlgen.disjoin([]) == FALSE_CLAUSE

    def test_disjoin_short_circuits_true(self):
        assert sqlgen.disjoin(["a", TRUE_CLAUSE]) == TRUE_CLAUSE


class TestNegate:
    def test_constants_fold(self):
        assert sqlgen.negate(TRUE_CLAUSE) == FALSE_CLAUSE
        assert sqlgen.negate(FALSE_CLAUSE) == TRUE_CLAUSE

    def test_parenthesized_clause(self):
        assert sqlgen.negate("(a AND b)") == "NOT (a AND b)"

    def test_bare_clause_gets_parens(self):
        assert sqlgen.negate("a = 1") == "NOT (a = 1)"


class TestExists:
    def test_exists_indents(self):
        text = sqlgen.exists("SELECT *\nFROM t")
        assert text.startswith("EXISTS (")
        assert "  SELECT *" in text

    def test_not_exists(self):
        assert sqlgen.not_exists("SELECT 1").startswith("NOT EXISTS (")


class TestCombine:
    def test_and(self):
        assert sqlgen.combine("and", ["a", "b"], "e") == "(a\n AND b)"

    def test_or(self):
        assert sqlgen.combine("or", ["a", "b"], "e") == "(a\n OR b)"

    def test_non_and(self):
        assert sqlgen.combine("non-and", ["a", "b"], "e") == \
            "NOT (a\n AND b)"

    def test_non_or(self):
        assert sqlgen.combine("non-or", ["a", "b"], "e") == \
            "NOT (a\n OR b)"

    def test_and_exact_appends_exactness(self):
        combined = sqlgen.combine("and-exact", ["a"], "only_listed")
        assert "only_listed" in combined
        assert "a" in combined

    def test_or_exact(self):
        combined = sqlgen.combine("or-exact", ["a", "b"], "only_listed")
        assert "OR" in combined and "only_listed" in combined

    def test_exactness_ignored_by_plain_connectives(self):
        assert "exact" not in sqlgen.combine("and", ["a"], "exact_clause")

    def test_unknown_connective_raises(self):
        with pytest.raises(TranslationError):
            sqlgen.combine("xor", ["a"], "e")


class TestIndentBlock:
    def test_every_line_indented(self):
        assert sqlgen.indent_block("a\nb") == "  a\n  b"

    def test_custom_prefix(self):
        assert sqlgen.indent_block("a", prefix="----") == "----a"
