"""The EXPLAIN-plan auditor: scan detection, SQL taint, corpus gate."""

import pytest

from repro.analysis import (
    HOT_TABLES,
    audit_bulk_plan,
    audit_compiled_plan,
    audit_corpus,
    audit_decision_lookup,
    audit_statement,
    audit_translated_ruleset,
    scan_findings,
    taint_findings,
)
from repro.analysis.plans import plan_untrusted_strings, strip_quoted
from repro.storage.database import Database
from repro.storage.decision_cache import DecisionCache
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import (
    OptimizedSqlTranslator,
    applicable_policy_literal,
)
from repro.translate.plan import BulkPlan, CompiledPlan, PlanRule


@pytest.fixture()
def store(volga):
    """Optimized store with Volga's policy installed (policy_id 1)."""
    store = PolicyStore(Database())
    store.install_policy(volga)
    return store


class TestStripQuoted:
    def test_blanks_string_literals(self):
        assert strip_quoted("SELECT 'a''b', x") == "SELECT " + " " * 6 + ", x"

    def test_blanks_quoted_identifiers(self):
        live = strip_quoted('SELECT "weird""name" FROM t')
        assert '"' not in live and "FROM t" in live

    def test_preserves_length(self):
        sql = "SELECT 'abc' FROM \"t\" WHERE x = 'd'"
        assert len(strip_quoted(sql)) == len(sql)


class TestTaint:
    def test_quoted_value_is_inert(self):
        assert taint_findings("SELECT * FROM t WHERE b = 'block'",
                              ["block"], "w") == []

    def test_bare_value_is_flagged(self):
        findings = taint_findings("SELECT * FROM t WHERE b = block",
                                  ["block"], "w")
        assert [f.code for f in findings] == ["tainted-sql"]
        assert findings[0].severity == "error"

    def test_substring_of_identifier_not_flagged(self):
        # "data" the untrusted string vs the data table: word-bounded.
        assert taint_findings("SELECT * FROM datathing", ["data"],
                              "w") == []

    def test_digit_only_values_skipped(self):
        assert taint_findings("SELECT 1 FROM t LIMIT 1", ["1"], "w") == []

    def test_each_value_reported_once(self):
        findings = taint_findings("SELECT bad, bad, bad FROM t",
                                  ["bad", "bad"], "w")
        assert len(findings) == 1


class TestScanFindings:
    def test_indexed_probe_is_clean(self, store):
        sql = "SELECT * FROM statement WHERE policy_id = ?"
        assert scan_findings(store.db, sql, (1,)) == []

    def test_full_scan_of_hot_table_is_flagged(self, store):
        findings = scan_findings(store.db,
                                 "SELECT * FROM statement WHERE "
                                 "consequence = 'x'")
        assert [f.code for f in findings] == ["full-scan"]
        assert "statement" in findings[0].message

    def test_full_scan_of_cold_table_is_ignored(self, store):
        assert scan_findings(store.db, "SELECT * FROM policy") == []

    def test_custom_hot_set(self, store):
        findings = scan_findings(store.db, "SELECT * FROM policy",
                                 hot_tables=frozenset({"policy"}))
        assert len(findings) == 1

    def test_audit_statement_combines_scan_and_taint(self, store):
        # "retention" names a real column, so the statement still
        # EXPLAINs — but as the untrusted string it is live SQL text.
        findings = audit_statement(
            store.db,
            "SELECT * FROM statement WHERE consequence = retention",
            untrusted=["retention"], where="combo")
        assert {f.code for f in findings} == {"full-scan", "tainted-sql"}
        assert all(f.where == "combo" for f in findings)


class TestCompiledPlanAudit:
    def test_suite_plans_are_clean(self, store, suite):
        translator = OptimizedSqlTranslator()
        for level, rs in suite.items():
            plan = translator.compile_ruleset(rs)
            findings = audit_compiled_plan(
                store.db, plan, where=level,
                untrusted=plan_untrusted_strings(rs))
            assert findings == [], level

    def test_literal_translations_are_clean(self, store, suite):
        translator = OptimizedSqlTranslator()
        for level, rs in suite.items():
            translated = translator.translate_ruleset(
                rs, applicable_policy_literal(1))
            findings = audit_translated_ruleset(
                store.db, translated, where=level,
                untrusted=plan_untrusted_strings(rs))
            assert findings == [], level

    def test_bind_arity_mismatch_detected(self, store):
        doctored = CompiledPlan(
            rules=(PlanRule(behavior="block", rule_index=0,
                            sql="SELECT 'block' AS behavior, "
                                "0 AS rule_index"),),
            sql="SELECT 'block' AS behavior, 0 AS rule_index",
        )
        findings = audit_compiled_plan(store.db, doctored)
        assert [f.code for f in findings] == ["bind-arity"]

    def test_placeholders_inside_literals_not_counted(self, store):
        plan = CompiledPlan(
            rules=(PlanRule(behavior="block", rule_index=0, sql="x"),),
            sql="SELECT 'what?' AS behavior, 0 AS rule_index "
                "FROM policy WHERE policy_id = ?",
        )
        assert audit_compiled_plan(store.db, plan) == []

    def test_untrusted_strings_cover_behaviors_and_attributes(self, jane):
        collected = plan_untrusted_strings(jane)
        assert "block" in collected
        assert "request" in collected
        assert any(value == "always" for value in collected)


class TestBulkPlanAudit:
    def test_suite_bulk_plans_are_clean(self, store, suite):
        translator = OptimizedSqlTranslator()
        for level, rs in suite.items():
            for batch_size in (0, 2):
                plan = translator.compile_bulk(rs, batch_size=batch_size)
                findings = audit_bulk_plan(
                    store.db, plan, where=f"{level}/bulk[{batch_size}]",
                    untrusted=plan_untrusted_strings(rs))
                assert findings == [], (level, batch_size)

    def test_bind_arity_mismatch_detected(self, store, suite):
        plan = OptimizedSqlTranslator().compile_bulk(suite["Low"],
                                                     batch_size=2)
        doctored = BulkPlan(rules=plan.rules, sql=plan.sql, batch_size=3)
        findings = audit_bulk_plan(store.db, doctored)
        assert [f.code for f in findings] == ["bind-arity"]
        assert findings[0].severity == "error"

    def test_empty_bulk_plan_is_clean(self, store):
        assert audit_bulk_plan(store.db,
                               BulkPlan(rules=(), sql="")) == []


class TestDecisionLookupAudit:
    @pytest.fixture()
    def cache_db(self, store):
        cache = DecisionCache()
        cache.ensure_schema(store.db)
        return cache, store.db

    def test_lookup_and_match_statements_are_clean(self, cache_db):
        cache, db = cache_db
        assert audit_decision_lookup(db, cache.LOOKUP_SQL,
                                     ("probe", 1)) == []
        assert audit_decision_lookup(db, cache.MATCH_SQL, ("probe",)) == []

    def test_unindexed_cache_read_is_flagged(self, cache_db):
        _, db = cache_db
        findings = audit_decision_lookup(
            db, "SELECT * FROM decision_cache WHERE behavior = 'block'")
        assert [f.code for f in findings] == ["cache-scan"]
        assert findings[0].severity == "error"

    def test_cache_scan_is_stricter_than_hot_table_scan(self, cache_db):
        # scan_findings alone would pass this statement — the cache
        # table is not in HOT_TABLES; the cache audit must not.
        _, db = cache_db
        sql = "SELECT * FROM decision_cache WHERE behavior = 'block'"
        assert scan_findings(db, sql) == []
        assert audit_decision_lookup(db, sql) != []


class TestCorpusGate:
    def test_small_corpus_audit_is_clean(self, small_corpus, suite):
        report = audit_corpus(small_corpus, suite)
        assert report.ok
        assert report.policies == len(small_corpus)
        assert report.preferences == len(suite)
        assert report.plans_explained == len(suite)
        assert report.findings == ()
        assert report.differential_ok

    def test_no_literal_mode_explains_only_plans(self, small_corpus,
                                                 suite):
        report = audit_corpus(small_corpus, suite, audit_literal=False)
        assert report.ok
        # Per preference: one compiled plan + two bulk forms (full
        # corpus and a micro-batch) + one structural XQuery plan; plus
        # the two static cache statements audited once.
        assert report.bulk_plans_explained == 2 * len(suite)
        assert report.structural_plans_explained == len(suite)
        assert report.cache_lookups_explained == 2
        assert report.statements_explained == 4 * len(suite) + 2

    def test_unreachable_rule_surfaces_in_report(self, small_corpus,
                                                 suite):
        from repro.appel.model import rule, ruleset

        rs = suite["Very Low"]
        poisoned = ruleset(*rs.rules, rule("block"))  # after catch-all
        report = audit_corpus(small_corpus, {"poisoned": poisoned},
                              audit_literal=False)
        dead = [f for f in report.reachability
                if f.code == "unreachable-rule"]
        assert [f.rule_index for f in dead] == [len(rs.rules)]
        assert report.differential_ok  # flagged rule never fired
        assert report.ok  # reachability findings inform, not gate

    def test_hot_tables_match_optimized_schema(self):
        assert HOT_TABLES == {"statement", "purpose", "recipient",
                              "data", "category"}
