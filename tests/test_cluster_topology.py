"""The consistent-hash ring: determinism, balance, minimal movement."""

from __future__ import annotations

import pytest

from repro.cluster.topology import (
    DEFAULT_VNODES,
    Topology,
    rebalance_plan,
)

KEYS = [f"www.site-{i}.example.com" for i in range(2000)]


class TestTopologyValidation:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            Topology(shards=0)

    def test_rejects_negative_replicas(self):
        with pytest.raises(ValueError):
            Topology(shards=1, replicas=-1)

    def test_rejects_nonpositive_version(self):
        with pytest.raises(ValueError):
            Topology(shards=1, version=0)

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ValueError):
            Topology(shards=1, vnodes=0)


class TestOwnership:
    def test_deterministic_across_instances(self):
        """Two independently built rings must agree on every key — the
        property that lets router, workers and clients each build their
        own ring from the same wire config."""
        a = Topology(shards=5)
        b = Topology(shards=5)
        assert [a.owner_shard(k) for k in KEYS] == \
            [b.owner_shard(k) for k in KEYS]

    def test_owner_always_a_valid_shard(self):
        topology = Topology(shards=7)
        owners = {topology.owner_shard(key) for key in KEYS}
        assert owners <= set(range(7))

    def test_single_shard_owns_everything(self):
        topology = Topology(shards=1)
        assert all(topology.owner_shard(key) == 0 for key in KEYS)

    def test_assignments_matches_owner_shard(self):
        topology = Topology(shards=3)
        assigned = topology.assignments(KEYS[:100])
        assert assigned == {key: topology.owner_shard(key)
                            for key in KEYS[:100]}

    def test_balance_within_vnode_tolerance(self):
        """With 64 vnodes/shard the max/min shard load stays within a
        small factor of even — the property that makes the ring usable
        without a lookup table."""
        topology = Topology(shards=4)
        counts = [0] * 4
        for key in KEYS:
            counts[topology.owner_shard(key)] += 1
        assert min(counts) > 0
        assert max(counts) / min(counts) < 3.0
        # And no shard is a hot spot holding most of the keyspace.
        assert max(counts) < 0.5 * len(KEYS)


class TestEvolution:
    def test_with_shards_bumps_version(self):
        topology = Topology(shards=2)
        grown = topology.with_shards(3)
        assert grown.shards == 3
        assert grown.version == topology.version + 1
        assert grown.vnodes == topology.vnodes

    def test_with_replicas_bumps_version(self):
        topology = Topology(shards=2, replicas=0)
        replicated = topology.with_replicas(2)
        assert replicated.replicas == 2
        assert replicated.version == topology.version + 1

    def test_minimal_movement_on_growth(self):
        """Growing N -> N+1 shards must move about 1/(N+1) of the keys
        and nothing else — the consistent-hashing contract; hash(key)%N
        would move nearly all of them."""
        old = Topology(shards=4)
        plan = rebalance_plan(old, old.with_shards(5), KEYS)
        expected = 1 / 5
        assert 0 < plan.moved_fraction < 2.5 * expected
        # Every move lands on the new shard — existing shards do not
        # trade keys among themselves.
        assert all(dst == 4 for _, dst in plan.moves.values())

    def test_rebalance_plan_is_exact_and_reproducible(self):
        old = Topology(shards=2)
        new = old.with_shards(3)
        plan_a = rebalance_plan(old, new, KEYS)
        plan_b = rebalance_plan(old, new, KEYS)
        assert plan_a.moves == plan_b.moves
        assert plan_a.total_keys == len(KEYS)
        into = plan_a.keys_into(2)
        assert into == sorted(into)
        assert set(into) == {key for key, (_, dst) in plan_a.moves.items()
                             if dst == 2}
        for key in plan_a.keys_out_of(0):
            assert plan_a.moves[key][0] == 0

    def test_identical_topologies_move_nothing(self):
        topology = Topology(shards=3)
        plan = rebalance_plan(topology, Topology(shards=3), KEYS)
        assert plan.moves == {}
        assert plan.moved_fraction == 0.0


class TestWireForm:
    def test_roundtrip(self):
        topology = Topology(shards=3, replicas=2, version=7, vnodes=32)
        assert Topology.from_wire(topology.to_wire()) == topology

    def test_from_wire_rejects_non_ints(self):
        wire = Topology(shards=2).to_wire()
        wire["shards"] = "2"
        with pytest.raises(ValueError):
            Topology.from_wire(wire)

    def test_from_wire_rejects_bools(self):
        wire = Topology(shards=2).to_wire()
        wire["replicas"] = True
        with pytest.raises(ValueError):
            Topology.from_wire(wire)

    def test_default_vnodes(self):
        assert Topology(shards=1).vnodes == DEFAULT_VNODES
