"""MatchEngine layer: uniform behavior across the five implementations."""

import pytest

from repro.appel.model import expression, rule, ruleset
from repro.engines import (
    GenericSqlMatchEngine,
    NativeAppelMatchEngine,
    SqlMatchEngine,
    XQueryNativeMatchEngine,
    XTableMatchEngine,
    all_engines,
    standard_engines,
)
from repro.errors import UnknownPolicyError

ENGINE_FACTORIES = [NativeAppelMatchEngine, SqlMatchEngine,
                    GenericSqlMatchEngine, XQueryNativeMatchEngine,
                    XTableMatchEngine]


@pytest.mark.parametrize("factory", ENGINE_FACTORIES)
class TestUniformInterface:
    def test_install_and_match(self, factory, volga, jane):
        engine = factory()
        handle = engine.install(volga)
        outcome = engine.match(handle, jane)
        assert outcome.behavior == "request"
        assert outcome.rule_index == 2
        assert outcome.total_seconds >= 0
        assert not outcome.failed

    def test_unknown_handle_raises(self, factory, jane):
        engine = factory()
        with pytest.raises(UnknownPolicyError):
            engine.match(999, jane)

    def test_multiple_policies_independent(self, factory, volga, jane):
        from repro.corpus.volga import VOLGA_POLICY_NO_OPTIN_XML
        from repro.p3p.parser import parse_policy

        engine = factory()
        good = engine.install(volga)
        bad = engine.install(parse_policy(VOLGA_POLICY_NO_OPTIN_XML))
        assert engine.match(good, jane).behavior == "request"
        assert engine.match(bad, jane).behavior == "block"

    def test_warm_up_does_not_change_result(self, factory, volga, jane):
        engine = factory()
        handle = engine.install(volga)
        engine.warm_up(handle, jane)
        assert engine.match(handle, jane).behavior == "request"


class TestTimingSplit:
    def test_sql_reports_convert_and_query(self, volga, jane):
        engine = SqlMatchEngine()
        handle = engine.install(volga)
        outcome = engine.match(handle, jane)
        assert outcome.convert_seconds > 0
        assert outcome.query_seconds > 0

    def test_native_reports_all_time_as_query(self, volga, jane):
        engine = NativeAppelMatchEngine()
        handle = engine.install(volga)
        outcome = engine.match(handle, jane)
        assert outcome.convert_seconds == 0.0
        assert outcome.query_seconds > 0

    def test_sql_translation_cache(self, volga, jane):
        engine = SqlMatchEngine(cache_translations=True)
        handle = engine.install(volga)
        engine.match(handle, jane)
        cold_cache = len(engine._cache)
        engine.match(handle, jane)
        assert len(engine._cache) == cold_cache == 1


class TestXTableFailures:
    def test_medium_preference_fails_gracefully(self, volga):
        from repro.corpus.preferences import medium_preference

        engine = XTableMatchEngine()
        handle = engine.install(volga)
        outcome = engine.match(handle, medium_preference())
        assert outcome.failed
        assert outcome.behavior is None
        assert "subqueries" in outcome.error

    def test_raising_the_limit_fixes_it(self, volga):
        from repro.corpus.preferences import medium_preference

        engine = XTableMatchEngine(complexity_limit=100_000)
        handle = engine.install(volga)
        outcome = engine.match(handle, medium_preference())
        assert not outcome.failed
        assert outcome.behavior is not None


class TestFactories:
    def test_standard_engines_match_figure20(self):
        names = [engine.name for engine in standard_engines()]
        assert names == ["appel", "sql", "xquery"]

    def test_all_engines(self):
        names = [engine.name for engine in all_engines()]
        assert names == ["appel", "sql", "sql-generic", "xquery-native",
                         "xquery", "xquery-structural"]


class TestNativeXmlStore:
    def test_store_and_fetch(self, volga):
        from repro.engines.xquery_native import NativeXmlStore

        store = NativeXmlStore()
        pid = store.store(volga)
        document = store.fetch(pid)
        assert "<POLICY" in document
        # The stored view is augmented (categories expanded).
        assert "physical" in document

    def test_fetch_unknown_raises(self):
        from repro.engines.xquery_native import NativeXmlStore

        store = NativeXmlStore()
        with pytest.raises(UnknownPolicyError):
            store.fetch(5)


class TestAgreementOnSuite:
    def test_all_engines_agree_on_volga_for_every_level(self, volga, suite):
        for level, preference in suite.items():
            outcomes = set()
            for engine in all_engines():
                handle = engine.install(volga)
                outcome = engine.match(handle, preference)
                if outcome.failed:
                    continue  # XTABLE Medium — excluded as in the paper
                outcomes.add((outcome.behavior, outcome.rule_index))
            assert len(outcomes) == 1, (level, outcomes)
