"""Property-based tests (hypothesis): the invariants of DESIGN.md §5.

The centerpiece is *engine agreement*: for any generated policy and
preference, the native APPEL engine, both SQL pipelines, the XQuery
evaluator, and the XTABLE compiler must return the same fired rule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.appel.engine import AppelEngine
from repro.appel.model import Expression, Rule, Ruleset
from repro.appel.parser import parse_ruleset
from repro.appel.serializer import serialize_ruleset
from repro.engines import (
    GenericSqlMatchEngine,
    NativeAppelMatchEngine,
    SqlMatchEngine,
    XQueryNativeMatchEngine,
    XQueryStructuralMatchEngine,
    XTableMatchEngine,
)
from repro.p3p.compact import decode_compact, encode_compact
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.parser import parse_policy
from repro.p3p.serializer import serialize_policy
from repro.storage.reconstruct import reconstruct_policy
from repro.storage.shredder import PolicyStore
from repro.vocab import terms

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_REQUIRED = st.sampled_from(terms.REQUIRED_VALUES)
_PURPOSE_NAMES = st.sampled_from(terms.PURPOSES)
_RECIPIENT_NAMES = st.sampled_from(terms.RECIPIENTS)
_CATEGORY_NAMES = st.sampled_from(terms.CATEGORIES)

_FIXED_REFS = (
    "#user.name", "#user.bdate", "#user.gender", "#user.login",
    "#user.home-info.postal", "#user.home-info.online.email",
    "#dynamic.clickstream", "#dynamic.searchtext",
)
_VARIABLE_REFS = ("#dynamic.miscdata", "#dynamic.cookies")


def purpose_values() -> st.SearchStrategy[tuple[PurposeValue, ...]]:
    return st.lists(
        st.builds(PurposeValue, _PURPOSE_NAMES, _REQUIRED),
        max_size=4, unique_by=lambda v: v.name,
    ).map(tuple)


def recipient_values() -> st.SearchStrategy[tuple[RecipientValue, ...]]:
    return st.lists(
        st.builds(RecipientValue, _RECIPIENT_NAMES, _REQUIRED),
        max_size=3, unique_by=lambda v: v.name,
    ).map(tuple)


def data_items() -> st.SearchStrategy[tuple[DataItem, ...]]:
    fixed = st.builds(DataItem, st.sampled_from(_FIXED_REFS))
    variable = st.builds(
        DataItem,
        st.sampled_from(_VARIABLE_REFS),
        st.just("no"),
        st.lists(_CATEGORY_NAMES, min_size=1, max_size=3,
                 unique=True).map(tuple),
    )
    return st.lists(st.one_of(fixed, variable), max_size=3,
                    unique_by=lambda item: item.ref).map(tuple)


def statements() -> st.SearchStrategy[Statement]:
    return st.builds(
        Statement,
        purposes=purpose_values(),
        recipients=recipient_values(),
        retention=st.one_of(st.none(),
                            st.sampled_from(terms.RETENTIONS)),
        data=data_items(),
        consequence=st.one_of(st.none(), st.just("Some explanation.")),
        non_identifiable=st.booleans(),
    )


def policies() -> st.SearchStrategy[Policy]:
    return st.builds(
        Policy,
        name=st.just("generated"),
        discuri=st.one_of(st.none(), st.just("http://x.example.com/p")),
        access=st.one_of(st.none(), st.sampled_from(terms.ACCESS_VALUES)),
        test=st.booleans(),
        statements=st.lists(statements(), min_size=1, max_size=3).map(tuple),
    )


_CONNECTIVES = st.sampled_from(terms.CONNECTIVES)


def _value_expr(names: st.SearchStrategy[str],
                with_required: bool) -> st.SearchStrategy[Expression]:
    if not with_required:
        return st.builds(lambda n: Expression(name=n), names)
    return st.builds(
        lambda n, r: Expression(
            name=n,
            attributes=(("required", r),) if r is not None else (),
        ),
        names,
        st.one_of(st.none(), _REQUIRED),
    )


def _container_expr(name: str, values: st.SearchStrategy[Expression],
                    max_values: int) -> st.SearchStrategy[Expression]:
    return st.builds(
        lambda subs, conn: Expression(
            name=name, connective=conn, subexpressions=tuple(subs),
        ),
        st.lists(values, min_size=1, max_size=max_values,
                 unique_by=lambda e: e.name),
        _CONNECTIVES,
    )


def statement_patterns() -> st.SearchStrategy[Expression]:
    purpose = _container_expr("PURPOSE",
                              _value_expr(_PURPOSE_NAMES, True), 3)
    recipient = _container_expr("RECIPIENT",
                                _value_expr(_RECIPIENT_NAMES, True), 3)
    retention = _container_expr(
        "RETENTION", _value_expr(st.sampled_from(terms.RETENTIONS), False),
        2)
    categories = _container_expr("CATEGORIES",
                                 _value_expr(_CATEGORY_NAMES, False), 3)
    data = st.builds(
        lambda cats, ref: Expression(
            name="DATA",
            attributes=(("ref", ref),) if ref is not None else (),
            subexpressions=(cats,) if cats is not None else (),
        ),
        st.one_of(st.none(), categories),
        st.one_of(st.none(),
                  st.sampled_from(_FIXED_REFS + _VARIABLE_REFS)),
    )
    data_group = st.builds(
        lambda d: Expression(name="DATA-GROUP", subexpressions=(d,)),
        data,
    )
    consequence = st.just(Expression(name="CONSEQUENCE"))
    non_identifiable = st.just(Expression(name="NON-IDENTIFIABLE"))

    children = st.lists(
        st.one_of(purpose, recipient, retention, data_group, consequence,
                  non_identifiable),
        min_size=1, max_size=3, unique_by=lambda e: e.name,
    )
    return st.builds(
        lambda subs, conn: Expression(
            name="STATEMENT", connective=conn, subexpressions=tuple(subs),
        ),
        children, _CONNECTIVES,
    )


def policy_patterns() -> st.SearchStrategy[Expression]:
    access = _container_expr(
        "ACCESS", _value_expr(st.sampled_from(terms.ACCESS_VALUES), False),
        2)
    children = st.lists(
        st.one_of(statement_patterns(), access,
                  st.just(Expression(name="TEST")),
                  st.just(Expression(name="ENTITY"))),
        min_size=1, max_size=2, unique_by=lambda e: e.name,
    )
    return st.builds(
        lambda subs, conn: Expression(
            name="POLICY", connective=conn, subexpressions=tuple(subs),
        ),
        children, _CONNECTIVES,
    )


def rulesets() -> st.SearchStrategy[Ruleset]:
    # Mostly single-POLICY bodies (the common case), but also rules with
    # two top-level expressions and non-default rule connectives, which
    # exercise the root-level combination and exactness paths.
    block_rule = st.builds(
        lambda exprs, conn: Rule(behavior="block",
                                 expressions=tuple(exprs),
                                 connective=conn),
        st.lists(policy_patterns(), min_size=1, max_size=2),
        _CONNECTIVES,
    )
    return st.builds(
        lambda blocks: Ruleset(
            rules=tuple(blocks) + (Rule(behavior="request"),),
        ),
        st.lists(block_rule, min_size=1, max_size=2),
    )


# --------------------------------------------------------------------------
# Properties
# --------------------------------------------------------------------------

_SETTINGS = settings(max_examples=40, deadline=None)


class TestEngineAgreement:
    """DESIGN.md invariant 1: all engines return the same fired rule."""

    @_SETTINGS
    @given(policy=policies(), preference=rulesets())
    def test_six_way_agreement(self, policy, preference):
        engines = [
            NativeAppelMatchEngine(),
            SqlMatchEngine(),
            GenericSqlMatchEngine(),
            XQueryNativeMatchEngine(),
            XTableMatchEngine(complexity_limit=1_000_000),
            XQueryStructuralMatchEngine(),
        ]
        outcomes = {}
        for engine in engines:
            handle = engine.install(policy)
            outcome = engine.match(handle, preference)
            assert not outcome.failed, (engine.name, outcome.error)
            outcomes[engine.name] = (outcome.behavior, outcome.rule_index)
        assert len(set(outcomes.values())) == 1, outcomes


class TestRoundTrips:
    """DESIGN.md invariant 2: XML round-trips are the identity."""

    @_SETTINGS
    @given(policy=policies())
    def test_policy_xml_roundtrip(self, policy):
        assert parse_policy(serialize_policy(policy)) == policy

    @_SETTINGS
    @given(preference=rulesets())
    def test_ruleset_xml_roundtrip(self, preference):
        assert parse_ruleset(serialize_ruleset(preference)) == preference

    @_SETTINGS
    @given(policy=policies())
    def test_shred_reconstruct_is_augmentation(self, policy):
        store = PolicyStore()
        pid = store.install_policy(policy).policy_id
        assert reconstruct_policy(store.db, pid) == policy.augmented()
        store.db.close()

    @_SETTINGS
    @given(policy=policies())
    def test_augmentation_idempotent(self, policy):
        augmented = policy.augmented()
        assert augmented.augmented() == augmented


class TestCompactPolicies:
    @_SETTINGS
    @given(policy=policies())
    def test_compact_roundtrip_preserves_token_level_facts(self, policy):
        compact = decode_compact(encode_compact(policy))
        stated_purposes = {
            (value.name, value.effective_required)
            for statement in policy.statements
            for value in statement.purposes
        }
        assert set(compact.purposes) == stated_purposes
        stated_retentions = {
            statement.retention for statement in policy.statements
            if statement.retention is not None
        }
        assert set(compact.retentions) == stated_retentions
        assert compact.access == policy.access

    @_SETTINGS
    @given(policy=policies())
    def test_compact_categories_are_expanded_union(self, policy):
        compact = decode_compact(encode_compact(policy))
        expected = set()
        for statement in policy.statements:
            for item in statement.data:
                expected |= item.expanded_categories()
        assert set(compact.categories) == expected


class TestAugmentationEquivalence:
    """Model-level expansion == document-level augmentation (the two ways
    categories are computed: shred-time vs per-match)."""

    @_SETTINGS
    @given(policy=policies())
    def test_dom_augmentation_matches_model(self, policy):
        from repro import xmlutil

        engine = AppelEngine()
        prepared = engine.prepare(policy)
        augmented = policy.augmented()
        dom_items = [
            (
                xmlutil.local_attrib(data_el).get("ref"),
                frozenset(
                    xmlutil.local_name(c.tag)
                    for c in (xmlutil.find_child(data_el, "CATEGORIES")
                              or ())
                ),
            )
            for data_el in _iter_data(prepared.root)
        ]
        model_items = [
            (item.ref, frozenset(item.categories))
            for statement in augmented.statements
            for item in statement.data
        ]
        assert dom_items == model_items


def _iter_data(root):
    from repro import xmlutil

    found = []

    def visit(element):
        if xmlutil.local_name(element.tag) == "DATA":
            found.append(element)
        for child in element:
            visit(child)

    # Skip ENTITY data (entity refs aren't statement data).
    for child in root:
        if xmlutil.local_name(child.tag) == "STATEMENT":
            visit(child)
    return found
