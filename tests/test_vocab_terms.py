"""Vocabulary terms: value sets and checkers (paper Section 2.1)."""

import pytest

from repro.errors import VocabularyError
from repro.vocab import terms


class TestValueCounts:
    """Section 2.1: 'P3P has predefined values for PURPOSE (12 choices),
    RECIPIENT (6), and RETENTION (5).'"""

    def test_twelve_purposes(self):
        assert len(terms.PURPOSES) == 12

    def test_six_recipients(self):
        assert len(terms.RECIPIENTS) == 6

    def test_five_retentions(self):
        assert len(terms.RETENTIONS) == 5

    def test_seventeen_categories(self):
        assert len(terms.CATEGORIES) == 17

    def test_no_duplicates_within_sets(self):
        for values in (terms.PURPOSES, terms.RECIPIENTS, terms.RETENTIONS,
                       terms.CATEGORIES, terms.ACCESS_VALUES,
                       terms.REMEDIES):
            assert len(values) == len(set(values))

    def test_value_names_are_disjoint_across_sets(self):
        # Element names double as table names, so no two vocabulary sets
        # may share a member.
        sets = [set(terms.PURPOSES), set(terms.RECIPIENTS),
                set(terms.RETENTIONS), set(terms.CATEGORIES),
                set(terms.ACCESS_VALUES), set(terms.REMEDIES)]
        for i, left in enumerate(sets):
            for right in sets[i + 1:]:
                assert not left & right


class TestPaperExamples:
    """The example values Section 2.1 quotes must be present."""

    @pytest.mark.parametrize("purpose", [
        "current", "individual-decision", "contact",
    ])
    def test_example_purposes(self, purpose):
        assert purpose in terms.PURPOSE_SET

    @pytest.mark.parametrize("recipient", ["ours", "same", "unrelated"])
    def test_example_recipients(self, recipient):
        assert recipient in terms.RECIPIENT_SET

    @pytest.mark.parametrize("retention", [
        "stated-purpose", "business-practices", "indefinitely",
    ])
    def test_example_retentions(self, retention):
        assert retention in terms.RETENTION_SET


class TestCheckers:
    def test_check_purpose_accepts(self):
        assert terms.check_purpose("admin") == "admin"

    def test_check_purpose_rejects(self):
        with pytest.raises(VocabularyError):
            terms.check_purpose("surveillance")

    def test_check_recipient_rejects(self):
        with pytest.raises(VocabularyError):
            terms.check_recipient("everyone")

    def test_check_retention_rejects(self):
        with pytest.raises(VocabularyError):
            terms.check_retention("forever")

    def test_check_category_rejects(self):
        with pytest.raises(VocabularyError):
            terms.check_category("secrets")

    def test_check_required_accepts_all_three(self):
        for value in ("always", "opt-in", "opt-out"):
            assert terms.check_required(value) == value

    def test_check_required_rejects(self):
        with pytest.raises(VocabularyError):
            terms.check_required("sometimes")

    def test_check_connective_accepts_all_six(self):
        for value in terms.CONNECTIVES:
            assert terms.check_connective(value) == value
        assert len(terms.CONNECTIVES) == 6

    def test_check_connective_rejects(self):
        with pytest.raises(VocabularyError):
            terms.check_connective("xor")


class TestDefaults:
    def test_required_default_is_always(self):
        """Section 2.1: 'By default, the value of the required attribute
        is set to always.'"""
        assert terms.REQUIRED_DEFAULT == "always"

    def test_default_connective_is_and(self):
        """Section 2.2: 'the default connective being and'."""
        assert terms.CONNECTIVE_DEFAULT == "and"

    def test_current_never_carries_required(self):
        assert "current" in terms.PURPOSES_WITHOUT_REQUIRED

    def test_ours_never_carries_required(self):
        assert "ours" in terms.RECIPIENTS_WITHOUT_REQUIRED
