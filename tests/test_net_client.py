"""HttpClientAgent unit behavior: bounded caches, deadline discipline.

The serving-path invariants the client must hold without a server in
the loop: its reference cache cannot grow without bound (it lives in
long-running user agents), and ``wait_until_healthy`` must come back
by its deadline instead of sleeping one interval past it.
"""

from __future__ import annotations

import socket
import time

from repro.corpus.volga import VOLGA_REFERENCE_XML, VOLGA_POLICY_XML
from repro.corpus.volga import jane_preference
from repro.net.aio import serve_async
from repro.net.client import HttpClientAgent


def _dead_port() -> int:
    """A port nothing listens on (bound then released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestReferenceCacheBound:
    def test_cache_is_bounded_lru(self, tmp_path):
        """Fetching more sites than the cache holds evicts the oldest
        instead of growing: the first site's entry is gone, the most
        recent ones are revalidated with If-None-Match."""
        server = serve_async(str(tmp_path / "refs.db"))
        thread = server.run_in_thread()
        try:
            sites = [f"site-{i}.example.com" for i in range(6)]
            with HttpClientAgent(server.base_url) as admin:
                for site in sites:
                    admin.install_policy(
                        VOLGA_POLICY_XML, site=site,
                        reference_file=VOLGA_REFERENCE_XML)
            agent = HttpClientAgent(server.base_url,
                                    reference_cache_size=4)
            try:
                for site in sites:
                    agent.fetch_reference_file(site)
                assert len(agent._reference_cache) == 4
                # Oldest two evicted, newest four retained.
                assert agent._reference_cache.get(sites[0]) is None
                assert agent._reference_cache.get(sites[1]) is None
                assert agent._reference_cache.get(sites[-1]) is not None

                # A retained entry revalidates (304 path) rather than
                # refetching; an evicted one refetches without ETag.
                before = agent.revalidations
                agent.fetch_reference_file(sites[-1])
                assert agent.revalidations == before + 1
            finally:
                agent.close()
        finally:
            server.close()
            thread.join(timeout=5)

    def test_cache_size_is_configurable(self):
        agent = HttpClientAgent("127.0.0.1:1", reference_cache_size=2)
        assert agent._reference_cache.maxsize == 2


class TestWaitUntilHealthyDeadline:
    def test_returns_false_within_timeout(self):
        agent = HttpClientAgent(f"127.0.0.1:{_dead_port()}",
                                jane_preference(), timeout=0.2)
        try:
            start = time.monotonic()
            assert agent.wait_until_healthy(timeout=0.5,
                                            interval=0.4) is False
            elapsed = time.monotonic() - start
            # The final sleep is clamped to the deadline: even with an
            # interval of 0.4s the call cannot overshoot 0.5s by more
            # than scheduling noise (pre-fix it slept a full extra
            # interval past the deadline).
            assert elapsed < 0.5 + 0.25
        finally:
            agent.close()

    def test_zero_timeout_returns_immediately(self):
        agent = HttpClientAgent(f"127.0.0.1:{_dead_port()}",
                                timeout=0.1)
        try:
            start = time.monotonic()
            assert agent.wait_until_healthy(timeout=0.0) is False
            assert time.monotonic() - start < 0.5
        finally:
            agent.close()
