"""End-to-end integration: the paper's narrative on the full stack.

These tests walk the complete server-centric pipeline (Figure 5 install,
Figure 6 check) and cross-check every architectural variation against the
Section 2.2 ground truth.
"""

import pytest

from repro.corpus.volga import (
    VOLGA_POLICY_NO_OPTIN_XML,
    VOLGA_POLICY_UNRELATED_XML,
    VOLGA_REFERENCE_XML,
)
from repro.engines import all_engines
from repro.p3p.parser import parse_policy
from repro.p3p.reference import parse_reference_file
from repro.server import ClientAgent, HybridAgent, PolicyServer, Site


class TestFullServerPipeline:
    """Install policies + reference file, then check with Jane."""

    def test_three_site_deployment(self, volga, jane):
        server = PolicyServer()
        scenarios = {
            "good.example.com": volga,
            "no-optin.example.com": parse_policy(VOLGA_POLICY_NO_OPTIN_XML),
            "oversharing.example.com":
                parse_policy(VOLGA_POLICY_UNRELATED_XML),
        }
        for host, policy in scenarios.items():
            server.install_policy(policy, site=host)
            server.install_reference_file(
                VOLGA_REFERENCE_XML.replace("volga.example.com", host),
                host,
            )
        assert server.check("good.example.com", "/cart", jane).allowed
        assert not server.check("no-optin.example.com", "/cart",
                                jane).allowed
        assert not server.check("oversharing.example.com", "/cart",
                                jane).allowed

    def test_reference_scoping_respected(self, volga, jane):
        server = PolicyServer()
        server.install_policy(volga, site="volga.example.com")
        server.install_reference_file(VOLGA_REFERENCE_XML,
                                      "volga.example.com")
        covered = server.check("volga.example.com", "/shop", jane)
        uncovered = server.check("volga.example.com", "/legacy/page", jane)
        assert covered.covered and not uncovered.covered


class TestEngineUnanimity:
    """Every engine must replay Section 2.2 identically (the matrix the
    paper's correctness rests on)."""

    @pytest.mark.parametrize("policy_xml,expected_behavior,expected_rule", [
        (None, "request", 2),
        (VOLGA_POLICY_NO_OPTIN_XML, "block", 0),
        (VOLGA_POLICY_UNRELATED_XML, "block", 1),
    ])
    def test_scenarios(self, volga, jane, policy_xml, expected_behavior,
                       expected_rule):
        policy = volga if policy_xml is None else parse_policy(policy_xml)
        for engine in all_engines():
            handle = engine.install(policy)
            outcome = engine.match(handle, jane)
            assert outcome.behavior == expected_behavior, engine.name
            assert outcome.rule_index == expected_rule, engine.name


class TestCorpusWideAgreement:
    """All engines agree on every (corpus policy, suite level) pair —
    the integration-scale version of the property tests."""

    def test_grid(self, small_corpus, suite):
        engines = all_engines()
        handles = {engine.name: [engine.install(p) for p in small_corpus]
                   for engine in engines}
        for level, preference in suite.items():
            for index in range(len(small_corpus)):
                outcomes = set()
                for engine in engines:
                    outcome = engine.match(handles[engine.name][index],
                                           preference)
                    if outcome.failed:
                        assert engine.name == "xquery"
                        assert level == "Medium"
                        continue
                    outcomes.add((outcome.behavior, outcome.rule_index))
                assert len(outcomes) == 1, (level, index, outcomes)


class TestArchitectureEquivalence:
    """Client-centric, server-centric and hybrid agree on decisions; they
    differ only in where the work happens."""

    def test_decisions_identical_network_profile_differs(self, volga,
                                                         suite):
        host = "volga.example.com"
        server = PolicyServer()
        server.install_policy(volga, site=host)
        server.install_reference_file(VOLGA_REFERENCE_XML, host)
        site = Site(host=host,
                    reference_file=parse_reference_file(VOLGA_REFERENCE_XML),
                    policies={"volga": volga})

        uris = [f"/page/{i}" for i in range(5)]
        for level, preference in suite.items():
            client = ClientAgent(preference)
            hybrid = HybridAgent(preference, server)
            for uri in uris:
                a = server.check(host, uri, preference).behavior
                b = client.check(site, uri).behavior
                c = hybrid.check(site, uri).behavior
                assert a == b == c, (level, uri)

        # The client downloaded the policy once per check; the hybrid and
        # server fetched it zero times (it lives in the database).
        policy_fetches = site.fetch_counts.get("policy:volga", 0)
        assert policy_fetches == len(uris) * len(suite)


class TestCookiePipeline:
    """Compact-policy cookie gate consistent with the full-policy check."""

    def test_compact_roundtrip_consistency(self, volga):
        from repro.p3p.compact import (
            CookiePreference,
            decode_compact,
            encode_compact,
        )

        compact = decode_compact(encode_compact(volga))
        lenient = CookiePreference()
        assert lenient.accepts(compact)

        grabby = parse_policy(VOLGA_POLICY_UNRELATED_XML)
        assert not lenient.accepts(decode_compact(encode_compact(grabby)))
