"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import pytest

from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import (
    jane_preference,
    jane_simplified_rule,
    volga_policy,
)


@pytest.fixture()
def volga():
    """Volga's policy (paper Figure 1)."""
    return volga_policy()


@pytest.fixture()
def jane():
    """Jane's preference (paper Figure 2)."""
    return jane_preference()


@pytest.fixture()
def jane_simplified():
    """The simplified first rule (paper Figure 12)."""
    return jane_simplified_rule()


@pytest.fixture(scope="session")
def suite():
    """The five-level preference suite (paper Figure 19 workload)."""
    return jrc_suite()


@pytest.fixture(scope="session")
def corpus():
    """The full 29-policy synthetic corpus."""
    return fortune_corpus()


@pytest.fixture(scope="session")
def small_corpus(corpus):
    """First five corpus policies — enough for integration tests."""
    return corpus[:5]
