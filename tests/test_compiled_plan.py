"""CompiledPlan: parameterized single-query plans against the references.

Three independent evaluation pipelines must agree on every (policy,
preference) decision:

* the native APPEL engine (the paper's client-side reference),
* the literal SQL pipeline (policy id spliced in, one round-trip per
  rule — :func:`evaluate_ruleset`),
* the compiled plan (policy id bound as ``?``, one round-trip per check
  — :meth:`CompiledPlan.execute`), plus its rule-at-a-time
  ``execute_serial`` differential twin.
"""

from __future__ import annotations

import pytest

from repro.appel.engine import AppelEngine
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    applicable_policy_literal,
    evaluate_ruleset,
)
from repro.translate.plan import APPLICABLE_POLICY_PARAM


@pytest.fixture(scope="module")
def optimized_store(corpus):
    store = PolicyStore()
    handles = [store.install_policy(policy).policy_id
               for policy in corpus]
    yield store, handles
    store.db.close()


class TestPlanShape:
    def test_one_parameter_per_rule(self, suite):
        translator = OptimizedSqlTranslator()
        for preference in suite.values():
            plan = translator.compile_ruleset(preference)
            assert plan.parameter_count == len(preference.rules)
            assert plan.sql.count("?") == plan.parameter_count

    def test_rules_carry_their_index(self, suite):
        plan = OptimizedSqlTranslator().compile_ruleset(suite["High"])
        assert [rule.rule_index for rule in plan.rules] == \
            list(range(len(plan.rules)))

    def test_combined_statement_orders_and_limits(self, suite):
        plan = OptimizedSqlTranslator().compile_ruleset(suite["Low"])
        assert plan.sql.endswith("ORDER BY rule_index\nLIMIT 1")
        assert plan.sql.count("UNION ALL") == len(plan.rules) - 1

    def test_parameters_repeat_the_policy_id(self, suite):
        plan = OptimizedSqlTranslator().compile_ruleset(suite["Medium"])
        assert plan.parameters(7) == (7,) * len(plan.rules)

    def test_empty_plan_never_touches_the_database(self):
        from repro.translate.plan import CompiledPlan, combine_rules

        plan = CompiledPlan(rules=(), sql=combine_rules(()))
        assert plan.sql == ""
        # db=None proves no query is attempted.
        assert plan.execute(None, 1) == (None, None)

    def test_param_marker_is_the_applicable_policy_relation(self):
        assert APPLICABLE_POLICY_PARAM == "SELECT ? AS policy_id"


class TestDifferentialFullCorpus:
    """Every corpus policy x all five JRC preference levels."""

    def test_plan_matches_literal_and_native(self, optimized_store,
                                             corpus, suite):
        store, handles = optimized_store
        translator = OptimizedSqlTranslator()
        native = AppelEngine()
        checked = 0
        for level, preference in suite.items():
            plan = translator.compile_ruleset(preference)
            for policy, handle in zip(corpus, handles):
                literal = translator.translate_ruleset(
                    preference, applicable_policy_literal(handle))
                expect = evaluate_ruleset(store.db, literal)
                got = plan.execute(store.db, handle)
                assert got == expect, (level, handle)
                verdict = native.evaluate(policy, preference)
                assert got == (verdict.behavior, verdict.rule_index), \
                    (level, handle)
                checked += 1
        assert checked == len(corpus) * len(suite)

    def test_single_query_agrees_with_serial_execution(self,
                                                       optimized_store,
                                                       suite):
        store, handles = optimized_store
        translator = OptimizedSqlTranslator()
        for preference in suite.values():
            plan = translator.compile_ruleset(preference)
            for handle in handles:
                assert plan.execute(store.db, handle) == \
                    plan.execute_serial(store.db, handle)

    def test_generic_schema_plans_agree_too(self, small_corpus, suite):
        store = GenericPolicyStore()
        handles = [store.install_policy(policy)
                   for policy in small_corpus]
        translator = GenericSqlTranslator()
        try:
            for preference in suite.values():
                plan = translator.compile_ruleset(preference)
                for handle in handles:
                    literal = translator.translate_ruleset(
                        preference, applicable_policy_literal(handle))
                    assert plan.execute(store.db, handle) == \
                        evaluate_ruleset(store.db, literal)
        finally:
            store.db.close()


class TestSingleRoundTrip:
    def test_warm_check_is_exactly_one_statement(self, optimized_store,
                                                 suite):
        store, handles = optimized_store
        plan = OptimizedSqlTranslator().compile_ruleset(suite["High"])
        plan.execute(store.db, handles[0])       # warm
        before = store.db.stats.statements
        plan.execute(store.db, handles[0])
        assert store.db.stats.statements == before + 1

    def test_literal_pipeline_pays_one_trip_per_rule_probed(
            self, optimized_store, suite):
        store, handles = optimized_store
        translator = OptimizedSqlTranslator()
        preference = suite["High"]
        literal = translator.translate_ruleset(
            preference, applicable_policy_literal(handles[0]))
        before = store.db.stats.statements
        behavior, rule_index = evaluate_ruleset(store.db, literal)
        trips = store.db.stats.statements - before
        assert trips == (rule_index + 1 if rule_index is not None
                         else len(literal.rules))
