"""Corpus analytics: vocabulary census, consent profile, acceptance matrix."""

from repro.corpus.analysis import (
    acceptance_matrix,
    consent_profile,
    format_census,
    vocabulary_census,
)
from repro.vocab import terms


class TestVocabularyCensus:
    def test_counts_are_plausible(self, corpus):
        census = vocabulary_census(corpus)
        purposes = dict(census.purposes)
        # Every generated archetype states at least one of these.
        assert purposes.get("current", 0) > 0
        assert purposes.get("admin", 0) > 0
        recipients = dict(census.recipients)
        assert recipients.get("ours", 0) >= len(corpus) // 2

    def test_all_values_legal(self, corpus):
        census = vocabulary_census(corpus)
        assert all(name in terms.PURPOSE_SET
                   for name, _ in census.purposes)
        assert all(name in terms.RECIPIENT_SET
                   for name, _ in census.recipients)
        assert all(name in terms.RETENTION_SET
                   for name, _ in census.retentions)
        assert all(name in terms.CATEGORY_SET
                   for name, _ in census.categories)

    def test_expanded_categories_counted(self, volga):
        census = vocabulary_census([volga])
        categories = dict(census.categories)
        # physical comes only from base-schema expansion of user.name etc.
        assert categories.get("physical", 0) >= 1
        assert categories.get("purchase", 0) >= 1

    def test_required_census(self, volga):
        census = vocabulary_census([volga])
        required = dict(census.required_census)
        assert required.get("opt-in", 0) == 2  # the two Volga opt-ins
        assert required.get("always", 0) >= 3

    def test_top_purposes(self, corpus):
        census = vocabulary_census(corpus)
        top = census.top_purposes(3)
        assert len(top) == 3

    def test_format_census(self, corpus):
        text = format_census(vocabulary_census(corpus))
        assert "purposes" in text
        assert "categories (expanded)" in text


class TestConsentProfile:
    def test_volga_offers_opt_in(self, volga):
        profile = consent_profile([volga])
        assert profile.policies_with_opt_in == 1
        assert profile.policies_all_mandatory == 0
        assert profile.opt_in_share == 1.0

    def test_corpus_profile_sums(self, corpus):
        profile = consent_profile(corpus)
        assert profile.total == 29
        assert 0 < profile.policies_with_opt_in < 29

    def test_empty_corpus(self):
        profile = consent_profile([])
        assert profile.opt_in_share == 0.0


class TestAcceptanceMatrix:
    def test_monotone_in_strictness(self, corpus, suite):
        blocked = acceptance_matrix(corpus, suite)
        assert blocked["Very High"] >= blocked["High"] >= blocked["Low"]
        assert blocked["Very Low"] == 0
        assert blocked["Very High"] > 0
