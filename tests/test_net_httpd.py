"""The HTTP tier end to end: ephemeral-port server, thin client, admission.

Servers bind port 0 and read the address back — no fixed ports, so the
suite parallelizes and never collides with the host.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import (
    VOLGA_POLICY_XML,
    VOLGA_REFERENCE_XML,
    jane_preference,
    volga_policy,
)
from repro.net import protocol
from repro.net.admission import AdmissionController
from repro.net.client import HttpClientAgent
from repro.net.httpd import P3PHttpServer, PreferenceRegistry, serve
from repro.server.client import ClientAgent
from repro.server.policy_server import PolicyServer
from repro.server.site import Site

SITE = "volga.example.com"


@pytest.fixture()
def httpd(tmp_path):
    """A disk-backed HTTP server on an ephemeral port, Volga installed."""
    server = serve(str(tmp_path / "httpd.db"))
    thread = server.run_in_thread()
    agent = HttpClientAgent(server.base_url)
    agent.install_policy(VOLGA_POLICY_XML, site=SITE,
                         reference_file=VOLGA_REFERENCE_XML)
    agent.close()
    yield server
    server.close()
    thread.join(timeout=5)


@pytest.fixture()
def agent(httpd):
    with HttpClientAgent(httpd.base_url, jane_preference()) as jane:
        yield jane


def raw_request(httpd, method, path, body=None, headers=None):
    """A request outside HttpClientAgent's conveniences (raw status)."""
    connection = http.client.HTTPConnection(httpd.host, httpd.port,
                                            timeout=10)
    try:
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json",
                                    **(headers or {})})
        response = connection.getresponse()
        return response.status, dict(
            (key.lower(), value) for key, value in response.getheaders()
        ), response.read()
    finally:
        connection.close()


class TestBasics:
    def test_healthz(self, agent):
        assert agent.health()["status"] == "ok"

    def test_ephemeral_port_bound(self, httpd):
        assert httpd.port != 0
        assert str(httpd.port) in httpd.base_url

    def test_check_decision_matches_in_process(self, httpd, agent,
                                               tmp_path):
        over_wire = agent.check(SITE, "/catalog/book-1")
        reference = PolicyServer(str(tmp_path / "ref.db"))
        try:
            reference.install_policy(volga_policy(), site=SITE)
            reference.install_reference_file(VOLGA_REFERENCE_XML, SITE)
            local = reference.check(SITE, "/catalog/book-1",
                                    jane_preference())
        finally:
            reference.close()
        assert over_wire.decision == (SITE, "/catalog/book-1",
                                      local.policy_id, local.behavior,
                                      local.rule_index)

    def test_uncovered_uri(self, agent):
        result = agent.check(SITE, "/legacy/old-page")
        assert not result.covered
        assert result.allowed

    def test_register_is_idempotent(self, httpd, agent):
        first = agent.register_preference()
        second = agent.register_preference()
        assert first == second
        assert len(httpd.preferences) == 1

    def test_metrics_counters(self, httpd, agent):
        agent.check(SITE, "/catalog/metrics-probe")
        metrics = agent.metrics()
        assert metrics["checks_served"] >= 1
        assert metrics["requests"]["total"] >= 2
        assert metrics["admission"]["limit"] == 64
        assert 0.0 <= metrics["translation_cache"]["hit_rate"] <= 1.0
        assert metrics["check_log"]["pending"] >= 0
        assert metrics["preferences"]["registered"] == 1


class TestErrors:
    def test_malformed_json_is_400_bad_json(self, httpd):
        status, _, body = raw_request(httpd, "POST", "/v1/check",
                                      body=b"{not json")
        assert status == 400
        assert json.loads(body)["error"]["code"] == protocol.ERR_BAD_JSON

    def test_unknown_version_is_400_bad_version(self, httpd):
        status, _, body = raw_request(
            httpd, "POST", "/v1/check",
            body=json.dumps({"v": 99, "site": SITE, "uri": "/x",
                             "preference_hash": "h"}).encode())
        assert status == 400
        assert json.loads(body)["error"]["code"] == \
            protocol.ERR_BAD_VERSION

    def test_missing_field_is_400_bad_request(self, httpd):
        status, _, body = raw_request(
            httpd, "POST", "/v1/check",
            body=json.dumps({"v": 1, "site": SITE}).encode())
        assert status == 400
        assert json.loads(body)["error"]["code"] == \
            protocol.ERR_BAD_REQUEST

    def test_unknown_endpoint_is_404(self, httpd):
        status, _, body = raw_request(httpd, "GET", "/v1/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == protocol.ERR_NOT_FOUND

    def test_wrong_method_is_405(self, httpd):
        status, _, body = raw_request(httpd, "GET", "/v1/check")
        assert status == 405
        assert json.loads(body)["error"]["code"] == \
            protocol.ERR_METHOD_NOT_ALLOWED

    def test_unparseable_appel_is_422(self, httpd):
        status, _, body = raw_request(
            httpd, "POST", "/v1/preferences",
            body=protocol.encode({"appel": "<not-appel/>"}))
        assert status == 422
        assert json.loads(body)["error"]["code"] == protocol.ERR_PARSE

    def test_unknown_preference_hash_is_404(self, httpd):
        status, _, body = raw_request(
            httpd, "POST", "/v1/check",
            body=protocol.encode({"site": SITE, "uri": "/x",
                                  "preference_hash": "f" * 64}))
        assert status == 404
        assert json.loads(body)["error"]["code"] == \
            protocol.ERR_UNKNOWN_PREFERENCE

    def test_oversized_body_is_413(self, tmp_path):
        server = serve(str(tmp_path / "small.db"), max_body_bytes=512)
        thread = server.run_in_thread()
        try:
            status, _, body = raw_request(
                server, "POST", "/v1/preferences",
                body=b"x" * 1024)
            assert status == 413
            assert json.loads(body)["error"]["code"] == \
                protocol.ERR_PAYLOAD_TOO_LARGE
        finally:
            server.close()
            thread.join(timeout=5)


class TestReferenceFileETag:
    def test_fetch_and_revalidate(self, httpd):
        status, headers, body = raw_request(
            httpd, "GET", f"/w3c/p3p.xml?site={SITE}")
        assert status == 200
        assert headers["content-type"].startswith("application/xml")
        etag = headers["etag"]
        assert etag.startswith('"') and etag.endswith('"')
        assert body.decode("utf-8") == VOLGA_REFERENCE_XML

        status, headers, body = raw_request(
            httpd, "GET", f"/w3c/p3p.xml?site={SITE}",
            headers={"If-None-Match": etag})
        assert status == 304
        assert body == b""
        assert headers["etag"] == etag

    def test_stale_etag_gets_full_body(self, httpd):
        status, _, body = raw_request(
            httpd, "GET", f"/w3c/p3p.xml?site={SITE}",
            headers={"If-None-Match": '"0000"'})
        assert status == 200
        assert body.decode("utf-8") == VOLGA_REFERENCE_XML

    def test_unknown_site_is_404(self, httpd):
        status, _, body = raw_request(
            httpd, "GET", "/w3c/p3p.xml?site=nowhere.example")
        assert status == 404
        assert json.loads(body)["error"]["code"] == protocol.ERR_NOT_FOUND

    def test_client_agent_caches_via_etag(self, httpd, agent):
        first = agent.fetch_reference_file(SITE)
        second = agent.fetch_reference_file(SITE)
        assert first == second == VOLGA_REFERENCE_XML
        assert agent.revalidations == 1
        assert agent.metrics()["reference_not_modified"] == 1

    def test_host_header_selects_site(self, httpd):
        status, _, body = raw_request(httpd, "GET", "/w3c/p3p.xml",
                                      headers={"Host": f"{SITE}:80"})
        assert status == 200
        assert body.decode("utf-8") == VOLGA_REFERENCE_XML


class TestAdmissionControl:
    def test_unit_gate_semantics(self):
        gate = AdmissionController(2, retry_after=3.0)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        snapshot = gate.snapshot()
        assert snapshot["in_flight"] == 2
        assert snapshot["rejected"] == 1
        gate.leave()
        assert gate.try_enter()
        assert gate.snapshot()["peak_in_flight"] == 2
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_unbalanced_leave_refused(self):
        gate = AdmissionController(1)
        with pytest.raises(RuntimeError):
            gate.leave()

    def test_admit_context_manager(self):
        gate = AdmissionController(1)
        with gate.admit() as ok:
            assert ok
            with gate.admit() as nested:
                assert not nested
        assert gate.snapshot()["in_flight"] == 0

    def test_check_sheds_load_with_503_and_retry_after(self, tmp_path):
        server = serve(str(tmp_path / "tiny.db"), max_inflight=1,
                       retry_after=2.0)
        thread = server.run_in_thread()
        try:
            # retry=None: this test asserts the raw shedding contract,
            # not the client-side healing built on top of it.
            agent = HttpClientAgent(server.base_url, jane_preference(),
                                    retry=None)
            agent.install_policy(VOLGA_POLICY_XML, site=SITE,
                                 reference_file=VOLGA_REFERENCE_XML)
            agent.check(SITE, "/catalog/warm")     # registers + warms

            assert server.admission.try_enter()    # occupy the only slot
            try:
                with pytest.raises(protocol.ProtocolError) as excinfo:
                    agent.check(SITE, "/catalog/overload")
                assert excinfo.value.code == protocol.ERR_OVERLOADED
                assert excinfo.value.http_status == 503
                assert excinfo.value.retry_after == 2.0

                status, headers, _ = raw_request(
                    server, "POST", "/v1/check",
                    body=protocol.encode(protocol.CheckRequest(
                        site=SITE, uri="/x",
                        preference_hash=agent.preference_hash,
                    ).to_wire()))
                assert status == 503
                assert headers["retry-after"] == "2"
            finally:
                server.admission.leave()

            # The slot is free again: the same request now succeeds.
            assert agent.check(SITE, "/catalog/after").covered
            assert server.admission.snapshot()["rejected"] == 2
            agent.close()
        finally:
            server.close()
            thread.join(timeout=5)

    def test_healthz_bypasses_admission(self, tmp_path):
        server = serve(str(tmp_path / "busy.db"), max_inflight=1)
        thread = server.run_in_thread()
        try:
            assert server.admission.try_enter()
            try:
                agent = HttpClientAgent(server.base_url)
                assert agent.health()["status"] == "ok"
                assert agent.metrics()["admission"]["in_flight"] == 1
                agent.close()
            finally:
                server.admission.leave()
        finally:
            server.close()
            thread.join(timeout=5)


class TestRegisterOnceSelfHealing:
    def test_client_reregisters_after_registry_loss(self, httpd, agent):
        agent.check(SITE, "/catalog/first")
        # Simulate a server restart: the registry forgets everything.
        httpd.preferences._entries.clear()
        result = agent.check(SITE, "/catalog/second")
        assert result.covered
        assert agent.reregistrations == 1

    def test_registry_eviction_is_bounded_and_survivable(self, httpd,
                                                         agent):
        registry = PreferenceRegistry(maxsize=2)
        httpd.preferences = registry
        suite = jrc_suite()
        for preference in suite.values():       # 5 levels through size 2
            registry.register(preference)
        assert len(registry) == 2
        assert registry.evictions == 3
        result = agent.check(SITE, "/catalog/evicted")   # re-registers
        assert result.covered


class TestGracefulShutdown:
    def test_close_flushes_check_log(self, tmp_path):
        server = serve(str(tmp_path / "flush.db"))
        thread = server.run_in_thread()
        agent = HttpClientAgent(server.base_url, jane_preference())
        agent.install_policy(VOLGA_POLICY_XML, site=SITE,
                             reference_file=VOLGA_REFERENCE_XML)
        for index in range(5):
            agent.check(SITE, f"/catalog/shutdown-{index}")
        pending = server.policy_server.log.pending
        assert pending > 0, "checks should still be buffered"
        agent.close()
        server.close()
        thread.join(timeout=5)
        assert server.policy_server.log.pending == 0
        assert server.policy_server.log.written >= pending

    def test_close_is_idempotent(self, tmp_path):
        server = serve(str(tmp_path / "idem.db"))
        server.close()
        server.close()


class TestSiteAndClientAgentOverHttp:
    def test_site_from_url(self, httpd):
        site = Site.from_url(httpd.base_url, SITE)
        assert site.host == SITE
        ref = site.reference_file.applicable_policy("/catalog/x")
        assert ref is not None and ref.policy_name == "volga"
        assert site.reference_file.applicable_policy("/legacy/x") is None
        assert site.fetch_counts["reference"] == 1

    def test_client_agent_delegates_over_the_wire(self, httpd):
        site = Site.from_url(httpd.base_url, SITE)
        thin = ClientAgent(jane_preference(),
                           transport=HttpClientAgent(httpd.base_url))
        result = thin.check(site, "/catalog/book-9")
        assert result.policy_name == "volga"
        assert result.behavior == "request"
        assert result.allowed
        # First check pays registration + check; later checks 1 round trip.
        assert result.fetches == 2
        assert thin.check(site, "/catalog/book-10").fetches == 1

    def test_wire_and_simulated_agents_agree(self, httpd):
        from repro.p3p.reference import parse_reference_file

        simulated_site = Site(
            host=SITE,
            reference_file=parse_reference_file(VOLGA_REFERENCE_XML),
            policies={"volga": volga_policy()},
        )
        simulated = ClientAgent(jane_preference())
        wired = ClientAgent(jane_preference(),
                            transport=HttpClientAgent(httpd.base_url))
        for uri in ("/catalog/a", "/legacy/b", "/anything"):
            local = simulated.check(simulated_site, uri)
            remote = wired.check(simulated_site, uri)
            assert (local.policy_name, local.behavior) == \
                (remote.policy_name, remote.behavior)


class TestEndToEndAcceptance:
    """The ISSUE's acceptance scenario, verbatim."""

    THREADS = 4

    def test_batch_checks_match_in_process_byte_for_byte(self, tmp_path):
        policy = fortune_corpus()[0]
        reference_xml = (
            '<META xmlns="http://www.w3.org/2002/01/P3Pv1">\n'
            "  <POLICY-REFERENCES>\n"
            f'    <POLICY-REF about="#{policy.name}">\n'
            "      <INCLUDE>/*</INCLUDE>\n"
            "      <EXCLUDE>/private/*</EXCLUDE>\n"
            "    </POLICY-REF>\n"
            "  </POLICY-REFERENCES>\n"
            "</META>\n"
        )
        corp = "corp.example.com"
        preference = jrc_suite()["High"]        # a JRC preference
        requests = [
            (corp, f"/products/p{i}" if i % 3 else f"/private/p{i}")
            for i in range(48)
        ]

        # In-process reference run.
        local = PolicyServer(str(tmp_path / "local.db"))
        try:
            local.install_policy(policy, site=corp)
            local.install_reference_file(reference_xml, corp)
            expected = [
                local.check(site, uri, preference)
                for site, uri in requests
            ]
        finally:
            local.close()

        # Over-the-wire run: 4 client threads, one batch each.
        server = serve(str(tmp_path / "wire.db"))
        thread = server.run_in_thread()
        try:
            admin = HttpClientAgent(server.base_url, preference)
            admin.install_policy(policy, site=corp,
                                 reference_file=reference_xml)
            digest = admin.register_preference()
            admin.close()

            chunks = [requests[i::self.THREADS]
                      for i in range(self.THREADS)]
            decisions: dict[int, list] = {}
            errors: list[Exception] = []

            def worker(index: int) -> None:
                try:
                    with HttpClientAgent(server.base_url, preference,
                                         preference_hash=digest) as c:
                        decisions[index] = c.check_batch(chunks[index])
                except Exception as exc:     # pragma: no cover
                    errors.append(exc)

            workers = [threading.Thread(target=worker, args=(i,))
                       for i in range(self.THREADS)]
            for worker_thread in workers:
                worker_thread.start()
            for worker_thread in workers:
                worker_thread.join(timeout=30)
            assert errors == []

            # Stitch the interleaved chunks back into request order.
            over_wire: list = [None] * len(requests)
            for index, chunk in decisions.items():
                for offset, result in enumerate(chunk):
                    over_wire[index + offset * self.THREADS] = result

            expected_decisions = json.dumps(
                [(r.site, r.uri, r.policy_id, r.behavior, r.rule_index)
                 for r in expected])
            wire_decisions = json.dumps(
                [list(r.decision) for r in over_wire])
            assert json.loads(wire_decisions) == \
                json.loads(expected_decisions)
            assert wire_decisions.encode("utf-8") == json.dumps(
                [list(t) for t in json.loads(expected_decisions)]
            ).encode("utf-8")

            # Exactly-once logging across the network boundary.
            assert server.policy_server.check_count() == len(requests)
        finally:
            server.close()
            thread.join(timeout=5)


class TestMatchCorpus:
    def test_match_covers_every_installed_policy(self, httpd):
        with HttpClientAgent(httpd.base_url, jane_preference()) as agent:
            response = agent.match_corpus()
            names = [entry.name for entry in response.results]
            assert "volga" in names
            # Registration eagerly populated the cache, so the first
            # match is already warm.
            assert response.cache_misses == 0
            assert all(entry.cached for entry in response.results)

    def test_metrics_expose_decision_cache(self, httpd):
        with HttpClientAgent(httpd.base_url, jane_preference()) as agent:
            agent.match_corpus()
            cache = agent.metrics()["decision_cache"]
            assert cache["populated"] >= 1
            assert cache["write_errors"] == 0
            assert cache["hits"] >= 1

    def test_unknown_hash_gets_unknown_preference(self, httpd):
        status, _, body = raw_request(
            httpd, "POST", "/v1/match",
            body=protocol.encode({"preference_hash": "nope"}))
        assert status == 404
        envelope = protocol.ErrorEnvelope.from_wire(json.loads(body))
        assert envelope.code == protocol.ERR_UNKNOWN_PREFERENCE


class TestMatchCorpusConcurrency:
    """4 matcher threads against a thread of version-bumping installs:
    every served (version, decision) pair must be internally consistent
    — the decision the native engine gives for exactly that version —
    so no interleaving can expose a stale cache row."""

    MATCHERS = 4
    MATCHES_EACH = 10
    VERSIONS = 8

    @staticmethod
    def _flux(retention):
        from repro.p3p.model import (
            Policy,
            PurposeValue,
            RecipientValue,
            Statement,
        )

        return Policy(
            name="flux",
            discuri="http://flux.example.com/p",
            statements=(
                Statement(
                    purposes=(PurposeValue("current"),),
                    recipients=(RecipientValue("ours"),),
                    retention=retention,
                ),
            ),
        )

    def test_every_response_consistent_with_some_install_order(
            self, httpd):
        from repro.appel.engine import AppelEngine
        from repro.p3p.serializer import serialize_policy

        retentions = ("no-retention", "stated-purpose", "indefinitely")
        preference = jrc_suite()["Very High"]
        native = AppelEngine()
        retention_for = {
            version: retentions[(version - 1) % len(retentions)]
            for version in range(1, self.VERSIONS + 1)
        }
        expected_by_version = {
            version: (verdict.behavior, verdict.rule_index)
            for version, retention in retention_for.items()
            for verdict in (native.evaluate(self._flux(retention),
                                            preference),)
        }
        # The interleaving only proves something if versions disagree.
        assert len(set(expected_by_version.values())) > 1

        with HttpClientAgent(httpd.base_url, preference) as admin:
            admin.install_policy(
                serialize_policy(self._flux(retention_for[1])))
            admin.register_preference()

        barrier = threading.Barrier(self.MATCHERS + 1)
        observed: list[tuple] = []
        lock = threading.Lock()
        errors: list[Exception] = []

        def matcher() -> None:
            try:
                with HttpClientAgent(httpd.base_url, preference) as c:
                    barrier.wait(timeout=10)
                    for _ in range(self.MATCHES_EACH):
                        for entry in c.match_corpus().results:
                            if entry.name == "flux":
                                with lock:
                                    observed.append(
                                        (entry.version, entry.behavior,
                                         entry.rule_index))
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        def installer() -> None:
            try:
                with HttpClientAgent(httpd.base_url, preference) as c:
                    barrier.wait(timeout=10)
                    for version in range(2, self.VERSIONS + 1):
                        c.install_policy(serialize_policy(
                            self._flux(retention_for[version])))
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=matcher)
                   for _ in range(self.MATCHERS)]
        threads.append(threading.Thread(target=installer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        # A versioned install inserts the new active version before
        # deactivating the old one (a reader never sees *zero* active
        # versions), so a match racing an install may carry both — at
        # least one "flux" entry per match, never more than two.
        floor = self.MATCHERS * self.MATCHES_EACH
        assert floor <= len(observed) <= 2 * floor

        # Serializability: whatever version a response carried, its
        # decision is that version's — never another version's through
        # a stale cache row.
        for version, behavior, rule_index in set(observed):
            assert (behavior, rule_index) == \
                expected_by_version[version], version


class TestStaticAnalysisSurface:
    def test_metrics_expose_audit_and_validation_counters(self, agent):
        metrics = agent.metrics()
        assert metrics["plan_audit"] == {"plans_audited": 0,
                                         "findings": 0}
        assert metrics["preferences"]["validation_findings"] == 0

    def test_registry_logs_bad_ruleset_without_rejecting(self, caplog):
        from repro.appel.model import expression, rule, ruleset

        registry = PreferenceRegistry()
        suspect = ruleset(rule("blokk", expression(
            "POLICY", expression("STATEMNT"))))
        with caplog.at_level("WARNING", logger="repro.net.httpd"):
            digest, created = registry.register(suspect)
        assert created and registry.get(digest) is suspect
        assert registry.validation_findings > 0
        messages = " ".join(record.message for record in caplog.records)
        assert "blokk" in messages
        assert "STATEMNT" in messages

    def test_revalidation_skipped_for_known_ruleset(self):
        from repro.appel.model import rule, ruleset

        registry = PreferenceRegistry()
        suspect = ruleset(rule("blokk"))
        registry.register(suspect)
        before = registry.validation_findings
        registry.register(suspect)  # same content hash: no re-validation
        assert registry.validation_findings == before

    def test_audited_server_over_http(self, tmp_path):
        policy_server = PolicyServer(str(tmp_path / "audited.db"),
                                     audit_plans=True)
        server = P3PHttpServer(policy_server, ("127.0.0.1", 0),
                               owns_policy_server=True)
        thread = server.run_in_thread()
        try:
            with HttpClientAgent(server.base_url,
                                 jane_preference()) as agent:
                agent.install_policy(VOLGA_POLICY_XML, site=SITE,
                                     reference_file=VOLGA_REFERENCE_XML)
                agent.check(SITE, "/catalog/book-1")
                metrics = agent.metrics()
                assert metrics["plan_audit"]["plans_audited"] == 1
                assert metrics["plan_audit"]["findings"] == 0
        finally:
            server.close()
            thread.join(timeout=5)
