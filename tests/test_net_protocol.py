"""Wire protocol: round-trips, versioning, and stable error codes."""

import json

import pytest

from repro.net import protocol


def roundtrip(message):
    """encode → decode → from_wire must reproduce the message."""
    payload = protocol.decode(protocol.encode(message.to_wire()))
    return type(message).from_wire(payload)


class TestRoundTrips:
    def test_register_preference_request(self):
        message = protocol.RegisterPreferenceRequest(appel="<RULESET/>")
        assert roundtrip(message) == message

    def test_register_preference_response(self):
        message = protocol.RegisterPreferenceResponse(
            preference_hash="abc123", rules=7, created=True)
        assert roundtrip(message) == message

    def test_check_request(self):
        message = protocol.CheckRequest(
            site="volga.example.com", uri="/catalog/1",
            preference_hash="abc123", cookie=True)
        assert roundtrip(message) == message

    def test_check_request_cookie_defaults_false(self):
        payload = protocol.CheckRequest(
            site="s", uri="/u", preference_hash="h").to_wire()
        del payload["cookie"]
        assert protocol.CheckRequest.from_wire(payload).cookie is False

    def test_check_response_covered(self):
        message = protocol.CheckResponse(
            site="s", uri="/u", policy_id=3, behavior="block",
            rule_index=1, elapsed_seconds=0.25)
        restored = roundtrip(message)
        assert restored == message
        assert not restored.allowed
        assert restored.covered

    def test_check_response_uncovered(self):
        message = protocol.CheckResponse(
            site="s", uri="/u", policy_id=None, behavior=None,
            rule_index=None, elapsed_seconds=0.0)
        restored = roundtrip(message)
        assert restored == message
        assert restored.allowed
        assert not restored.covered

    def test_check_request_carries_its_check_key(self):
        message = protocol.CheckRequest(
            site="s", uri="/u", preference_hash="h",
            check_key="agent-00000001")
        assert roundtrip(message) == message
        # Absent key stays absent on the wire (old clients unchanged).
        bare = protocol.CheckRequest(site="s", uri="/u",
                                     preference_hash="h")
        assert "check_key" not in bare.to_wire()
        assert roundtrip(bare).check_key is None

    def test_batch_check_request(self):
        message = protocol.BatchCheckRequest(
            preference_hash="h",
            checks=(("a.example", "/x"), ("b.example", "/y")))
        assert roundtrip(message) == message

    def test_batch_check_request_with_keys(self):
        message = protocol.BatchCheckRequest(
            preference_hash="h",
            checks=(("a.example", "/x"), ("b.example", "/y")),
            check_keys=("k-1", "k-2"))
        assert roundtrip(message) == message

    def test_batch_check_keys_must_align_with_checks(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.BatchCheckRequest(
                preference_hash="h",
                checks=(("a.example", "/x"),),
                check_keys=("k-1", "k-2"))

    def test_batch_check_response(self):
        message = protocol.BatchCheckResponse(results=(
            protocol.CheckResponse(site="s", uri="/1", policy_id=1,
                                   behavior="request", rule_index=2,
                                   elapsed_seconds=0.1),
            protocol.CheckResponse(site="s", uri="/2", policy_id=None,
                                   behavior=None, rule_index=None,
                                   elapsed_seconds=0.0),
        ))
        assert roundtrip(message) == message

    def test_install_policy_request(self):
        message = protocol.InstallPolicyRequest(
            policy="<POLICY/>", site="s", reference_file="<META/>")
        assert roundtrip(message) == message

    def test_install_policy_response(self):
        message = protocol.InstallPolicyResponse(
            policy_id=4, statements=2, data_items=5, categories=8,
            seconds=0.01, reference_rows=1)
        assert roundtrip(message) == message

    def test_error_envelope(self):
        message = protocol.ErrorEnvelope(
            code=protocol.ERR_OVERLOADED, message="busy", retry_after=2.0)
        assert roundtrip(message) == message

    def test_error_envelope_without_retry_after(self):
        message = protocol.ErrorEnvelope(code="not-found", message="nope")
        wire = message.to_wire()
        assert "retry_after" not in wire["error"]
        assert roundtrip(message) == message


class TestVersioning:
    def test_encode_stamps_version(self):
        payload = json.loads(protocol.encode({"x": 1}))
        assert payload["v"] == protocol.PROTOCOL_VERSION

    @pytest.mark.parametrize("version", [None, 0, 2, 99, "1"])
    def test_unknown_version_rejected(self, version):
        body = json.dumps({"v": version, "site": "s"})
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode(body)
        assert excinfo.value.code == protocol.ERR_BAD_VERSION
        assert excinfo.value.http_status == 400

    def test_missing_version_rejected(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode(b"{}")
        assert excinfo.value.code == protocol.ERR_BAD_VERSION


class TestMalformedBodies:
    @pytest.mark.parametrize("raw", [b"", b"{", b"not json", b"\xff\xfe"])
    def test_unparseable_json(self, raw):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode(raw)
        assert excinfo.value.code == protocol.ERR_BAD_JSON

    @pytest.mark.parametrize("raw", [b"[1, 2]", b'"text"', b"3", b"null"])
    def test_non_object_json(self, raw):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode(raw)
        assert excinfo.value.code == protocol.ERR_BAD_JSON

    def test_missing_field(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.CheckRequest.from_wire(
                {"v": 1, "site": "s", "preference_hash": "h"})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        assert "uri" in str(excinfo.value)

    def test_mistyped_field(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.CheckRequest.from_wire(
                {"v": 1, "site": "s", "uri": 7, "preference_hash": "h"})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_batch_entry_must_be_object(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.BatchCheckRequest.from_wire(
                {"v": 1, "preference_hash": "h", "checks": ["/x"]})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_batch_size_capped(self):
        checks = [{"site": "s", "uri": f"/{i}"}
                  for i in range(protocol.MAX_BATCH_CHECKS + 1)]
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.BatchCheckRequest.from_wire(
                {"v": 1, "preference_hash": "h", "checks": checks})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_reference_file_requires_site(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.InstallPolicyRequest.from_wire(
                {"v": 1, "policy": "<POLICY/>",
                 "reference_file": "<META/>"})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST


class TestErrorMapping:
    def test_codes_have_stable_statuses(self):
        assert protocol.HTTP_STATUS[protocol.ERR_UNKNOWN_PREFERENCE] == 404
        assert protocol.HTTP_STATUS[protocol.ERR_OVERLOADED] == 503
        assert protocol.HTTP_STATUS[protocol.ERR_PARSE] == 422
        assert protocol.HTTP_STATUS[protocol.ERR_METHOD_NOT_ALLOWED] == 405

    def test_protocol_error_derives_status_from_code(self):
        error = protocol.ProtocolError(protocol.ERR_OVERLOADED, "busy",
                                       retry_after=1.5)
        assert error.http_status == 503
        envelope = error.envelope()
        assert envelope.code == protocol.ERR_OVERLOADED
        assert envelope.retry_after == 1.5

    def test_error_from_http_reads_envelope(self):
        body = protocol.encode(protocol.ErrorEnvelope(
            code=protocol.ERR_NOT_FOUND, message="gone").to_wire())
        error = protocol.error_from_http(404, body)
        assert error.code == protocol.ERR_NOT_FOUND
        assert error.http_status == 404

    def test_error_from_http_degrades_on_garbage(self):
        error = protocol.error_from_http(502, b"<html>bad gateway</html>")
        assert error.code == protocol.ERR_INTERNAL
        assert error.http_status == 502
