"""Server-centric, client-centric, and hybrid deployments + analytics."""

import pytest

from repro.corpus.volga import VOLGA_REFERENCE_XML
from repro.p3p.parser import parse_policy
from repro.p3p.reference import parse_reference_file
from repro.server import (
    ClientAgent,
    HybridAgent,
    PolicyServer,
    Site,
    blocking_rules,
    policy_conflicts,
    uncovered_uris,
)

SITE = "volga.example.com"


@pytest.fixture()
def server(volga):
    server = PolicyServer()
    server.install_policy(volga, site=SITE)
    server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
    return server


@pytest.fixture()
def site(volga):
    return Site(
        host=SITE,
        reference_file=parse_reference_file(VOLGA_REFERENCE_XML),
        policies={"volga": volga},
    )


class TestPolicyServer:
    def test_check_allowed(self, server, jane):
        result = server.check(SITE, "/catalog/book", jane)
        assert result.behavior == "request"
        assert result.allowed
        assert result.covered
        assert result.elapsed_seconds > 0

    def test_check_blocked(self, server):
        from repro.corpus.preferences import very_high_preference

        result = server.check(SITE, "/catalog/book",
                              very_high_preference())
        assert result.behavior == "block"
        assert not result.allowed

    def test_uncovered_uri(self, server, jane):
        result = server.check(SITE, "/legacy/old", jane)
        assert not result.covered
        assert result.behavior is None
        assert result.allowed  # nothing blocked it; caller decides

    def test_preference_as_xml_string(self, server):
        from repro.corpus.volga import JANE_PREFERENCE_XML

        result = server.check(SITE, "/catalog/book", JANE_PREFERENCE_XML)
        assert result.behavior == "request"

    def test_translation_cache_grows_once_per_pref_policy(self, server,
                                                          jane):
        server.check(SITE, "/a", jane)
        server.check(SITE, "/b", jane)  # same policy, same pref
        assert server.cache_size() == 1

    def test_check_log_grows(self, server, jane):
        before = server.check_count()
        server.check(SITE, "/x", jane)
        assert server.check_count() == before + 1

    def test_versioned_reinstall(self, server, volga, jane):
        # Installing again supersedes; the reference file is retargeted
        # automatically, so checks hit the new version.
        report = server.install_policy(volga, site=SITE)
        versions = server.versions.history("volga")
        assert [v.version for v in versions] == [1, 2]
        result = server.check(SITE, "/catalog/book", jane)
        assert result.behavior == "request"
        assert result.policy_id == report.policy_id

    def test_same_policy_name_on_two_sites_is_independent(self, volga,
                                                          jane):
        """Version chains and reference retargeting are per site: two
        sites may both name their policy 'volga' without interference."""
        from repro.corpus.volga import VOLGA_POLICY_NO_OPTIN_XML

        server = PolicyServer()
        good = server.install_policy(volga, site="a.example.com")
        server.install_reference_file(
            VOLGA_REFERENCE_XML.replace("volga.example.com",
                                        "a.example.com"),
            "a.example.com")
        bad = server.install_policy(
            parse_policy(VOLGA_POLICY_NO_OPTIN_XML), site="b.example.com")
        server.install_reference_file(
            VOLGA_REFERENCE_XML.replace("volga.example.com",
                                        "b.example.com"),
            "b.example.com")

        result_a = server.check("a.example.com", "/x", jane)
        result_b = server.check("b.example.com", "/x", jane)
        assert result_a.policy_id == good.policy_id
        assert result_b.policy_id == bad.policy_id
        assert result_a.behavior == "request"
        assert result_b.behavior == "block"

    def test_like_metacharacters_in_name_retarget_nothing_else(self,
                                                               volga,
                                                               jane):
        """Reinstalling 'vol_a' must not steal 'volga' references: an
        unescaped LIKE would read the underscore as a wildcard and
        '%#vol_a' matches '...#volga'."""
        from repro.corpus.volga import VOLGA_POLICY_NO_OPTIN_XML

        server = PolicyServer()
        good = server.install_policy(volga, site=SITE)
        underscore = parse_policy(
            VOLGA_POLICY_NO_OPTIN_XML.replace('name="volga"',
                                              'name="vol_a"'))
        server.install_policy(underscore, site=SITE)
        server.install_reference_file(
            """<META xmlns="http://www.w3.org/2002/01/P3Pv1">
              <POLICY-REFERENCES>
                <POLICY-REF about="/w3c/policy.xml#volga">
                  <INCLUDE>/catalog/*</INCLUDE>
                </POLICY-REF>
                <POLICY-REF about="/w3c/policy.xml#vol_a">
                  <INCLUDE>/other/*</INCLUDE>
                </POLICY-REF>
              </POLICY-REFERENCES>
            </META>""", SITE)

        report = server.install_policy(underscore, site=SITE)  # v2

        other = server.check(SITE, "/other/x", jane)
        catalog = server.check(SITE, "/catalog/x", jane)
        assert other.policy_id == report.policy_id
        assert catalog.policy_id == good.policy_id
        assert catalog.behavior == "request"
        assert other.behavior == "block"

    def test_cookie_check(self, server, jane):
        result = server.check(SITE, "/anything", jane, cookie=True)
        assert result.covered


class TestAnalytics:
    def test_policy_conflicts(self, server, jane, suite):
        for preference in suite.values():
            server.check(SITE, "/catalog/book", preference)
        server.flush_log()  # the check log is buffered/batched
        reports = policy_conflicts(server.db)
        assert len(reports) == 1
        report = reports[0]
        assert report.policy_name == "volga"
        assert report.checks == 5
        assert report.blocks >= 1           # Very High blocks Volga
        assert report.distinct_preferences == 5
        assert 0 < report.block_rate < 1

    def test_blocking_rules(self, server, suite):
        for preference in suite.values():
            server.check(SITE, "/catalog/book", preference)
        server.flush_log()
        reports = policy_conflicts(server.db)
        rules = blocking_rules(server.db, reports[0].policy_id)
        assert rules, "expected at least one blocking rule"
        assert all(r.fires >= 1 for r in rules)

    def test_uncovered_uris(self, server, jane):
        server.check(SITE, "/legacy/a", jane)
        server.check(SITE, "/legacy/a", jane)
        server.check(SITE, "/legacy/b", jane)
        server.flush_log()
        gaps = uncovered_uris(server.db)
        assert gaps[0] == ("/legacy/a", 2)


class TestClientAgent:
    def test_check_matches_server_decision(self, server, site, jane):
        client = ClientAgent(jane)
        client_result = client.check(site, "/catalog/book")
        server_result = server.check(SITE, "/catalog/book", jane)
        assert client_result.behavior == server_result.behavior

    def test_reference_file_cached(self, site, jane):
        client = ClientAgent(jane)
        first = client.check(site, "/catalog/a")
        second = client.check(site, "/catalog/b")
        assert first.fetches == 2   # reference + policy
        assert second.fetches == 1  # policy only

    def test_reference_cache_disabled(self, site, jane):
        client = ClientAgent(jane, cache_reference_files=False)
        client.check(site, "/catalog/a")
        second = client.check(site, "/catalog/b")
        assert second.fetches == 2

    def test_uncovered_uri(self, site, jane):
        client = ClientAgent(jane)
        result = client.check(site, "/legacy/old")
        assert not result.covered


class TestHybridAgent:
    def test_check_matches_server_decision(self, server, site, jane):
        hybrid = HybridAgent(jane, server)
        result = hybrid.check(site, "/catalog/book")
        assert result.behavior == "request"

    def test_reference_cached_after_first_check(self, server, site, jane):
        hybrid = HybridAgent(jane, server)
        first = hybrid.check(site, "/catalog/a")
        second = hybrid.check(site, "/catalog/b")
        assert not first.used_cached_reference
        assert second.used_cached_reference

    def test_uncovered_uri(self, server, site, jane):
        hybrid = HybridAgent(jane, server)
        result = hybrid.check(site, "/legacy/x")
        assert result.policy_name is None

    def test_all_three_architectures_agree(self, server, site, suite):
        for level, preference in suite.items():
            server_result = server.check(SITE, "/catalog/book", preference)
            client_result = ClientAgent(preference).check(
                site, "/catalog/book")
            hybrid_result = HybridAgent(preference, server).check(
                site, "/catalog/book")
            assert server_result.behavior == client_result.behavior \
                == hybrid_result.behavior, level


class TestPlanAudit:
    def test_audit_runs_on_cache_miss_only(self, volga, jane):
        server = PolicyServer(audit_plans=True)
        server.install_policy(volga, site=SITE)
        server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
        server.check(SITE, "/catalog/book", jane)
        stats = server.pool.stats()
        assert stats.plans_audited == 1
        assert stats.audit_findings == 0  # suite plans are index-driven
        assert server.last_audit_findings == ()
        # Warm path: the cached plan is not re-audited.
        server.check(SITE, "/catalog/other", jane)
        assert server.pool.stats().plans_audited == 1
        server.close()

    def test_audit_off_by_default(self, server, jane):
        server.check(SITE, "/catalog/book", jane)
        assert server.pool.stats().plans_audited == 0
