"""XML helpers shared by the parsers."""

import xml.etree.ElementTree as ET

from repro import xmlutil


class TestLocalNames:
    def test_plain_tag(self):
        assert xmlutil.local_name("POLICY") == "POLICY"

    def test_namespaced_tag(self):
        assert xmlutil.local_name("{http://ns}POLICY") == "POLICY"

    def test_local_attrib(self):
        element = ET.fromstring(
            '<a xmlns:n="http://ns" n:x="1" y="2"/>'
        )
        assert xmlutil.local_attrib(element) == {"x": "1", "y": "2"}


class TestNavigation:
    def _tree(self):
        return ET.fromstring(
            "<root><a/><b><c/></b><a id='2'/></root>"
        )

    def test_find_child(self):
        root = self._tree()
        assert xmlutil.find_child(root, "b") is not None
        assert xmlutil.find_child(root, "zzz") is None

    def test_find_children(self):
        assert len(xmlutil.find_children(self._tree(), "a")) == 2

    def test_first_by_local_name_depth_first(self):
        found = xmlutil.first_by_local_name(self._tree(), "c")
        assert found is not None
        assert found.tag == "c"

    def test_first_by_local_name_self(self):
        root = self._tree()
        assert xmlutil.first_by_local_name(root, "root") is root


class TestText:
    def test_element_text_direct(self):
        element = ET.fromstring("<t>  hello  </t>")
        assert xmlutil.element_text(element) == "hello"

    def test_element_text_with_children(self):
        element = ET.fromstring("<t>a<x/>b<y/>c</t>")
        assert xmlutil.element_text(element) == "abc"

    def test_element_text_empty(self):
        assert xmlutil.element_text(ET.fromstring("<t/>")) == ""


class TestSerialization:
    def test_to_string_roundtrip(self):
        element = ET.fromstring("<a><b x='1'/></a>")
        text = xmlutil.to_string(element, indent=False)
        again = xmlutil.parse_string(text)
        assert again.find("b").get("x") == "1"

    def test_indentation(self):
        element = ET.fromstring("<a><b/></a>")
        assert "\n" in xmlutil.to_string(element, indent=True)
