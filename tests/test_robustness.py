"""Robustness: hostile input never escapes the library's error types.

Parsers, decoders, and the query engine must either succeed or raise a
:class:`~repro.errors.ReproError` subclass — no raw ElementTree/IndexError
leakage — and injection-shaped values must round-trip inertly through the
SQL layer.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.p3p.compact import decode_compact
from repro.p3p.parser import parse_policy
from repro.p3p.reference import parse_reference_file
from repro.appel.parser import parse_ruleset
from repro.xquery.parser import parse_query

_SETTINGS = settings(max_examples=60, deadline=None)

_text = st.text(
    alphabet=string.printable, max_size=200,
)
_xmlish = st.one_of(
    _text,
    st.builds(lambda inner: f"<POLICY>{inner}</POLICY>", _text),
    st.builds(lambda tag: f"<{tag}/>", st.text(
        alphabet=string.ascii_letters, min_size=1, max_size=10)),
)


class TestParsersNeverLeak:
    @_SETTINGS
    @given(payload=_xmlish)
    def test_policy_parser(self, payload):
        try:
            parse_policy(payload)
        except ReproError:
            pass

    @_SETTINGS
    @given(payload=_xmlish)
    def test_appel_parser(self, payload):
        try:
            parse_ruleset(payload)
        except ReproError:
            pass

    @_SETTINGS
    @given(payload=_xmlish)
    def test_reference_parser(self, payload):
        try:
            parse_reference_file(payload)
        except ReproError:
            pass

    @_SETTINGS
    @given(payload=_text)
    def test_compact_decoder(self, payload):
        try:
            decode_compact(payload)
        except ReproError:
            pass

    @_SETTINGS
    @given(payload=_text)
    def test_xquery_parser(self, payload):
        try:
            parse_query(payload)
        except ReproError:
            pass


class TestSqlInjectionShapedValues:
    """Values containing SQL metacharacters are data, not syntax."""

    INJECTION = "x'; DROP TABLE policy; --"

    def test_policy_attributes_inert(self):
        from repro.p3p.model import Policy, Statement
        from repro.storage import Database, PolicyStore
        from repro.storage.reconstruct import reconstruct_policy

        policy = Policy(name=self.INJECTION, discuri=self.INJECTION,
                        statements=(Statement(),))
        store = PolicyStore(Database())
        pid = store.install_policy(policy).policy_id
        assert store.db.table_count("policy") == 1
        assert reconstruct_policy(store.db, pid).name == self.INJECTION

    def test_rule_behavior_inert(self, volga):
        from repro.appel.model import rule, ruleset
        from repro.storage import Database, PolicyStore
        from repro.translate.appel_to_sql import (
            OptimizedSqlTranslator,
            applicable_policy_literal,
            evaluate_ruleset,
        )

        store = PolicyStore(Database())
        pid = store.install_policy(volga).policy_id
        preference = ruleset(rule(self.INJECTION))
        translated = OptimizedSqlTranslator().translate_ruleset(
            preference, applicable_policy_literal(pid))
        behavior, index = evaluate_ruleset(store.db, translated)
        assert behavior == self.INJECTION
        assert store.db.table_count("policy") == 1  # nothing dropped

    def test_expression_attribute_value_inert(self, volga):
        from repro.appel.model import expression, rule, ruleset
        from repro.storage import Database, PolicyStore
        from repro.translate.appel_to_sql import (
            OptimizedSqlTranslator,
            applicable_policy_literal,
            evaluate_ruleset,
        )

        store = PolicyStore(Database())
        pid = store.install_policy(volga).policy_id
        preference = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("DATA-GROUP",
                                                  expression(
                                                      "DATA",
                                                      ref=self.INJECTION))))),
            rule("request"),
        )
        translated = OptimizedSqlTranslator().translate_ruleset(
            preference, applicable_policy_literal(pid))
        assert evaluate_ruleset(store.db, translated) == ("request", 1)
        assert store.db.table_count("policy") == 1

    def test_reference_patterns_inert(self):
        from repro.p3p.reference import PolicyRef, ReferenceFile
        from repro.storage import Database, ReferenceStore

        store = ReferenceStore(Database())
        reference = ReferenceFile(refs=(
            PolicyRef(about="#p", includes=(self.INJECTION,)),
        ))
        store.install_reference_file(reference, "s.example.com",
                                     policy_ids={"p": 1})
        # Lookup runs without error and matches only the literal pattern.
        assert store.applicable_policy_id("s.example.com", "/x") is None
        assert store.applicable_policy_id("s.example.com",
                                          self.INJECTION) == 1
