"""Optimized schema (Figure 14): shredding, reconstruction, versioning."""

import pytest

from repro.errors import StorageError, UnknownPolicyError
from repro.p3p.model import Policy, Statement
from repro.storage.database import Database
from repro.storage.optimized_schema import POLICY_TABLES
from repro.storage.reconstruct import (
    reconstruct_policy,
    reconstruct_policy_xml,
)
from repro.storage.shredder import PolicyStore
from repro.storage.versioning import VersionedPolicyStore


class TestShredding:
    def test_report_counts(self, volga):
        store = PolicyStore()
        report = store.install_policy(volga)
        assert report.statements == 2
        assert report.data_items == 5
        assert report.categories > 5  # includes base-schema expansion
        assert report.seconds > 0

    def test_figure14_optimizations_visible(self, volga):
        """The Section 5.4 bullet points, checked against the rows."""
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        db = store.db
        # Purposes are rows with a 'purpose' column (no id column).
        purposes = {r["purpose"] for r in db.query(
            "SELECT purpose FROM purpose WHERE policy_id = ?", (pid,))}
        assert purposes == {"current", "individual-decision", "contact"}
        # RETENTION lives in the statement table.
        retentions = [r["retention"] for r in db.query(
            "SELECT retention FROM statement WHERE policy_id = ? "
            "ORDER BY statement_id", (pid,))]
        assert retentions == ["stated-purpose", "business-practices"]
        # CONSEQUENCE is a nullable statement column.
        consequence = db.scalar(
            "SELECT consequence FROM statement WHERE policy_id = ? "
            "AND statement_id = 1", (pid,))
        assert "purchase" in consequence
        # ACCESS folded into the policy table.
        assert db.scalar("SELECT access FROM policy WHERE policy_id = ?",
                         (pid,)) == "contact-and-other"

    def test_required_attribute_stored_resolved(self, volga):
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        required = {
            (r["purpose"], r["required"])
            for r in store.db.query(
                "SELECT purpose, required FROM purpose "
                "WHERE policy_id = ?", (pid,))
        }
        assert ("current", "always") in required
        assert ("contact", "opt-in") in required

    def test_category_expansion_with_source(self, volga):
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        rows = store.db.query(
            "SELECT category, source FROM category WHERE policy_id = ?",
            (pid,))
        sources = {r["source"] for r in rows}
        assert sources == {"explicit", "base"}
        categories = {r["category"] for r in rows}
        assert "purchase" in categories   # explicit on miscdata
        assert "physical" in categories   # base expansion of user.name

    def test_statement_count(self, volga):
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        assert store.statement_count(pid) == 2
        assert store.statement_count() == 2

    def test_delete_policy(self, volga):
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        store.delete_policy(pid)
        assert all(store.db.table_count(t) == 0 for t in POLICY_TABLES)
        with pytest.raises(UnknownPolicyError):
            store.delete_policy(pid)

    def test_policy_id_by_name(self, volga):
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        assert store.policy_id_by_name("volga") == pid
        assert store.policy_id_by_name("nobody") is None


class TestReconstruction:
    """The XML-view invariant: reconstruct(shred(p)) == p.augmented()."""

    def test_volga(self, volga):
        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        assert reconstruct_policy(store.db, pid) == volga.augmented()

    def test_corpus(self, small_corpus):
        store = PolicyStore()
        for policy in small_corpus:
            pid = store.install_policy(policy).policy_id
            assert reconstruct_policy(store.db, pid) == policy.augmented()

    def test_xml_view_parses(self, volga):
        from repro.p3p.parser import parse_policy

        store = PolicyStore()
        pid = store.install_policy(volga).policy_id
        xml = reconstruct_policy_xml(store.db, pid)
        assert parse_policy(xml) == volga.augmented()

    def test_unknown_policy_raises(self):
        store = PolicyStore()
        with pytest.raises(UnknownPolicyError):
            reconstruct_policy(store.db, 7)


class TestVersioning:
    def test_versions_increment(self, volga):
        store = VersionedPolicyStore()
        store.install(volga)
        store.install(volga)
        store.install(volga)
        history = store.history("volga")
        assert [v.version for v in history] == [1, 2, 3]
        assert [v.active for v in history] == [False, False, True]

    def test_active_policy_is_newest(self, volga):
        store = VersionedPolicyStore()
        first = store.install(volga).policy_id
        second = store.install(volga).policy_id
        assert store.active_policy_id("volga") == second
        assert store.active_policy("volga") == volga.augmented()

    def test_specific_version_retrievable(self, volga):
        from dataclasses import replace

        store = VersionedPolicyStore()
        store.install(volga)
        changed = replace(volga, discuri="http://volga.example.com/v2.html")
        store.install(changed)
        assert store.version("volga", 1).discuri == volga.discuri
        assert store.version("volga", 2).discuri.endswith("v2.html")

    def test_rollback(self, volga):
        store = VersionedPolicyStore()
        first = store.install(volga).policy_id
        store.install(volga)
        reactivated = store.rollback("volga")
        assert reactivated == first
        assert store.active_policy_id("volga") == first

    def test_rollback_without_history_raises(self, volga):
        store = VersionedPolicyStore()
        store.install(volga)
        with pytest.raises(StorageError):
            store.rollback("volga")

    def test_rollback_unknown_name_raises(self):
        store = VersionedPolicyStore()
        with pytest.raises(UnknownPolicyError):
            store.rollback("ghost")

    def test_unnamed_policy_rejected(self):
        store = VersionedPolicyStore()
        with pytest.raises(StorageError):
            store.install(Policy(statements=(Statement(),)))

    def test_unknown_version_raises(self, volga):
        store = VersionedPolicyStore()
        store.install(volga)
        with pytest.raises(UnknownPolicyError):
            store.version("volga", 9)
