"""Policy model: default resolution, category expansion, helpers."""

import pytest

from repro.errors import PolicyValidationError, VocabularyError
from repro.p3p.model import (
    DataItem,
    Disputes,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)


class TestPurposeValue:
    def test_required_defaults_to_always(self):
        assert PurposeValue("contact").required == "always"

    def test_explicit_required_kept(self):
        assert PurposeValue("contact", "opt-in").required == "opt-in"

    def test_none_required_resolves_to_always(self):
        assert PurposeValue("contact", None).required == "always"

    def test_current_drops_required(self):
        # The spec forbids required on <current/>.
        assert PurposeValue("current", "opt-in").required is None
        assert PurposeValue("current").effective_required == "always"

    def test_unknown_purpose_rejected(self):
        with pytest.raises(VocabularyError):
            PurposeValue("spy-on-user")

    def test_bad_required_rejected(self):
        with pytest.raises(VocabularyError):
            PurposeValue("contact", "maybe")


class TestRecipientValue:
    def test_ours_drops_required(self):
        assert RecipientValue("ours", "opt-in").required is None

    def test_same_keeps_required(self):
        assert RecipientValue("same", "opt-out").required == "opt-out"

    def test_unknown_recipient_rejected(self):
        with pytest.raises(VocabularyError):
            RecipientValue("nsa")


class TestDataItem:
    def test_normalized_ref(self):
        assert DataItem("#user.name").normalized_ref == "user.name"
        assert DataItem("user.name").normalized_ref == "user.name"

    def test_expanded_categories_union(self):
        item = DataItem("#user.home-info.postal", categories=("purchase",))
        expanded = item.expanded_categories()
        assert "purchase" in expanded      # explicit
        assert "physical" in expanded      # from the base schema

    def test_expanded_categories_unknown_ref_is_explicit_only(self):
        item = DataItem("#corp.custom.field", categories=("content",))
        assert item.expanded_categories() == frozenset({"content"})

    def test_variable_ref_expands_to_explicit_only(self):
        item = DataItem("#dynamic.miscdata", categories=("purchase",))
        assert item.expanded_categories() == frozenset({"purchase"})

    def test_bad_category_rejected(self):
        with pytest.raises(VocabularyError):
            DataItem("#user.name", categories=("gossip",))

    def test_bad_optional_rejected(self):
        with pytest.raises(PolicyValidationError):
            DataItem("#user.name", optional="maybe")


class TestStatement:
    def test_bad_retention_rejected(self):
        with pytest.raises(VocabularyError):
            Statement(retention="until-the-heat-death")

    def test_accessors(self):
        statement = Statement(
            purposes=(PurposeValue("current"), PurposeValue("admin")),
            recipients=(RecipientValue("ours"),),
            retention="stated-purpose",
            data=(DataItem("#user.name"),),
        )
        assert statement.purpose_names() == ("current", "admin")
        assert statement.recipient_names() == ("ours",)
        assert statement.data_refs() == ("#user.name",)


class TestDisputes:
    def test_bad_remedy_rejected(self):
        with pytest.raises(PolicyValidationError):
            Disputes(remedies=("apology",))

    def test_bad_resolution_type_rejected(self):
        with pytest.raises(PolicyValidationError):
            Disputes(resolution_type="duel")


class TestPolicy:
    def test_bad_access_rejected(self):
        with pytest.raises(PolicyValidationError):
            Policy(access="backdoor")

    def test_with_statement_appends(self):
        policy = Policy()
        grown = policy.with_statement(Statement())
        assert policy.statement_count() == 0
        assert grown.statement_count() == 1

    def test_data_refs_across_statements(self, volga):
        refs = volga.data_refs()
        assert "#user.name" in refs
        assert refs.count("#dynamic.miscdata") == 2

    def test_augmented_expands_categories(self, volga):
        augmented = volga.augmented()
        first = augmented.statements[0]
        name_item = first.data[0]
        assert name_item.ref == "#user.name"
        assert "physical" in name_item.categories

    def test_augmented_is_idempotent(self, volga):
        once = volga.augmented()
        assert once.augmented() == once

    def test_augmented_preserves_everything_else(self, volga):
        augmented = volga.augmented()
        assert augmented.name == volga.name
        assert augmented.statement_count() == volga.statement_count()
        assert augmented.statements[0].purposes == \
            volga.statements[0].purposes
