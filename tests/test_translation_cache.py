"""TranslationCache: LRU bounds, eviction order, install invalidation."""

import pytest

from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import (
    VOLGA_REFERENCE_XML,
    jane_preference,
    volga_policy,
)
from repro.server.policy_server import PolicyServer, TranslationCache

SITE = "volga.example.com"


class TestLruSemantics:
    def test_bound_is_enforced(self):
        cache = TranslationCache(maxsize=3)
        for i in range(10):
            cache.put(("pref", i), f"t{i}")
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_least_recently_used_is_evicted_first(self):
        cache = TranslationCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)  # evicts a, the oldest
        assert "a" not in cache
        assert cache.keys() == ["b", "c", "d"]

    def test_get_refreshes_recency(self):
        cache = TranslationCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1  # a is now the most recent
        cache.put("d", 4)           # so b is evicted instead
        assert "a" in cache
        assert "b" not in cache

    def test_put_of_existing_key_refreshes_without_growth(self):
        cache = TranslationCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b: a was refreshed by the re-put
        assert cache.keys() == ["a", "c"]
        assert cache.get("a") == 10

    def test_hit_and_miss_counters(self):
        cache = TranslationCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_invalidate_by_predicate(self):
        cache = TranslationCache(maxsize=10)
        for i in range(6):
            cache.put(("p", i), i)
        dropped = cache.invalidate(lambda key: key[1] % 2 == 0)
        assert dropped == 3
        assert sorted(key[1] for key in cache.keys()) == [1, 3, 5]

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            TranslationCache(maxsize=0)


@pytest.fixture()
def server():
    server = PolicyServer()
    server.install_policy(volga_policy(), site=SITE)
    server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
    return server


class TestServerCache:
    def test_cache_stays_within_bound(self):
        server = PolicyServer(translation_cache_size=2)
        server.install_policy(volga_policy(), site=SITE)
        server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
        for preference in jrc_suite().values():  # 5 distinct preferences
            server.check(SITE, "/catalog/book", preference)
        assert server.cache_size() == 2

    def test_cache_hit_skips_retranslation(self, server):
        jane = jane_preference()
        server.check(SITE, "/catalog/a", jane)
        misses = server._translation_cache.misses
        server.check(SITE, "/catalog/b", jane)
        assert server._translation_cache.misses == misses
        assert server._translation_cache.hits >= 1

    def test_version_bump_invalidates_stale_id(self, server):
        """After a re-install the superseded version's id *survives* in
        the policy table, but its cached translations must not: checks
        resolve to the new version, and the old id could even be
        recycled later."""
        jane = jane_preference()
        first = server.check(SITE, "/catalog/book", jane)
        old_id = first.policy_id
        assert ((PolicyServer._preference_hash(jane), old_id)
                in server._translation_cache)

        server.install_policy(volga_policy(), site=SITE)  # version 2

        # The old id is still present (inactive) in the version history…
        assert server.policies.has_policy(old_id)
        # …but no translation pinned to it survives.
        assert all(key[1] != old_id
                   for key in server._translation_cache.keys())

        second = server.check(SITE, "/catalog/book", jane)
        assert second.policy_id != old_id
        assert second.behavior == first.behavior

    def test_unnamed_install_prunes_dead_ids_only(self, server):
        jane = jane_preference()
        result = server.check(SITE, "/catalog/book", jane)
        from dataclasses import replace

        anonymous = replace(volga_policy(), name=None)
        server.install_policy(anonymous, site="other.example.com")
        # The active volga translation is untouched.
        assert ((PolicyServer._preference_hash(jane), result.policy_id)
                in server._translation_cache)

    def test_cache_size_helper_counts_entries(self, server):
        assert server.cache_size() == 0
        server.check(SITE, "/catalog/book", jane_preference())
        assert server.cache_size() == 1
