"""TranslationCache: LRU bounds, eviction order, plan reuse across policies."""

import pytest

from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import (
    VOLGA_REFERENCE_XML,
    jane_preference,
    volga_policy,
)
from repro.server.policy_server import PolicyServer, TranslationCache

SITE = "volga.example.com"


class TestLruSemantics:
    def test_bound_is_enforced(self):
        cache = TranslationCache(maxsize=3)
        for i in range(10):
            cache.put(("pref", i), f"t{i}")
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_least_recently_used_is_evicted_first(self):
        cache = TranslationCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)  # evicts a, the oldest
        assert "a" not in cache
        assert cache.keys() == ["b", "c", "d"]

    def test_get_refreshes_recency(self):
        cache = TranslationCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1  # a is now the most recent
        cache.put("d", 4)           # so b is evicted instead
        assert "a" in cache
        assert "b" not in cache

    def test_put_of_existing_key_refreshes_without_growth(self):
        cache = TranslationCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b: a was refreshed by the re-put
        assert cache.keys() == ["a", "c"]
        assert cache.get("a") == 10

    def test_hit_and_miss_counters(self):
        cache = TranslationCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_invalidate_by_predicate(self):
        cache = TranslationCache(maxsize=10)
        for i in range(6):
            cache.put(("p", i), i)
        dropped = cache.invalidate(lambda key: key[1] % 2 == 0)
        assert dropped == 3
        assert sorted(key[1] for key in cache.keys()) == [1, 3, 5]

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            TranslationCache(maxsize=0)


@pytest.fixture()
def server():
    server = PolicyServer()
    server.install_policy(volga_policy(), site=SITE)
    server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
    return server


class TestServerCache:
    def test_cache_stays_within_bound(self):
        server = PolicyServer(translation_cache_size=2)
        server.install_policy(volga_policy(), site=SITE)
        server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
        for preference in jrc_suite().values():  # 5 distinct preferences
            server.check(SITE, "/catalog/book", preference)
        assert server.cache_size() == 2

    def test_cache_hit_skips_retranslation(self, server):
        jane = jane_preference()
        server.check(SITE, "/catalog/a", jane)
        misses = server._translation_cache.misses
        server.check(SITE, "/catalog/b", jane)
        # Never recompiled — and with the decision cache in front, the
        # repeat check resolves from the materialized decision without
        # even consulting the plan cache.
        assert server._translation_cache.misses == misses
        assert server.decisions.hits >= 1

    def test_decision_cache_off_reuses_plan(self):
        server = PolicyServer(cache_decisions=False)
        server.install_policy(volga_policy(), site=SITE)
        server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
        jane = jane_preference()
        server.check(SITE, "/catalog/a", jane)
        misses = server._translation_cache.misses
        server.check(SITE, "/catalog/b", jane)
        assert server._translation_cache.misses == misses
        assert server._translation_cache.hits >= 1

    def test_keyed_by_preference_hash_alone(self, server):
        """Compiled plans are policy-independent, so the cache key is the
        preference content hash — no policy id component."""
        jane = jane_preference()
        server.check(SITE, "/catalog/book", jane)
        assert server._translation_cache.keys() == \
            [PolicyServer._preference_hash(jane)]

    def test_plan_reused_across_distinct_policy_ids(self, server):
        """One compilation serves every installed policy: checks against
        two distinct policy ids miss the cache exactly once."""
        from dataclasses import replace

        other_site = "other.example.com"
        renamed = replace(volga_policy(), name="other-policy")
        server.install_policy(renamed, site=other_site)
        server.install_reference_file(
            VOLGA_REFERENCE_XML.replace("#volga", "#other-policy"),
            other_site)

        jane = jane_preference()
        first = server.check(SITE, "/catalog/book", jane)
        second = server.check(other_site, "/catalog/book", jane)
        assert first.policy_id != second.policy_id
        assert first.behavior == second.behavior
        # One miss (the compile), every later check a hit — across ids.
        assert server._translation_cache.misses == 1
        assert server._translation_cache.hits >= 1
        assert server.cache_size() == 1

    def test_version_bump_invalidates_nothing(self, server):
        """A re-install supersedes the old policy version, but plans bind
        the policy id at execution — the cached compilation stays valid
        and the next check resolves to the new version without a
        recompile."""
        jane = jane_preference()
        first = server.check(SITE, "/catalog/book", jane)
        old_id = first.policy_id
        misses = server._translation_cache.misses

        server.install_policy(volga_policy(), site=SITE)  # version 2

        # The old id is still present (inactive) in the version history…
        assert server.policies.has_policy(old_id)
        # …and the plan survives: the new version is a cache hit.
        second = server.check(SITE, "/catalog/book", jane)
        assert second.policy_id != old_id
        assert second.behavior == first.behavior
        assert server._translation_cache.misses == misses
        assert server.cache_size() == 1

    def test_cache_size_helper_counts_entries(self, server):
        assert server.cache_size() == 0
        server.check(SITE, "/catalog/book", jane_preference())
        assert server.cache_size() == 1
