"""Ruleset analysis: Figure 19 statistics and static validation."""

from repro.appel.analysis import ruleset_stats, validate_ruleset
from repro.appel.model import expression, rule, ruleset


class TestStats:
    def test_jane_stats(self, jane):
        stats = ruleset_stats(jane)
        assert stats.rule_count == 3
        assert stats.expression_count > 15
        assert stats.max_depth == 4  # POLICY/STATEMENT/PURPOSE/value
        assert 0.5 < stats.size_kb < 2.0
        assert stats.behaviors == ("block", "block", "request")

    def test_connective_census(self, jane):
        stats = ruleset_stats(jane)
        census = dict(stats.connective_census)
        assert census.get("or") == 2        # PURPOSE + RECIPIENT
        assert census.get("and") == 4       # POLICY/STATEMENT nestings

    def test_suite_matches_figure19_rule_counts(self, suite):
        rows = {level: ruleset_stats(rs).rule_count
                for level, rs in suite.items()}
        assert rows == {"Very High": 10, "High": 7, "Medium": 4,
                        "Low": 2, "Very Low": 1}

    def test_suite_size_ordering_tracks_figure19(self, suite):
        sizes = {level: ruleset_stats(rs).size_kb
                 for level, rs in suite.items()}
        assert sizes["Very High"] > sizes["High"] > sizes["Low"] \
            > sizes["Very Low"]


class TestValidation:
    def test_clean_suite(self, suite):
        for rs in suite.values():
            assert [p for p in validate_ruleset(rs)
                    if p.severity == "error"] == []

    def test_unknown_element_flagged(self):
        rs = ruleset(rule("block", expression("POLICY",
                                              expression("SURVEILLANCE"))),
                     rule("request"))
        problems = validate_ruleset(rs)
        assert any("SURVEILLANCE" in p.message and p.severity == "error"
                   for p in problems)

    def test_impossible_nesting_flagged(self):
        rs = ruleset(rule("block",
                          expression("POLICY", expression("PURPOSE"))),
                     rule("request"))
        problems = validate_ruleset(rs)
        assert any("can never occur" in p.message for p in problems)

    def test_unknown_attribute_flagged(self):
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT",
                                                expression("PURPOSE",
                                                           expression(
                                                               "contact",
                                                               loud="yes"))))),
                     rule("request"))
        problems = validate_ruleset(rs)
        assert any("no attribute" in p.message for p in problems)

    def test_impossible_attribute_value_flagged(self):
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT",
                                                expression("PURPOSE",
                                                           expression(
                                                               "contact",
                                                               required="perhaps"))))),
                     rule("request"))
        problems = validate_ruleset(rs)
        assert any("can never equal" in p.message for p in problems)

    def test_missing_catch_all_warns(self):
        rs = ruleset(rule("block", expression("POLICY")))
        problems = validate_ruleset(rs)
        assert any("catch-all" in p.message for p in problems)

    def test_dead_rules_after_catch_all_warn(self):
        rs = ruleset(rule("request"),
                     rule("block", expression("POLICY")))
        problems = validate_ruleset(rs)
        assert any("dead" in p.message for p in problems)

    def test_non_standard_behavior_warns(self):
        rs = ruleset(rule("shrug"))
        problems = validate_ruleset(rs)
        assert any("non-standard behavior" in p.message for p in problems)


class TestBehaviorValidation:
    def test_standard_behaviors_are_clean(self):
        for behavior in ("request", "limited", "block"):
            assert validate_ruleset(ruleset(rule(behavior))) == []

    def test_case_near_miss_suggests_the_standard_spelling(self):
        problems = validate_ruleset(ruleset(rule("Block")))
        (problem,) = [p for p in problems
                      if "non-standard behavior" in p.message]
        assert problem.severity == "warning"
        assert "did you mean 'block'" in problem.message

    def test_padding_near_miss_suggests_too(self):
        problems = validate_ruleset(ruleset(rule(" request ")))
        assert any("did you mean 'request'" in p.message
                   for p in problems)

    def test_unknown_behavior_lists_the_vocabulary(self):
        problems = validate_ruleset(ruleset(rule("shrug")))
        (problem,) = [p for p in problems
                      if "non-standard behavior" in p.message]
        assert "'request'" in problem.message
        assert "'block'" in problem.message
        assert problem.location == "rule[0]"
