"""Harness sanity: every experiment runs and produces coherent output.

The full-scale runs (and their timing claims) live in benchmarks/; these
tests only verify the machinery on reduced workloads.
"""

import pytest

from repro.bench.harness import (
    Aggregate,
    ablation_experiment,
    dataset_statistics,
    figure20,
    figure21,
    preference_statistics,
    run_matching_grid,
    shredding_experiment,
    warm_cold_experiment,
)
from repro.bench.reporting import (
    format_ablation,
    format_dataset_stats,
    format_figure20,
    format_figure21,
    format_preference_stats,
    format_shredding,
    format_warm_cold,
)


class TestAggregate:
    def test_of_values(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert agg.average == 2.0
        assert agg.maximum == 3.0
        assert agg.minimum == 1.0
        assert agg.count == 3

    def test_of_empty(self):
        agg = Aggregate.of([])
        assert agg.count == 0
        assert agg.average == 0.0


class TestWorkloadStats:
    def test_dataset_statistics(self):
        stats = dataset_statistics()
        assert stats.policy_count == 29
        assert stats.total_statements == 54
        assert "policies" in format_dataset_stats(stats)

    def test_preference_statistics(self):
        rows = preference_statistics()
        assert [level for level, _, _ in rows] == [
            "Very High", "High", "Medium", "Low", "Very Low",
        ]
        assert [rules for _, rules, _ in rows] == [10, 7, 4, 2, 1]
        text = format_preference_stats(rows)
        assert "Figure 19" in text


class TestShredding:
    def test_experiment(self, small_corpus):
        result = shredding_experiment(small_corpus, repeat=1)
        assert len(result.per_policy_seconds) == 5
        assert result.aggregate.minimum > 0
        assert result.aggregate.maximum >= result.aggregate.average
        assert "Shredding" in format_shredding(result)


@pytest.fixture(scope="module")
def grid_samples():
    from repro.corpus.policies import fortune_corpus
    from repro.corpus.preferences import jrc_suite

    return run_matching_grid(fortune_corpus()[:4], jrc_suite())


class TestMatchingGrid:
    def test_sample_counts(self, grid_samples):
        # 3 engines x 5 levels x 4 policies
        assert len(grid_samples) == 60

    def test_engines_agree_where_successful(self, grid_samples):
        by_key = {}
        for sample in grid_samples:
            if sample.failed:
                continue
            key = (sample.level, sample.policy_index)
            by_key.setdefault(key, set()).add(sample.behavior)
        assert all(len(behaviors) == 1 for behaviors in by_key.values())

    def test_xtable_fails_only_on_medium(self, grid_samples):
        failed = {(s.engine, s.level) for s in grid_samples if s.failed}
        assert failed == {("xquery", "Medium")}

    def test_figure20_shape(self, grid_samples):
        rows = figure20(grid_samples)
        by_engine = {row.engine: row for row in rows}
        assert set(by_engine) == {"appel", "sql", "xquery"}
        # The paper's headline ordering: SQL fastest, native slowest.
        assert by_engine["sql"].total.average \
            < by_engine["xquery"].total.average \
            < by_engine["appel"].total.average
        assert "Figure 20" in format_figure20(rows)

    def test_figure21_medium_cell_blank(self, grid_samples):
        rows = figure21(grid_samples)
        medium_xquery = next(r for r in rows
                             if r.level == "Medium" and r.engine == "xquery")
        assert medium_xquery.unavailable
        text = format_figure21(rows)
        assert "Figure 21" in text

    def test_very_low_is_cheapest_sql_level(self, grid_samples):
        rows = figure21(grid_samples)
        sql_rows = {r.level: r for r in rows if r.engine == "sql"}
        assert sql_rows["Very Low"].total.average == min(
            r.total.average for r in sql_rows.values()
        )


class TestWarmCold:
    def test_experiment(self, small_corpus):
        results = warm_cold_experiment(small_corpus, warm_repeats=2)
        assert {r.engine for r in results} == {"appel", "sql", "xquery"}
        text = format_warm_cold(results)
        assert "Cold" in text and "Warm" in text

    def test_database_engines_warm_up(self, small_corpus):
        """The first SQL/XQuery match pays one-time costs the steady
        state does not (the paper's warm/cold distinction)."""
        results = warm_cold_experiment(small_corpus, warm_repeats=3)
        by_engine = {r.engine: r for r in results}
        assert by_engine["sql"].delta_seconds > 0
        assert by_engine["xquery"].delta_seconds > 0


class TestAblation:
    def test_augmentation_dominates(self, small_corpus):
        """Section 6.3.2: 'this augmentation accounts for most of the
        difference in performance.'"""
        result = ablation_experiment(small_corpus)
        assert result.native_full.average \
            > result.native_no_augment.average
        assert result.native_full.average > result.native_prepared.average
        assert result.augmentation_share > 0.5
        assert "Ablation" in format_ablation(result)

    def test_optimized_schema_beats_generic(self, small_corpus):
        result = ablation_experiment(small_corpus)
        assert result.sql_optimized.average < result.sql_generic.average
