"""APPEL -> SQL translation (Figure 11 generic, Figure 15 optimized)."""

import pytest

from repro.appel.model import expression, rule, ruleset
from repro.errors import TranslationError
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    applicable_policy_literal,
    evaluate_ruleset,
)


def _optimized_result(policy, rs):
    store = PolicyStore()
    pid = store.install_policy(policy).policy_id
    translated = OptimizedSqlTranslator().translate_ruleset(
        rs, applicable_policy_literal(pid))
    return evaluate_ruleset(store.db, translated)


def _generic_result(policy, rs):
    store = GenericPolicyStore()
    pid = store.install_policy(policy)
    translated = GenericSqlTranslator().translate_ruleset(
        rs, applicable_policy_literal(pid))
    return evaluate_ruleset(store.db, translated)


class TestGeneratedShape:
    """The structural fingerprints of Figures 13 and 15."""

    def test_generic_translation_has_figure13_structure(self,
                                                        jane_simplified):
        sql = GenericSqlTranslator().translate_ruleset(
            jane_simplified, applicable_policy_literal(1)).rules[0].sql
        assert sql.startswith("SELECT 'block' AS behavior")
        # One-table-per-element: value tables queried directly.
        assert "FROM admin" in sql
        assert "FROM contact" in sql
        assert "contact.required = 'always'" in sql
        # Chained-key joins of Figure 13.
        assert "purpose.statement_id = statement.statement_id" in sql
        assert "contact.purpose_id = purpose.purpose_id" in sql

    def test_optimized_translation_has_figure15_structure(self,
                                                          jane_simplified):
        sql = OptimizedSqlTranslator().translate_ruleset(
            jane_simplified, applicable_policy_literal(1)).rules[0].sql
        # The two value subqueries are merged into one over Purpose.
        assert sql.count("FROM purpose") == 1
        assert "purpose = 'admin'" in sql
        assert "purpose = 'contact'" in sql
        assert "purpose.required = 'always'" in sql
        # No per-value tables in the optimized schema.
        assert "FROM admin" not in sql

    def test_optimized_fewer_subqueries_than_generic(self, jane):
        generic = GenericSqlTranslator().translate_ruleset(
            jane, applicable_policy_literal(1))
        optimized = OptimizedSqlTranslator().translate_ruleset(
            jane, applicable_policy_literal(1))
        count = lambda tr: sum(r.sql.count("EXISTS") for r in tr.rules)
        assert count(optimized) < count(generic)

    def test_catch_all_rule_translates_to_trivial_query(self, jane):
        translated = OptimizedSqlTranslator().translate_ruleset(
            jane, applicable_policy_literal(1))
        assert translated.rules[2].sql.rstrip().endswith("WHERE 1")

    def test_behavior_literal_escaped(self):
        rs = ruleset(rule("it's-complicated"))
        sql = OptimizedSqlTranslator().translate_ruleset(
            rs, applicable_policy_literal(1)).rules[0].sql
        assert "'it''s-complicated'" in sql


class TestPaperScenarios:
    """Both translators must replay Section 2.2 exactly."""

    @pytest.mark.parametrize("runner", [_optimized_result, _generic_result])
    def test_volga_conforms(self, runner, volga, jane):
        assert runner(volga, jane) == ("request", 2)

    @pytest.mark.parametrize("runner", [_optimized_result, _generic_result])
    def test_no_optin_blocks(self, runner, jane):
        from repro.corpus.volga import VOLGA_POLICY_NO_OPTIN_XML
        from repro.p3p.parser import parse_policy

        policy = parse_policy(VOLGA_POLICY_NO_OPTIN_XML)
        assert runner(policy, jane) == ("block", 0)

    @pytest.mark.parametrize("runner", [_optimized_result, _generic_result])
    def test_unrelated_blocks(self, runner, jane):
        from repro.corpus.volga import VOLGA_POLICY_UNRELATED_XML
        from repro.p3p.parser import parse_policy

        policy = parse_policy(VOLGA_POLICY_UNRELATED_XML)
        assert runner(policy, jane) == ("block", 1)


class TestSpecialElements:
    """Folded elements of the optimized schema."""

    def _block_rule(self, *exprs):
        return ruleset(rule("block", expression("POLICY", *exprs)),
                       rule("request"))

    def test_access_value(self, volga):
        rs = self._block_rule(
            expression("ACCESS", expression("contact-and-other")))
        assert _optimized_result(volga, rs) == ("block", 0)
        rs2 = self._block_rule(expression("ACCESS", expression("none")))
        assert _optimized_result(volga, rs2) == ("request", 1)

    def test_retention_value(self, volga):
        rs = self._block_rule(
            expression("STATEMENT",
                       expression("RETENTION",
                                  expression("business-practices"))))
        assert _optimized_result(volga, rs) == ("block", 0)

    def test_consequence_presence(self, volga):
        rs = self._block_rule(
            expression("STATEMENT", expression("CONSEQUENCE")))
        assert _optimized_result(volga, rs) == ("block", 0)

    def test_entity_presence(self, volga):
        rs = self._block_rule(expression("ENTITY"))
        assert _optimized_result(volga, rs) == ("block", 0)

    def test_categories_from_base_expansion(self, volga):
        rs = self._block_rule(
            expression("STATEMENT",
                       expression("DATA-GROUP",
                                  expression("DATA",
                                             expression("CATEGORIES",
                                                        expression(
                                                            "physical"))))))
        assert _optimized_result(volga, rs) == ("block", 0)

    def test_data_ref_attribute(self, volga):
        rs = self._block_rule(
            expression("STATEMENT",
                       expression("DATA-GROUP",
                                  expression("DATA", ref="#user.name"))))
        assert _optimized_result(volga, rs) == ("block", 0)

    def test_disputes_missing_non_or(self, volga):
        # Volga has no DISPUTES-GROUP; non-or means "no disputes" but the
        # element itself must exist... so it never fires on Volga.
        rs = self._block_rule(
            expression("DISPUTES-GROUP", connective="non-or"))
        behavior, _ = _optimized_result(volga, rs)
        assert behavior == "request"


class TestTranslationErrors:
    def test_unknown_attribute_never_matches(self, volga):
        """STATEMENT carries no 'mood'; the pattern is unsatisfiable, not
        an error (the native engine quietly fails to match it too)."""
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT", mood="angry"))),
                     rule("request"))
        assert _optimized_result(volga, rs) == ("request", 1)
        assert _generic_result(volga, rs) == ("request", 1)

    def test_entity_navigation_rejected_by_optimized(self):
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("ENTITY",
                                                expression("DATA-GROUP")))),
                     rule("request"))
        with pytest.raises(TranslationError):
            OptimizedSqlTranslator().translate_ruleset(
                rs, applicable_policy_literal(1))

    def test_data_group_base_attribute_never_matches(self, volga):
        # Canonical storage merges data groups and drops 'base'.
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT",
                                                expression("DATA-GROUP",
                                                           base="#x")))),
                     rule("request"))
        assert _optimized_result(volga, rs) == ("request", 1)

    def test_required_on_current_never_matches(self, volga):
        # P3P forbids 'required' on <current/>; a pattern demanding it
        # cannot match even though current is present.
        rs = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression(
                                                      "current",
                                                      required="always"))))),
            rule("request"),
        )
        assert _optimized_result(volga, rs) == ("request", 1)
        assert _generic_result(volga, rs) == ("request", 1)

    def test_unknown_top_level_element_translates_to_false(self, volga):
        # A rule body whose root isn't POLICY can never match; the
        # translation is FALSE, not an error (negated connectives need it).
        rs = ruleset(rule("block", expression("STATEMENT")),
                     rule("request"))
        assert _generic_result(volga, rs) == ("request", 1)
        assert _optimized_result(volga, rs) == ("request", 1)


class TestImpossiblePatterns:
    """Patterns that can never match translate to FALSE, not errors,
    so negated connectives still work."""

    def test_impossible_child_under_or_is_false(self, volga):
        rs = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("current"),
                                                  # RECIPIENT value inside
                                                  # PURPOSE can never match
                                                  expression("ours"),
                                                  connective="or")))),
            rule("request"),
        )
        assert _optimized_result(volga, rs) == ("block", 0)
        assert _generic_result(volga, rs) == ("block", 0)

    def test_impossible_child_under_non_or_is_true(self, volga):
        rs = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("ours"),
                                                  connective="non-or")))),
            rule("request"),
        )
        # PURPOSE exists and contains no 'ours' (it can't) -> non-or true.
        assert _optimized_result(volga, rs) == ("block", 0)
        assert _generic_result(volga, rs) == ("block", 0)
