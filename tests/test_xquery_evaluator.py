"""Mini XQuery engine: native evaluation over XML policy views."""

import pytest

from repro import xmlutil
from repro.xquery.evaluator import evaluate_condition, evaluate_query
from repro.xquery.parser import parse_condition, parse_query

_DOC = """
<POLICY name="shop">
  <STATEMENT>
    <PURPOSE><current/><contact required="opt-in"/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
  </STATEMENT>
  <STATEMENT>
    <PURPOSE><telemarketing/></PURPOSE>
  </STATEMENT>
</POLICY>
"""


@pytest.fixture()
def root():
    return xmlutil.parse_string(_DOC)


def _holds(condition: str, context) -> bool:
    return evaluate_condition(parse_condition(condition), context)


class TestPathExistence:
    def test_child_step(self, root):
        assert _holds("STATEMENT", root)
        assert not _holds("DISPUTES-GROUP", root)

    def test_nested_predicates(self, root):
        assert _holds("STATEMENT[PURPOSE[current]]", root)
        assert not _holds("STATEMENT[PURPOSE[admin]]", root)

    def test_existential_over_siblings(self, root):
        # The telemarketing purpose is in the second statement only.
        assert _holds("STATEMENT[PURPOSE[telemarketing]]", root)
        # No single statement has both current and telemarketing.
        assert not _holds(
            "STATEMENT[PURPOSE[current AND telemarketing]]", root)

    def test_wildcard_step(self, root):
        statement = list(root)[0]
        assert _holds("*", statement)
        assert _holds("*[self::PURPOSE]", statement)
        assert not _holds("*[self::DATA-GROUP]", statement)


class TestBooleans:
    def test_and_or_not(self, root):
        assert _holds("STATEMENT AND POLICY or STATEMENT", root) or True
        assert _holds("STATEMENT[PURPOSE[current OR admin]]", root)
        assert _holds("not(DISPUTES-GROUP)", root)
        assert not _holds("not(STATEMENT)", root)

    def test_exactness_idiom(self, root):
        statement = list(root)[1]  # only has PURPOSE
        assert _holds("not(*[not(self::PURPOSE)])", statement)
        first = list(root)[0]      # has PURPOSE/RECIPIENT/RETENTION
        assert not _holds("not(*[not(self::PURPOSE)])", first)


class TestAttributes:
    def test_explicit_attribute(self, root):
        assert _holds('STATEMENT[PURPOSE[contact[@required = "opt-in"]]]',
                      root)
        assert not _holds(
            'STATEMENT[PURPOSE[contact[@required = "always"]]]', root)

    def test_default_resolution(self, root):
        # <telemarketing/> carries no required attribute; the P3P default
        # "always" applies (the paper's Section 2.2 subtlety).
        assert _holds(
            'STATEMENT[PURPOSE[telemarketing[@required = "always"]]]', root)

    def test_inequality_requires_value(self, root):
        assert _holds('STATEMENT[PURPOSE[contact[@required != "always"]]]',
                      root)
        # @nonexistent != "x" is false (no value to compare).
        assert not _holds('STATEMENT[@nonexistent != "x"]', root)

    def test_policy_name_attribute(self, root):
        assert _holds('self::POLICY AND @name = "shop"', root)


class TestQueries:
    def test_then_branch(self, root):
        query = parse_query(
            'if (document("p")[POLICY[STATEMENT[PURPOSE[telemarketing]]]])'
            " then <block/>"
        )
        assert evaluate_query(query, root) == "block"

    def test_no_match_returns_none(self, root):
        query = parse_query(
            'if (document("p")[POLICY[TEST]]) then <block/>'
        )
        assert evaluate_query(query, root) is None

    def test_else_branch(self, root):
        query = parse_query(
            'if (document("p")[POLICY[TEST]]) then <block/> else <request/>'
        )
        assert evaluate_query(query, root) == "request"

    def test_unconditional_document(self, root):
        query = parse_query('if (document("p")) then <request/>')
        assert evaluate_query(query, root) == "request"
