"""Stateful property test: the versioned policy store as a state machine.

hypothesis drives random interleavings of install / rollback / lookup on
:class:`VersionedPolicyStore` against a pure-Python model, pinning the
invariants the PolicyServer relies on (exactly one active version per
(name, site); lookups return the active version; rollback inverts install).
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.errors import StorageError, UnknownPolicyError
from repro.p3p.model import Policy, PurposeValue, RecipientValue, Statement
from repro.storage.versioning import VersionedPolicyStore

_NAMES = ("alpha", "beta")
_RETENTIONS = ("no-retention", "stated-purpose", "indefinitely")


def _policy(name: str, retention: str) -> Policy:
    return Policy(
        name=name,
        discuri=f"http://{name}.example.com/p",
        statements=(
            Statement(
                purposes=(PurposeValue("current"),),
                recipients=(RecipientValue("ours"),),
                retention=retention,
            ),
        ),
    )


class VersionStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = VersionedPolicyStore()
        # model: name -> list of retentions (the version payloads), plus
        # the index of the active version.
        self.versions: dict[str, list[str]] = {}
        self.active: dict[str, int] = {}

    @rule(name=st.sampled_from(_NAMES),
          retention=st.sampled_from(_RETENTIONS))
    def install(self, name, retention):
        self.store.install(_policy(name, retention))
        self.versions.setdefault(name, []).append(retention)
        self.active[name] = len(self.versions[name]) - 1

    @precondition(lambda self: any(
        len(v) >= 2 for v in self.versions.values()))
    @rule(data=st.data())
    def rollback(self, data):
        candidates = [name for name, v in self.versions.items()
                      if len(v) >= 2]
        name = data.draw(st.sampled_from(candidates))
        try:
            self.store.rollback(name)
        except StorageError:
            # Rolling back twice in a row re-activates an even older
            # version only via the history API; the store refuses when
            # the newest is already inactive — mirror by not changing
            # the model.
            return
        self.active[name] = len(self.versions[name]) - 2

    @rule(name=st.sampled_from(_NAMES))
    def lookup_unknown_or_known(self, name):
        if name not in self.versions:
            try:
                self.store.active_policy_id(name)
                raise AssertionError("expected UnknownPolicyError")
            except UnknownPolicyError:
                pass

    @invariant()
    def active_version_matches_model(self):
        for name, versions in self.versions.items():
            expected_retention = versions[self.active[name]]
            policy = self.store.active_policy(name)
            assert policy.statements[0].retention == expected_retention

    @invariant()
    def exactly_one_active_per_name(self):
        for name in self.versions:
            actives = [v for v in self.store.history(name) if v.active]
            assert len(actives) == 1

    @invariant()
    def history_length_matches_installs(self):
        for name, versions in self.versions.items():
            assert len(self.store.history(name)) == len(versions)


VersionStoreMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None,
)
TestVersionStoreMachine = VersionStoreMachine.TestCase
