"""Rule reachability under first-rule-wins, differentially confirmed.

The strong claim of :mod:`repro.analysis.rules` is that every
``unreachable-rule`` verdict is *provable*: the native APPEL engine never
selects a flagged rule on any conforming policy.  The tests here check
both halves — the analyzer flags what it should on synthetic rulesets,
and over the full 29-policy corpus at all five JRC preference levels no
flagged rule ever fires (zero false "unreachable" verdicts).
"""

from repro.analysis import (
    analyze_ruleset,
    differential_reachability,
    rule_always_fires,
    rule_can_fire,
    rule_subsumes,
    unreachable_rule_indexes,
)
from repro.analysis.rules import expression_can_match, expression_subsumes
from repro.appel.model import expression, rule, ruleset


def _pattern(*purpose_values):
    """POLICY/STATEMENT/PURPOSE wrapper around purpose-value patterns."""
    return expression(
        "POLICY",
        expression("STATEMENT",
                   expression("PURPOSE", *purpose_values, connective="or")),
    )


class TestCanFire:
    def test_catch_all_fires(self):
        assert rule_can_fire(rule("request"))

    def test_realistic_pattern_fires(self):
        assert rule_can_fire(rule("block", _pattern(
            expression("telemarketing"))))

    def test_misspelled_element_is_unsatisfiable(self):
        dead = rule("block", expression(
            "POLICY", expression("STATEMNT")))
        assert not rule_can_fire(dead)

    def test_element_under_wrong_parent_is_unsatisfiable(self):
        # PURPOSE directly under POLICY never occurs in a conforming doc.
        assert not rule_can_fire(rule("block", expression(
            "POLICY", expression("PURPOSE"))))

    def test_attribute_outside_domain_is_unsatisfiable(self):
        assert not rule_can_fire(rule("block", _pattern(
            expression("telemarketing", required="sometimes"))))

    def test_root_must_be_policy(self):
        assert not expression_can_match(expression("STATEMENT"), "#root")

    def test_multi_valued_conjunction_is_satisfiable(self):
        # A STATEMENT may carry several purposes at once.
        many = expression(
            "POLICY",
            expression("STATEMENT", expression(
                "PURPOSE", expression("contact"), expression("admin"),
                connective="and")),
        )
        assert rule_can_fire(rule("block", many))

    def test_single_valued_conjunction_is_contradictory(self):
        # RETENTION holds exactly one value; demanding two conjunctively
        # can never match.
        contradictory = expression(
            "POLICY",
            expression("STATEMENT", expression(
                "RETENTION", expression("indefinitely"),
                expression("no-retention"), connective="and")),
        )
        assert not rule_can_fire(rule("block", contradictory))

    def test_conflicting_attribute_pins_are_contradictory(self):
        conflicted = _pattern(
            expression("contact", required="always"),
            expression("contact", required="opt-in"),
        )
        both = expression(
            "POLICY",
            expression("STATEMENT", expression(
                "PURPOSE",
                expression("contact", required="always"),
                expression("contact", required="opt-in"),
                connective="and")),
        )
        assert not rule_can_fire(rule("block", both))
        # Under "or" the same two patterns are fine.
        assert rule_can_fire(rule("block", conflicted))


class TestAlwaysFires:
    def test_catch_all(self):
        assert rule_always_fires(rule("request"))

    def test_non_and_over_dead_pattern(self):
        assert rule_always_fires(rule(
            "limited", expression("BOGUS"), connective="non-and"))

    def test_non_or_over_only_dead_patterns(self):
        assert rule_always_fires(rule(
            "limited", expression("BOGUS"), expression("ALSO_BOGUS"),
            connective="non-or"))

    def test_ordinary_conditional_rule_does_not(self):
        assert not rule_always_fires(rule("block", _pattern(
            expression("telemarketing"))))


class TestSubsumption:
    def test_fewer_attributes_subsume_more(self):
        general = expression("telemarketing")
        specific = expression("telemarketing", required="opt-in")
        assert expression_subsumes(general, specific)
        assert not expression_subsumes(specific, general)

    def test_identical_rules(self):
        r = rule("block", _pattern(expression("telemarketing")))
        assert rule_subsumes(r, r)

    def test_general_rule_shadows_specific(self):
        general = rule("block", _pattern(expression("telemarketing")))
        specific = rule("request", _pattern(
            expression("telemarketing", required="opt-in")))
        assert rule_subsumes(general, specific)
        assert not rule_subsumes(specific, general)

    def test_catch_all_subsumes_everything(self):
        conditional = rule("block", _pattern(expression("telemarketing")))
        assert rule_subsumes(rule("request"), conditional)
        assert not rule_subsumes(conditional, rule("request"))

    def test_wider_disjunction_subsumes_narrower(self):
        wide = rule("block", _pattern(expression("telemarketing"),
                                      expression("contact")))
        narrow = rule("request", _pattern(expression("contact")))
        assert rule_subsumes(wide, narrow)
        assert not rule_subsumes(narrow, wide)


class TestAnalyzeRuleset:
    def test_rules_after_catch_all_are_unreachable(self):
        rs = ruleset(rule("request"),
                     rule("block", _pattern(expression("telemarketing"))))
        assert unreachable_rule_indexes(rs) == frozenset({1})

    def test_unsatisfiable_body_flagged(self):
        rs = ruleset(rule("block", expression(
            "POLICY", expression("STATEMNT"))), rule("request"))
        assert unreachable_rule_indexes(rs) == frozenset({0})

    def test_duplicate_rule_flagged_as_duplicate(self):
        body = _pattern(expression("telemarketing"))
        rs = ruleset(rule("block", body), rule("request", body),
                     rule("request"))
        findings = analyze_ruleset(rs)
        dead = [f for f in findings if f.code == "unreachable-rule"]
        assert [f.rule_index for f in dead] == [1]
        assert "duplicates" in dead[0].message

    def test_subsumed_rule_flagged(self):
        rs = ruleset(
            rule("block", _pattern(expression("telemarketing"))),
            rule("request", _pattern(
                expression("telemarketing", required="opt-in"))),
            rule("request"),
        )
        assert unreachable_rule_indexes(rs) == frozenset({1})

    def test_effectively_unconditional_warns_and_shadows(self):
        rs = ruleset(
            rule("limited", expression("BOGUS"), connective="non-and"),
            rule("request"),
        )
        findings = analyze_ruleset(rs)
        assert any(f.code == "effectively-unconditional"
                   and f.rule_index == 0 for f in findings)
        assert unreachable_rule_indexes(rs) == frozenset({1})

    def test_dead_disjunct_warns_without_killing_the_rule(self):
        rs = ruleset(
            rule("block", _pattern(expression("telemarketing"),
                                   expression("TELEMARKETING"))),
            rule("request"),
        )
        findings = analyze_ruleset(rs)
        assert any(f.code == "dead-branch" for f in findings)
        assert unreachable_rule_indexes(rs) == frozenset()

    def test_unreachable_rule_does_not_shadow_later_rules(self):
        # A dead rule subsumes nothing: later rules stay live.
        rs = ruleset(
            rule("block", expression("POLICY", expression("STATEMNT"))),
            rule("block", _pattern(expression("telemarketing"))),
            rule("request"),
        )
        assert unreachable_rule_indexes(rs) == frozenset({0})

    def test_jrc_suite_is_clean(self, suite):
        for level, rs in suite.items():
            assert unreachable_rule_indexes(rs) == frozenset(), level

    def test_jane_is_clean(self, jane):
        assert unreachable_rule_indexes(jane) == frozenset()


class TestDifferential:
    def test_full_corpus_suite_has_zero_false_verdicts(self, corpus,
                                                       suite):
        """Acceptance gate: 29 policies x 5 JRC levels, every flagged
        rule confirmed never to fire by the native engine."""
        for level, rs in suite.items():
            report = differential_reachability(rs, corpus)
            assert report.policies_checked == len(corpus)
            assert report.ok, (level, report.violations)

    def test_flagged_rules_never_fire_when_present(self, corpus, suite):
        """Poison each level with a duplicate of its first rule: the
        duplicate is flagged, and the engine never selects it."""
        for level, rs in suite.items():
            first = rs.rules[0]
            poisoned = ruleset(*rs.rules[:1],
                               rule(first.behavior, *first.expressions,
                                    connective=first.connective),
                               *rs.rules[1:])
            flagged = unreachable_rule_indexes(poisoned)
            assert 1 in flagged, level
            report = differential_reachability(poisoned, corpus)
            assert report.ok, (level, report.violations)

    def test_violation_detected_for_falsely_flagged_rule(self, corpus,
                                                         suite):
        """Sanity check of the cross-check itself: claiming a live rule
        is unreachable must surface as a violation."""
        rs = suite["Very Low"]  # single catch-all rule: always fires
        report = differential_reachability(rs, corpus, flagged=[0])
        assert not report.ok
        assert report.violations
        assert all(index == 0 for _, index in report.violations)

    def test_fired_census_reports_native_selections(self, corpus, suite):
        report = differential_reachability(suite["Medium"], corpus)
        assert sum(count for _, count in report.fired) <= len(corpus)
        assert report.fired  # something fired somewhere
