"""The SQL contract checker: schema catalogs, per-rule known-bad
fixtures, the read-only replica write-set rule, and the full
corpus-wide enumeration gate."""

import pytest

from repro.analysis import (
    StatementContract,
    check_contracts,
    check_statement,
    contract_report,
    engine_contracts,
    generic_catalog,
    optimized_catalog,
    static_contracts,
)
from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import jrc_suite


@pytest.fixture(scope="module")
def optimized_db():
    return optimized_catalog()


@pytest.fixture(scope="module")
def generic_db():
    return generic_catalog()


def codes(findings):
    return [finding.code for finding in findings]


class TestCatalogs:
    def test_optimized_catalog_carries_every_tier_table(self, optimized_db):
        tables = set(optimized_db.table_names())
        for table in ("policy", "statement", "purpose", "recipient",
                      "data", "category", "meta", "policyref", "include",
                      "exclude", "check_log", "decision_cache"):
            assert table in tables

    def test_generic_catalog_carries_node_tables(self, generic_db):
        tables = set(generic_db.table_names())
        for table in ("policy", "statement", "purpose", "recipient",
                      "data_group", "data", "categories"):
            assert table in tables

    def test_catalogs_are_separate(self, optimized_db, generic_db):
        # The two schema families share table names with different
        # shapes — the whole reason the structural backend needs a
        # sidecar database.
        optimized = set(optimized_db.table_columns("statement"))
        generic = set(generic_db.table_columns("statement"))
        assert optimized != generic


class TestRulesFire:
    """Each contract rule proves itself on a seeded known-bad fixture."""

    def test_unknown_table(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", sql="SELECT * FROM no_such_table"))
        assert codes(findings) == ["unknown-table"]

    def test_unknown_column(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", sql="SELECT no_such_column FROM policy"))
        assert codes(findings) == ["unknown-column"]

    def test_sql_prepare_error(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", sql="SELEC syntax error"))
        assert codes(findings) == ["sql-prepare-error"]

    def test_bind_arity(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", binds=1,
            sql="SELECT policy_id FROM policy WHERE name = ? AND site = ?"))
        assert codes(findings) == ["bind-arity"]

    def test_placeholder_inside_literal_not_counted(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", binds=1,
            sql="SELECT '?' FROM policy WHERE policy_id = ?"))
        assert findings == []

    def test_illegal_write_on_read_only_tier(self, optimized_db):
        # The seeded replica-write fixture: a statement a replica must
        # never run — its contract carries the empty write-set.
        findings = check_statement(optimized_db, StatementContract(
            where="replica/seeded-write", binds=2,
            sql="INSERT INTO decision_cache (pref_hash, policy_id, "
                "policy_version, behavior, rule_index, computed_at) "
                "VALUES (?, 1, 1, 'block', 0, ?)"))
        assert codes(findings) == ["illegal-write"]
        assert "read-only tier" in findings[0].message

    def test_illegal_write_outside_declared_write_set(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", binds=1,
            sql="DELETE FROM check_log WHERE check_id = ?",
            writes=frozenset({"decision_cache"})))
        assert codes(findings) == ["illegal-write"]

    def test_write_inside_write_set_passes(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", binds=1,
            sql="DELETE FROM check_log WHERE check_id = ?",
            writes=frozenset({"check_log"})))
        assert findings == []

    def test_unindexed_hot_predicate(self, optimized_db):
        # `consequence` has no index: demanding hot coverage flags it.
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", binds=1,
            sql="SELECT * FROM statement WHERE consequence = ?",
            hot_tables=frozenset({"statement"})))
        assert codes(findings) == ["unindexed-hot-predicate"]
        assert findings[0].severity == "warning"

    def test_indexed_hot_predicate_passes(self, optimized_db):
        findings = check_statement(optimized_db, StatementContract(
            where="fixture", binds=1,
            sql="SELECT * FROM statement WHERE policy_id = ?",
            hot_tables=frozenset({"statement"})))
        assert findings == []


class TestStaticRegistry:
    def test_covers_every_tier(self):
        wheres = {contract.where for contract in static_contracts()}
        for expected in ("cache/lookup", "cache/insert",
                         "server/check-log-insert",
                         "server/retarget-policyref",
                         "refstore/insert-meta",
                         "refstore/applicable-policy[uri]",
                         "refstore/applicable-policy[cookie]"):
            assert expected in wheres

    def test_read_paths_declare_empty_write_sets(self):
        by_where = {c.where: c for c in static_contracts()}
        for read_path in ("cache/lookup", "cache/match",
                          "server/policy-version",
                          "server/active-policies",
                          "refstore/applicable-policy[uri]"):
            assert by_where[read_path].writes == frozenset()

    def test_registry_is_clean(self):
        assert check_contracts(static_contracts()) == []


class TestEngineEnumeration:
    @pytest.fixture(scope="class")
    def enumerated(self):
        policies = fortune_corpus()[:3]
        preferences = jrc_suite()
        contracts, over_budget = engine_contracts(policies, preferences)
        return preferences, contracts, over_budget

    def test_every_engine_level_cell_covered(self, enumerated):
        """Acceptance: >= 1 statement per (engine/compiler x level)."""
        preferences, contracts, _ = enumerated
        wheres = [c.where for c in contracts]
        for level in preferences:
            for engine in ("plan", "bulk", "literal", "structural",
                           "xtable"):
                assert any(w.startswith(f"{level}/{engine}")
                           for w in wheres), (level, engine)

    def test_xtable_over_budget_rules_still_checked(self, enumerated):
        # The Figure 21 blank cell: at least one Medium-level XTABLE
        # rule exceeds the default complexity budget, but its SQL is
        # still enumerated and contract-checked.
        preferences, contracts, over_budget = enumerated
        assert over_budget >= 1
        medium = [c for c in contracts
                  if c.where.startswith("Medium/xtable")]
        assert medium

    def test_plan_contracts_declare_their_arity(self, enumerated):
        _, contracts, _ = enumerated
        plans = [c for c in contracts if "/plan" in c.where]
        assert plans
        for contract in plans:
            assert contract.binds is not None
            assert contract.probe is not None

    def test_enumerated_statements_are_clean(self, enumerated):
        _, contracts, _ = enumerated
        assert check_contracts(contracts) == []


class TestContractReport:
    def test_full_gate_is_clean(self):
        """Acceptance: zero unchecked statements, zero findings on the
        shipped engines against the shipped schema."""
        report = contract_report(fortune_corpus()[:3], jrc_suite())
        assert report.ok
        assert report.findings == ()
        sources = dict(report.per_source)
        for source in ("plan", "bulk", "literal", "structural", "xtable",
                       "cache", "server", "refstore"):
            assert sources.get(source, 0) >= 1, source
        assert report.statements_checked == sum(sources.values())
