"""Reference files: URI patterns, coverage, parse/serialize (Section 2.3)."""

import pytest

from repro.corpus.volga import VOLGA_REFERENCE_XML
from repro.errors import ReferenceFileError
from repro.p3p.reference import (
    PolicyRef,
    ReferenceFile,
    parse_reference_file,
    serialize_reference_file,
    uri_matches,
)


class TestUriMatching:
    @pytest.mark.parametrize("pattern,uri,expected", [
        ("/*", "/anything/at/all", True),
        ("/catalog/*", "/catalog/books/1", True),
        ("/catalog/*", "/cart", False),
        ("/exact.html", "/exact.html", True),
        ("/exact.html", "/exact.html?x=1", False),
        ("/a/*/c", "/a/b/c", True),
        ("/a/*/c", "/a/c", False),
        ("*", "", True),
        ("/images/*.png", "/images/logo.png", True),
        ("/images/*.png", "/images/logo.gif", False),
    ])
    def test_wildcards(self, pattern, uri, expected):
        assert uri_matches(pattern, uri) is expected

    def test_regex_metacharacters_are_literal(self):
        assert uri_matches("/a.b", "/a.b")
        assert not uri_matches("/a.b", "/aXb")
        assert not uri_matches("/a+b", "/ab")


class TestPolicyRef:
    def test_covers_include_minus_exclude(self):
        ref = PolicyRef(about="#main", includes=("/*",),
                        excludes=("/admin/*",))
        assert ref.covers("/shop")
        assert not ref.covers("/admin/panel")

    def test_no_include_covers_nothing(self):
        assert not PolicyRef(about="#main").covers("/x")

    def test_cookie_patterns_are_separate(self):
        ref = PolicyRef(about="#main", includes=("/pages/*",),
                        cookie_includes=("/*",))
        assert not ref.covers("/other")
        assert ref.covers_cookie("/other")

    def test_policy_name_from_fragment(self):
        assert PolicyRef(about="/w3c/p.xml#shop").policy_name == "shop"
        assert PolicyRef(about="bare-name").policy_name == "bare-name"


class TestReferenceFileLookup:
    def test_first_matching_ref_wins(self):
        reference = ReferenceFile(refs=(
            PolicyRef(about="#specific", includes=("/checkout/*",)),
            PolicyRef(about="#general", includes=("/*",)),
        ))
        assert reference.applicable_policy("/checkout/pay").about == \
            "#specific"
        assert reference.applicable_policy("/browse").about == "#general"

    def test_no_match_returns_none(self):
        reference = ReferenceFile(refs=(
            PolicyRef(about="#only", includes=("/a/*",)),
        ))
        assert reference.applicable_policy("/b") is None


class TestParsing:
    def test_volga_reference(self):
        reference = parse_reference_file(VOLGA_REFERENCE_XML)
        assert len(reference.refs) == 1
        assert reference.expiry == "86400"
        ref = reference.refs[0]
        assert ref.policy_name == "volga"
        assert ref.includes == ("/*",)
        assert ref.excludes == ("/legacy/*",)
        assert ref.cookie_includes == ("/*",)

    def test_meta_without_references_container(self):
        xml = (
            "<META><POLICY-REF about='#p'><INCLUDE>/*</INCLUDE>"
            "</POLICY-REF></META>"
        )
        reference = parse_reference_file(xml)
        assert reference.refs[0].about == "#p"

    def test_missing_about_raises(self):
        with pytest.raises(ReferenceFileError):
            parse_reference_file(
                "<META><POLICY-REF><INCLUDE>/*</INCLUDE></POLICY-REF></META>"
            )

    def test_no_meta_raises(self):
        with pytest.raises(ReferenceFileError):
            parse_reference_file("<NOT-A-REFERENCE/>")

    def test_malformed_xml_raises(self):
        with pytest.raises(ReferenceFileError):
            parse_reference_file("<META>")

    def test_serialize_roundtrip(self):
        reference = parse_reference_file(VOLGA_REFERENCE_XML)
        again = parse_reference_file(serialize_reference_file(reference))
        assert again == reference
