"""APPEL -> XQuery translation (Figure 17 / Figure 18)."""

import pytest

from repro.appel.model import expression, rule, ruleset
from repro.errors import TranslationError
from repro.translate.appel_to_xquery import XQueryTranslator
from repro.xquery.parser import parse_query


class TestFigure18Shape:
    def test_simplified_rule_translation(self, jane_simplified):
        xquery = XQueryTranslator().translate_ruleset(
            jane_simplified).rules[0].xquery
        # The Figure 18 fingerprints.
        assert xquery.startswith('if (document("applicable-policy")')
        assert xquery.endswith("then <block/>")
        assert "POLICY[" in xquery
        assert "STATEMENT[" in xquery
        assert "PURPOSE[" in xquery
        assert "admin" in xquery
        assert 'contact[@required = "always"]' in xquery
        assert " OR " in xquery

    def test_catch_all_rule(self, jane):
        xquery = XQueryTranslator().translate_ruleset(jane).rules[2].xquery
        assert xquery == 'if (document("applicable-policy")) then <request/>'

    def test_every_translation_parses(self, suite):
        translator = XQueryTranslator()
        for rs in suite.values():
            for translated in translator.translate_ruleset(rs).rules:
                parse_query(translated.xquery)  # must not raise

    def test_custom_document_uri(self, jane_simplified):
        translator = XQueryTranslator(document_uri="policy-42")
        xquery = translator.translate_rule(jane_simplified.rules[0])
        assert 'document("policy-42")' in xquery


class TestConnectiveRendering:
    def _xq(self, connective):
        rs = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("admin"),
                                                  expression("contact"),
                                                  connective=connective)))),
            rule("request"),
        )
        return XQueryTranslator().translate_ruleset(rs).rules[0].xquery

    def test_and(self):
        assert "admin AND contact" in self._xq("and")

    def test_or(self):
        assert "admin OR contact" in self._xq("or")

    def test_non_and(self):
        assert "not(admin AND contact)" in self._xq("non-and")

    def test_non_or(self):
        assert "not(admin OR contact)" in self._xq("non-or")

    def test_and_exact(self):
        xquery = self._xq("and-exact")
        assert "(admin AND contact) AND " in xquery
        assert "not(*[not(self::admin OR self::contact)])" in xquery

    def test_or_exact(self):
        xquery = self._xq("or-exact")
        assert "(admin OR contact) AND " in xquery
        assert "not(*[not(" in xquery


class TestAttributeRendering:
    def test_attribute_comparison(self):
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT",
                                                expression("DATA-GROUP",
                                                           expression(
                                                               "DATA",
                                                               ref="#user.name"))))),
                     rule("request"))
        xquery = XQueryTranslator().translate_ruleset(rs).rules[0].xquery
        assert 'DATA[@ref = "#user.name"]' in xquery

    def test_double_quote_in_value_rejected(self):
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT",
                                                expression("DATA-GROUP",
                                                           expression(
                                                               "DATA",
                                                               ref='bad"ref'))))))
        with pytest.raises(TranslationError):
            XQueryTranslator().translate_ruleset(rs)

    def test_multiple_attributes_joined_with_and(self):
        rs = ruleset(rule("block",
                          expression("POLICY",
                                     expression("STATEMENT",
                                                expression("DATA-GROUP",
                                                           expression(
                                                               "DATA",
                                                               ref="#x",
                                                               optional="yes"))))),
                     rule("request"))
        xquery = XQueryTranslator().translate_ruleset(rs).rules[0].xquery
        assert '@optional = "yes" AND @ref = "#x"' in xquery
