"""ConnectionPool: WAL mode, per-thread readers, serialized writes."""

import threading

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.pool import ConnectionPool


@pytest.fixture()
def disk_pool(tmp_path):
    pool = ConnectionPool(str(tmp_path / "pool.db"))
    yield pool
    pool.close()


class TestModes:
    def test_on_disk_pool_runs_in_wal_mode(self, disk_pool):
        assert disk_pool.wal
        with disk_pool.read() as db:
            assert db.scalar("PRAGMA journal_mode") == "wal"

    def test_memory_pool_has_no_wal(self):
        with ConnectionPool() as pool:
            assert not pool.wal

    def test_adopted_database_keeps_its_journal_mode(self, tmp_path):
        db = Database(str(tmp_path / "legacy.db"))
        with ConnectionPool(db) as pool:
            assert pool.writer is db
            assert not pool.wal
            assert db.scalar("PRAGMA journal_mode") == "delete"

    def test_adopted_database_can_opt_into_wal(self, tmp_path):
        db = Database(str(tmp_path / "upgraded.db"))
        with ConnectionPool(db, wal=True) as pool:
            assert pool.wal


class TestReaders:
    def test_memory_reads_go_through_the_writer(self):
        with ConnectionPool() as pool:
            with pool.read() as db:
                assert db is pool.writer
            assert pool.reader_count == 0

    def test_each_thread_gets_its_own_reader(self, disk_pool):
        with disk_pool.write() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.commit()

        seen = {}
        release = threading.Event()

        def observe(name):
            with disk_pool.read() as first, disk_pool.read() as second:
                assert first is second  # stable within a thread
                seen[name] = id(first)
            release.wait(timeout=5)

        threads = [threading.Thread(target=observe, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        while len(seen) < 3:
            pass
        assert disk_pool.reader_count == 3  # owners still alive
        release.set()
        for thread in threads:
            thread.join()
        assert len(set(seen.values())) == 3
        # Dead threads cannot use their readers; the pool reaps them.
        assert disk_pool.reader_count == 0

    def test_reader_churn_stays_bounded(self, disk_pool):
        """200 short-lived connections must not leak 200 readers."""
        with disk_pool.write() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.execute("INSERT INTO t VALUES (1)")
            db.commit()

        def one_check():
            with disk_pool.read() as db:
                assert db.scalar("SELECT x FROM t") == 1

        for _ in range(200):
            thread = threading.Thread(target=one_check)
            thread.start()
            thread.join()
        assert disk_pool.reader_count <= 1
        # Reaped readers keep contributing to pool-wide statistics.
        assert disk_pool.stats().statements >= 200

    def test_readers_see_committed_writes(self, disk_pool):
        with disk_pool.write() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.execute("INSERT INTO t VALUES (7)")
            db.commit()
        with disk_pool.read() as db:
            assert db.scalar("SELECT x FROM t") == 7

    def test_connect_hook_reaches_existing_and_future_readers(self,
                                                              disk_pool):
        with disk_pool.read() as db:
            existing = db
        disk_pool.add_connect_hook(
            lambda d: d._connection.create_function("forty_two", 0,
                                                    lambda: 42)
        )
        assert existing.scalar("SELECT forty_two()") == 42
        assert disk_pool.writer.scalar("SELECT forty_two()") == 42

        result = {}

        def fresh_thread():
            with disk_pool.read() as db:
                result["value"] = db.scalar("SELECT forty_two()")

        thread = threading.Thread(target=fresh_thread)
        thread.start()
        thread.join()
        assert result["value"] == 42


class TestWriterSerialization:
    def test_write_lock_makes_read_modify_write_atomic(self, disk_pool):
        with disk_pool.write() as db:
            db.execute("CREATE TABLE counter (n INTEGER)")
            db.execute("INSERT INTO counter VALUES (0)")
            db.commit()

        def bump():
            for _ in range(25):
                with disk_pool.write() as db:
                    current = db.scalar("SELECT n FROM counter")
                    db.execute("UPDATE counter SET n = ?", (current + 1,))
                    db.commit()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with disk_pool.read() as db:
            assert db.scalar("SELECT n FROM counter") == 100

    def test_write_lock_is_reentrant(self, disk_pool):
        with disk_pool.write():
            with disk_pool.write() as db:
                db.execute("SELECT 1")


class TestStats:
    def test_stats_aggregate_across_connections(self, disk_pool):
        with disk_pool.write() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.commit()
        before = disk_pool.stats().statements
        with disk_pool.read() as db:
            db.query("SELECT * FROM t")
        assert disk_pool.stats().statements == before + 1


class TestLifecycle:
    def test_closed_pool_refuses_work(self, tmp_path):
        pool = ConnectionPool(str(tmp_path / "gone.db"))
        with pool.read():
            pass  # cache a reader on this thread before closing
        pool.close()
        with pytest.raises(StorageError):
            with pool.write():
                pass
        with pytest.raises(StorageError):
            with pool.read():
                pass

    def test_close_is_idempotent(self, disk_pool):
        disk_pool.close()
        disk_pool.close()
