"""Property tests for the extension modules (diff, SQL preferences,
templates) — they must slot into the same semantic frame as the core."""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.appel.engine import AppelEngine
from repro.appel.templates import TEMPLATES, compose_preference
from repro.p3p.diff import diff_policies
from repro.p3p.model import PurposeValue
from repro.storage import Database, PolicyStore
from repro.translate.sql_preferences import compile_preference

from tests.test_property import policies, rulesets

_SETTINGS = settings(max_examples=30, deadline=None)


class TestDiffProperties:
    @_SETTINGS
    @given(policy=policies())
    def test_self_diff_is_empty(self, policy):
        assert diff_policies(policy, policy).empty

    @_SETTINGS
    @given(policy=policies())
    def test_diff_detects_added_purpose(self, policy):
        # Add a purpose no statement can already have twice.
        statement = policy.statements[0]
        existing = set(statement.purpose_names())
        candidates = [name for name in
                      ("other-purpose", "historical", "telemarketing")
                      if name not in existing]
        if not candidates:
            return
        new_statement = replace(
            statement,
            purposes=statement.purposes
            + (PurposeValue(candidates[0]),),
        )
        changed = replace(
            policy,
            statements=(new_statement,) + policy.statements[1:],
        )
        diff = diff_policies(policy, changed)
        assert not diff.empty
        assert any(
            change.value == candidates[0] and change.change == "added"
            for statement_diff in diff.statement_diffs
            for change in statement_diff.value_changes
        )
        assert diff.tightens_privacy() is False
        # And the reverse direction is a pure tightening.
        assert diff_policies(changed, policy).tightens_privacy() is True

    @_SETTINGS
    @given(policy=policies())
    def test_diff_symmetry_of_emptiness(self, policy):
        aug = policy.augmented()
        # Augmentation only adds categories, which the diff (by design)
        # does not treat as a policy change at the value level unless the
        # data refs changed.
        diff = diff_policies(policy, aug)
        for statement_diff in diff.statement_diffs:
            assert not statement_diff.value_changes
            assert statement_diff.retention_change is None


class TestSqlPreferenceProperties:
    @_SETTINGS
    @given(policy=policies(), preference=rulesets())
    def test_compiled_preference_agrees_with_engine(self, policy,
                                                    preference):
        engine = AppelEngine()
        expected = engine.evaluate(policy, preference)

        store = PolicyStore(Database())
        pid = store.install_policy(policy).policy_id
        compiled = compile_preference(preference)
        behavior, index = compiled.evaluate(store.db, pid)
        assert (behavior, index) == \
            (expected.behavior, expected.rule_index)
        store.db.close()


class TestTemplateProperties:
    @_SETTINGS
    @given(
        policy=policies(),
        keys=st.lists(st.sampled_from(sorted(TEMPLATES)), min_size=1,
                      max_size=4, unique=True),
    )
    def test_template_compositions_agree_across_engines(self, policy,
                                                        keys):
        from repro.engines import SqlMatchEngine

        preference = compose_preference(keys)
        expected = AppelEngine().evaluate(policy, preference)
        sql = SqlMatchEngine()
        handle = sql.install(policy)
        outcome = sql.match(handle, preference)
        assert (outcome.behavior, outcome.rule_index) == \
            (expected.behavior, expected.rule_index)

    @_SETTINGS
    @given(keys=st.lists(st.sampled_from(sorted(TEMPLATES)), min_size=1,
                         max_size=9, unique=True))
    def test_compositions_always_decide(self, keys):
        """Template preferences end with a catch-all, so every policy
        gets a decision."""
        preference = compose_preference(keys)
        assert preference.has_catch_all()
        assert preference.rule_count() == len(keys) + 1
