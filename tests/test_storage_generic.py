"""Generic schema (Figure 8) and population algorithm (Figure 10)."""

import pytest

from repro.errors import UnknownPolicyError
from repro.storage.database import Database
from repro.storage.generic_schema import (
    GENERIC_TABLES,
    create_generic_schema,
    schema_ddl,
)
from repro.storage.generic_shredder import GenericPolicyStore


class TestSchemaShape:
    """Figure 8's rules, checked table by table."""

    def test_one_table_per_catalog_element(self):
        from repro.vocab import schema as p3p_schema

        assert set(GENERIC_TABLES) == set(p3p_schema.CATALOG)

    def test_data_table_matches_figure9(self):
        """Figure 9: the Data table has an id, the parent's key as foreign
        key, and the ref/optional attribute columns."""
        table = GENERIC_TABLES["DATA"]
        names = [c.name for c in table.columns]
        assert names == ["data_id", "data_group_id", "statement_id",
                         "policy_id", "ref", "optional"]
        assert table.primary_key == ("data_id", "data_group_id",
                                     "statement_id", "policy_id")

    def test_value_elements_have_tables(self):
        # Figure 13 queries FROM Admin and FROM Contact.
        assert GENERIC_TABLES["admin"].name == "admin"
        assert GENERIC_TABLES["contact"].name == "contact"
        assert "required" in [c.name for c in
                              GENERIC_TABLES["contact"].columns]

    def test_textual_elements_get_content_column(self):
        assert "content" in [c.name for c in
                             GENERIC_TABLES["CONSEQUENCE"].columns]

    def test_ddl_creates_everything(self):
        db = Database()
        create_generic_schema(db)
        assert len(db.table_names()) == len(GENERIC_TABLES)

    def test_ddl_text_mentions_primary_keys(self):
        assert schema_ddl().count("PRIMARY KEY") == len(GENERIC_TABLES)


class TestShredding:
    def test_volga_row_counts(self, volga):
        store = GenericPolicyStore()
        store.install_policy(volga)
        counts = store.row_counts()
        assert counts["policy"] == 1
        assert counts["statement"] == 2
        assert counts["purpose"] == 2
        assert counts["recipient"] == 2
        # Value rows: current; individual-decision; contact.
        assert counts["current"] == 1
        assert counts["individual_decision"] == 1
        assert counts["contact"] == 1
        assert counts["ours"] == 2       # both statements
        assert counts["data"] == 5

    def test_categories_expanded_at_shred_time(self, volga):
        store = GenericPolicyStore()
        store.install_policy(volga)
        counts = store.row_counts()
        # #user.name contributes physical+demographic via the base schema
        # even though the document carries no inline categories for it.
        assert counts["physical"] >= 1
        assert counts["demographic"] >= 1

    def test_attributes_stored_resolved(self, volga):
        store = GenericPolicyStore()
        store.install_policy(volga)
        required = store.db.scalar(
            "SELECT required FROM individual_decision"
        )
        assert required == "opt-in"
        # <current/> has no required attribute at all.
        assert "required" not in [
            c.name for c in GENERIC_TABLES["current"].columns
        ]

    def test_multiple_policies_get_distinct_ids(self, volga):
        store = GenericPolicyStore()
        first = store.install_policy(volga)
        second = store.install_policy(volga)
        assert first != second
        assert store.policy_ids() == [first, second]

    def test_chained_keys_join_consistently(self, volga):
        store = GenericPolicyStore()
        pid = store.install_policy(volga)
        # Every purpose-value row must join back to its statement chain.
        orphans = store.db.scalar(
            "SELECT COUNT(*) FROM contact WHERE NOT EXISTS ("
            "  SELECT * FROM purpose WHERE "
            "  purpose.purpose_id = contact.purpose_id AND "
            "  purpose.statement_id = contact.statement_id AND "
            "  purpose.policy_id = contact.policy_id)"
        )
        assert orphans == 0
        assert store.db.scalar(
            "SELECT COUNT(DISTINCT policy_id) FROM statement"
        ) == 1

    def test_delete_policy_removes_all_rows(self, volga):
        store = GenericPolicyStore()
        pid = store.install_policy(volga)
        store.delete_policy(pid)
        assert all(count == 0 for count in store.row_counts().values())

    def test_delete_unknown_policy_raises(self):
        store = GenericPolicyStore()
        with pytest.raises(UnknownPolicyError):
            store.delete_policy(404)

    def test_require_policy(self, volga):
        store = GenericPolicyStore()
        pid = store.install_policy(volga)
        store.require_policy(pid)
        with pytest.raises(UnknownPolicyError):
            store.require_policy(pid + 1)

    def test_entity_row_present_but_not_recursed(self, volga):
        store = GenericPolicyStore()
        store.install_policy(volga)
        # ENTITY participates in *-exact checks as a single row.
        assert store.row_counts()["entity"] == 1
