"""APPEL parser + serializer: Figure 2 walk-through and round-trips."""

import pytest

from repro.appel.parser import parse_rule, parse_ruleset
from repro.appel.serializer import serialize_ruleset
from repro.corpus.volga import JANE_PREFERENCE_XML
from repro.errors import AppelParseError


class TestJanePreference:
    """Figure 2, rule by rule."""

    def test_three_rules(self, jane):
        assert jane.rule_count() == 3

    def test_rule_behaviors(self, jane):
        assert jane.behaviors() == ("block", "block", "request")

    def test_first_rule_purpose_connective_is_or(self, jane):
        policy_expr = jane.rules[0].expressions[0]
        statement_expr = policy_expr.subexpressions[0]
        purpose_expr = statement_expr.subexpressions[0]
        assert purpose_expr.name == "PURPOSE"
        assert purpose_expr.connective == "or"

    def test_first_rule_lists_eleven_purposes(self, jane):
        purpose_expr = (jane.rules[0].expressions[0]
                        .subexpressions[0].subexpressions[0])
        assert len(purpose_expr.subexpressions) == 11

    def test_required_always_attributes(self, jane):
        purpose_expr = (jane.rules[0].expressions[0]
                        .subexpressions[0].subexpressions[0])
        by_name = {sub.name: sub for sub in purpose_expr.subexpressions}
        assert by_name["individual-decision"].attribute("required") == \
            "always"
        assert by_name["contact"].attribute("required") == "always"
        assert by_name["admin"].attribute("required") is None

    def test_second_rule_recipients(self, jane):
        recipient_expr = (jane.rules[1].expressions[0]
                          .subexpressions[0].subexpressions[0])
        assert recipient_expr.name == "RECIPIENT"
        assert recipient_expr.connective == "or"
        assert recipient_expr.subexpression_names() == frozenset(
            {"delivery", "other-recipient", "unrelated", "public"}
        )

    def test_third_rule_is_catch_all(self, jane):
        assert jane.rules[2].is_catch_all()


class TestParsing:
    def test_connective_attribute_not_a_pattern_attribute(self, jane):
        purpose_expr = (jane.rules[0].expressions[0]
                        .subexpressions[0].subexpressions[0])
        assert purpose_expr.attribute("connective") is None

    def test_default_connective_is_and(self):
        ruleset = parse_ruleset(
            '<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">'
            '<appel:RULE behavior="block"><POLICY/></appel:RULE>'
            "</appel:RULESET>"
        )
        assert ruleset.rules[0].expressions[0].connective == "and"

    def test_bare_rule_becomes_one_rule_ruleset(self):
        ruleset = parse_ruleset('<RULE behavior="request"/>')
        assert ruleset.rule_count() == 1

    def test_parse_rule_directly(self):
        rule = parse_rule(
            '<appel:RULE xmlns:appel="http://www.w3.org/2002/01/APPELv1" '
            'behavior="limited" prompt="yes" description="d"><POLICY/>'
            "</appel:RULE>"
        )
        assert rule.behavior == "limited"
        assert rule.prompt
        assert rule.description == "d"

    def test_otherwise_element(self):
        ruleset = parse_ruleset(
            '<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">'
            '<appel:RULE behavior="block"><POLICY/></appel:RULE>'
            "<appel:OTHERWISE/>"
            "</appel:RULESET>"
        )
        assert ruleset.rules[-1].behavior == "request"
        assert ruleset.rules[-1].is_catch_all()

    def test_rule_without_behavior_rejected(self):
        with pytest.raises(AppelParseError):
            parse_ruleset(
                '<appel:RULESET '
                'xmlns:appel="http://www.w3.org/2002/01/APPELv1">'
                "<appel:RULE><POLICY/></appel:RULE></appel:RULESET>"
            )

    def test_empty_ruleset_rejected(self):
        with pytest.raises(AppelParseError):
            parse_ruleset(
                '<appel:RULESET '
                'xmlns:appel="http://www.w3.org/2002/01/APPELv1"/>'
            )

    def test_no_ruleset_or_rule_rejected(self):
        with pytest.raises(AppelParseError):
            parse_ruleset("<POLICY/>")

    def test_malformed_xml_rejected(self):
        with pytest.raises(AppelParseError):
            parse_ruleset("<appel:RULESET>")

    def test_bad_connective_rejected(self):
        with pytest.raises(AppelParseError):
            parse_ruleset(
                '<appel:RULESET '
                'xmlns:appel="http://www.w3.org/2002/01/APPELv1">'
                '<appel:RULE behavior="block">'
                '<POLICY appel:connective="xor"/></appel:RULE>'
                "</appel:RULESET>"
            )


class TestRoundTrips:
    def test_jane_roundtrips(self, jane):
        assert parse_ruleset(serialize_ruleset(jane)) == jane

    def test_suite_roundtrips(self, suite):
        for ruleset in suite.values():
            assert parse_ruleset(serialize_ruleset(ruleset)) == ruleset

    def test_raw_jane_fixture_parses(self):
        assert parse_ruleset(JANE_PREFERENCE_XML).rule_count() == 3

    def test_all_connectives_roundtrip(self):
        from repro.appel.model import expression, rule, ruleset

        for connective in ("and", "or", "non-and", "non-or",
                           "and-exact", "or-exact"):
            rs = ruleset(rule(
                "block",
                expression("POLICY",
                           expression("STATEMENT"),
                           connective=connective),
            ))
            assert parse_ruleset(serialize_ruleset(rs)) == rs
