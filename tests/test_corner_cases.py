"""Adversarial corner cases, cross-checked on all five engines.

The hypothesis generator deduplicates subexpression names and keeps
shapes canonical; this suite aims at the patterns it therefore never
produces — duplicate subexpressions with different attributes, multiple
top-level POLICY expressions, empty containers under negation, and
pathological-but-legal nestings.
"""

import pytest

from repro.appel.model import Expression, Rule, Ruleset, expression, rule, ruleset
from repro.engines import all_engines
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)


def _agree(policy: Policy, preference: Ruleset) -> tuple:
    """Run all engines; assert agreement; return (behavior, rule_index)."""
    outcomes = set()
    for engine in all_engines():
        handle = engine.install(policy)
        outcome = engine.match(handle, preference)
        assert not outcome.failed, (engine.name, outcome.error)
        outcomes.add((outcome.behavior, outcome.rule_index))
    assert len(outcomes) == 1, outcomes
    return outcomes.pop()


def _policy(*statements: Statement) -> Policy:
    return Policy(statements=statements)


def _blocks(policy: Policy, *exprs: Expression,
            connective: str = "and") -> bool:
    preference = ruleset(
        rule("block", *exprs, connective=connective),
        rule("request"),
    )
    behavior, _ = _agree(policy, preference)
    return behavior == "block"


class TestDuplicateSubexpressions:
    def test_same_value_different_required_under_or(self):
        policy = _policy(Statement(
            purposes=(PurposeValue("contact", "opt-in"),),
        ))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact", required="always"),
                                  expression("contact", required="opt-in"),
                                  connective="or")))
        assert _blocks(policy, body)

    def test_same_value_different_required_under_and(self):
        # A single <contact required="opt-in"/> cannot satisfy both.
        policy = _policy(Statement(
            purposes=(PurposeValue("contact", "opt-in"),),
        ))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact", required="always"),
                                  expression("contact", required="opt-in"),
                                  connective="and")))
        assert not _blocks(policy, body)

    def test_duplicate_names_in_exactness_listing(self):
        policy = _policy(Statement(
            purposes=(PurposeValue("contact", "opt-in"),),
        ))
        # and-exact with [contact(always), contact(opt-in)]: part (a)
        # fails (no always-row), even though exactness part (b) holds.
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact", required="always"),
                                  expression("contact", required="opt-in"),
                                  connective="and-exact")))
        assert not _blocks(policy, body)
        # or-exact succeeds: one disjunct found, only 'contact' present.
        body_or = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("contact", required="always"),
                                  expression("contact", required="opt-in"),
                                  connective="or-exact")))
        assert _blocks(policy, body_or)


class TestRuleLevelCombinations:
    def test_two_policy_expressions_under_and(self):
        policy = _policy(Statement(
            purposes=(PurposeValue("current"),),
            recipients=(RecipientValue("ours"),),
        ))
        preference = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("current")))),
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("RECIPIENT",
                                                  expression("ours")))),
                 connective="and"),
            rule("request"),
        )
        assert _agree(policy, preference) == ("block", 0)

    def test_two_policy_expressions_under_non_and(self):
        policy = _policy(Statement(purposes=(PurposeValue("current"),)))
        preference = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT",
                                       expression("PURPOSE",
                                                  expression("current")))),
                 expression("POLICY", expression("TEST")),
                 connective="non-and"),
            rule("request"),
        )
        # Second conjunct fails (no TEST) -> non-and true -> block.
        assert _agree(policy, preference) == ("block", 0)

    def test_rule_level_or_exact(self):
        policy = _policy(Statement(purposes=(PurposeValue("current"),)))
        preference = ruleset(
            rule("block",
                 expression("POLICY", expression("STATEMENT")),
                 connective="or-exact"),
            rule("request"),
        )
        # The evidence root is a POLICY and it is listed: exact holds.
        assert _agree(policy, preference) == ("block", 0)


class TestEmptyAndMissingContainers:
    def test_statement_with_nothing(self):
        policy = _policy(Statement())
        assert _blocks(policy, expression("POLICY",
                                          expression("STATEMENT")))
        assert not _blocks(policy,
                           expression("POLICY",
                                      expression("STATEMENT",
                                                 expression("PURPOSE"))))

    def test_purpose_non_or_on_empty_statement(self):
        # No PURPOSE element at all: PURPOSE[non-or: x] cannot match.
        policy = _policy(Statement(recipients=(RecipientValue("ours"),)))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE",
                                  expression("telemarketing"),
                                  connective="non-or")))
        assert not _blocks(policy, body)

    def test_statement_non_or_at_policy_level(self):
        # POLICY[non-or: STATEMENT] matches only statement-less policies;
        # our model requires >= 0 statements, so build one without any.
        policy = Policy(statements=())
        preference = ruleset(
            rule("block",
                 expression("POLICY",
                            expression("STATEMENT"),
                            connective="non-or")),
            rule("request"),
        )
        assert _agree(policy, preference) == ("block", 0)

    def test_data_group_without_data_subexpr(self):
        with_data = _policy(Statement(data=(DataItem("#user.name"),)))
        without = _policy(Statement(
            purposes=(PurposeValue("current"),)))
        body = expression("POLICY",
                          expression("STATEMENT",
                                     expression("DATA-GROUP")))
        assert _blocks(with_data, body)
        assert not _blocks(without, body)


class TestDeepNestings:
    def test_data_with_ref_optional_and_categories(self):
        policy = _policy(Statement(
            data=(DataItem("#dynamic.miscdata", optional="yes",
                           categories=("purchase", "financial")),),
        ))
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("DATA-GROUP",
                                  expression(
                                      "DATA",
                                      expression("CATEGORIES",
                                                 expression("purchase"),
                                                 expression("financial"),
                                                 connective="and"),
                                      ref="#dynamic.miscdata",
                                      optional="yes"))))
        assert _blocks(policy, body)

    def test_categories_and_exact_against_expansion(self):
        # #user.bdate expands to exactly {demographic}.
        policy = _policy(Statement(data=(DataItem("#user.bdate"),)))
        exact_body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("DATA-GROUP",
                                  expression(
                                      "DATA",
                                      expression("CATEGORIES",
                                                 expression("demographic"),
                                                 connective="and-exact")))))
        assert _blocks(policy, exact_body)
        # user.name expands to {physical, demographic}: exactness fails.
        policy2 = _policy(Statement(data=(DataItem("#user.name"),)))
        assert not _blocks(policy2, exact_body)

    def test_multiple_statements_existential(self):
        # Pattern constraints must hold within ONE statement, not across.
        split = _policy(
            Statement(purposes=(PurposeValue("contact"),)),
            Statement(recipients=(RecipientValue("public"),)),
        )
        together = _policy(
            Statement(purposes=(PurposeValue("contact"),),
                      recipients=(RecipientValue("public"),)),
        )
        body = expression(
            "POLICY",
            expression("STATEMENT",
                       expression("PURPOSE", expression("contact")),
                       expression("RECIPIENT", expression("public"))))
        assert not _blocks(split, body)
        assert _blocks(together, body)
