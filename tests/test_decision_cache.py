"""The materialized decision cache: correctness, staleness, crashes.

Three layers of proof that the cache never serves a wrong decision:

* unit tests over :class:`DecisionCache` (hit/miss/negative rows, the
  version-guarded lookup, install-time invalidation, forward migration);
* a hypothesis state machine interleaving installs, registrations and
  corpus matches on a live :class:`PolicyServer`, checking every served
  decision against the native APPEL engine — the cache is invisible
  except in the counters;
* chaos: a crash mid-populate must leave *no* partial rows after
  recovery (population is one transaction), and a faulting cache write
  must never fail the check it would have accelerated.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.appel.engine import AppelEngine
from repro.corpus.preferences import jrc_suite
from repro.p3p.model import Policy, PurposeValue, RecipientValue, Statement
from repro.server.policy_server import PolicyServer
from repro.storage.database import Database
from repro.storage.decision_cache import (
    DecisionCache,
    decision_rows,
    utc_now_iso,
)
from repro.storage.shredder import PolicyStore
from repro.testing.faults import FaultPlan, crash_pool, install_pool_faults

_NAMES = ("alpha", "beta")
_RETENTIONS = ("no-retention", "stated-purpose", "indefinitely")
_LEVELS = ("Very High", "Low")


def _policy(name: str, retention: str) -> Policy:
    return Policy(
        name=name,
        discuri=f"http://{name}.example.com/p",
        statements=(
            Statement(
                purposes=(PurposeValue("current"),),
                recipients=(RecipientValue("ours"),),
                retention=retention,
            ),
        ),
    )


@pytest.fixture()
def store():
    store = PolicyStore(Database())
    yield store
    store.db.close()


@pytest.fixture()
def cache(store):
    cache = DecisionCache()
    cache.ensure_schema(store.db)
    return cache


class TestCacheTable:
    def test_lookup_misses_then_hits(self, store, cache):
        policy_id = store.install_policy(_policy("a", "no-retention"),
                                         version=1).policy_id
        assert cache.lookup(store.db, "h", policy_id) is None
        cache.store_rows(store.db,
                         [("h", policy_id, 1, "block", 0, utc_now_iso())])
        assert cache.lookup(store.db, "h", policy_id) == ("block", 0)
        assert cache.hits == 1 and cache.misses == 1

    def test_negative_decision_is_a_hit_not_a_miss(self, store, cache):
        policy_id = store.install_policy(_policy("a", "no-retention"),
                                         version=1).policy_id
        cache.store_rows(store.db,
                         [("h", policy_id, 1, None, None, utc_now_iso())])
        # Row-present-with-NULLs: "no rule fires" is a cached fact.
        assert cache.lookup(store.db, "h", policy_id) == (None, None)
        assert cache.hits == 1 and cache.misses == 0

    def test_version_guard_rejects_mismatched_rows(self, store, cache):
        policy_id = store.install_policy(_policy("a", "no-retention"),
                                         version=2).policy_id
        cache.store_rows(store.db,
                         [("h", policy_id, 1, "block", 0, utc_now_iso())])
        # A row written against version 1 of an id whose live version is
        # 2 must miss (defense-in-depth; ids are immutable in practice).
        assert cache.lookup(store.db, "h", policy_id) is None

    def test_invalidate_only_inactive_versions(self, store, cache):
        old = store.install_policy(_policy("a", "no-retention"),
                                   version=1, active=False).policy_id
        new = store.install_policy(_policy("a", "indefinitely"),
                                   version=2).policy_id
        stamp = utc_now_iso()
        cache.store_rows(store.db, [("h", old, 1, "block", 0, stamp),
                                    ("h", new, 2, "request", 1, stamp)])
        assert cache.invalidate_inactive(store.db, "a", None) == 1
        assert cache.lookup(store.db, "h", new) == ("request", 1)
        assert cache.row_count(store.db) == 1
        assert cache.invalidated == 1

    def test_decision_rows_fill_negatives(self):
        rows = decision_rows("h", [(1, 1), (2, 1)], {1: ("block", 0)},
                             computed_at="t")
        assert rows == [("h", 1, 1, "block", 0, "t"),
                        ("h", 2, 1, None, None, "t")]

    def test_schema_migrates_computed_at_forward(self, store):
        store.db.executescript(
            "CREATE TABLE decision_cache ("
            " pref_hash TEXT NOT NULL,"
            " policy_id INTEGER NOT NULL,"
            " policy_version INTEGER NOT NULL,"
            " behavior TEXT, rule_index INTEGER,"
            " PRIMARY KEY (pref_hash, policy_id, policy_version));")
        DecisionCache().ensure_schema(store.db)
        assert "computed_at" in store.db.table_columns("decision_cache")

    def test_snapshot_reports_hit_rate(self, cache):
        cache.record_hits(3, 1)
        snapshot = cache.snapshot()
        assert snapshot["hits"] == 3 and snapshot["misses"] == 1
        assert snapshot["hit_rate"] == pytest.approx(0.75)


class TestServerIntegration:
    def test_register_then_match_is_all_hits(self, corpus, suite):
        server = PolicyServer()
        try:
            for policy in corpus[:8]:
                server.install_policy(policy)
            preference = suite["High"]
            assert server.register_preference(preference) == 8
            result = server.match_all(preference)
            assert len(result.decisions) == 8
            assert result.cache_hits == 8 and result.cache_misses == 0
            assert all(decision.cached for decision in result.decisions)
        finally:
            server.close()

    def test_unregistered_match_repairs_and_warms(self, corpus, suite):
        server = PolicyServer()
        try:
            for policy in corpus[:6]:
                server.install_policy(policy)
            preference = suite["Medium"]
            cold = server.match_all(preference)
            assert cold.cache_misses == 6 and cold.cache_hits == 0
            warm = server.match_all(preference)
            assert warm.cache_misses == 0 and warm.cache_hits == 6
            assert [d.decision for d in warm.decisions] == \
                [d.decision for d in cold.decisions]
        finally:
            server.close()

    def test_reinstall_invalidates_exactly_that_name(self, corpus, suite):
        server = PolicyServer()
        try:
            for policy in corpus[:5]:
                server.install_policy(policy)
            preference = suite["High"]
            server.register_preference(preference)
            server.install_policy(corpus[0])      # version bump
            result = server.match_all(preference)
            assert result.cache_misses == 1
            missed = [d for d in result.decisions if not d.cached]
            assert [d.name for d in missed] == [corpus[0].name]
            assert missed[0].version == 2
        finally:
            server.close()

    def test_racing_install_between_listing_and_repair_rereads(
            self, suite, monkeypatch):
        """The bulk repair plan only sees active policies, and the
        listing and the repair are separate statements: an install
        committing between them deactivates a listed version, which
        (before the re-read) was served with no decision at all."""
        server = PolicyServer()
        try:
            server.install_policy(_policy("alpha", "no-retention"))
            server.install_policy(_policy("beta", "no-retention"))
            preference = suite["Very High"]
            server.register_preference(preference)
            # v2: beta stays cached, alpha's new version is the miss
            # the repair query must decide.
            server.install_policy(_policy("alpha", "stated-purpose"))

            real = server.decisions.match_rows
            state = {"calls": 0}

            def racing(db, pref_hash):
                rows = real(db, pref_hash)
                state["calls"] += 1
                if state["calls"] == 1:
                    # v3 lands after the listing, before the repair —
                    # deactivating the v2 the listing just returned.
                    server.install_policy(
                        _policy("alpha", "indefinitely"))
                return rows

            monkeypatch.setattr(server.decisions, "match_rows", racing)
            result = server.match_all(preference)

            assert state["calls"] == 2
            assert server.decisions.repair_races == 1
            alpha = [d for d in result.decisions if d.name == "alpha"]
            assert [d.version for d in alpha] == [3]
            verdict = AppelEngine().evaluate(
                _policy("alpha", "indefinitely"), preference)
            assert (alpha[0].behavior, alpha[0].rule_index) == \
                (verdict.behavior, verdict.rule_index)
            assert all(d.behavior is not None for d in result.decisions)
        finally:
            server.close()

    def test_sustained_racing_installs_never_loop_forever(
            self, suite, monkeypatch):
        """When every re-read races yet another install, the match
        serves without the vanished versions instead of retrying
        unboundedly."""
        from repro.server.policy_server import MATCH_RACE_RETRIES

        server = PolicyServer()
        try:
            server.install_policy(_policy("alpha", "no-retention"))
            server.install_policy(_policy("beta", "no-retention"))
            preference = suite["Very High"]
            server.register_preference(preference)
            server.install_policy(_policy("alpha", "stated-purpose"))

            real = server.decisions.match_rows
            retentions = _RETENTIONS

            def always_racing(db, pref_hash):
                rows = real(db, pref_hash)
                version = server.decisions.repair_races + 3
                server.install_policy(_policy(
                    "alpha", retentions[version % len(retentions)]))
                return rows

            monkeypatch.setattr(server.decisions, "match_rows",
                                always_racing)
            result = server.match_all(preference)

            assert server.decisions.repair_races == MATCH_RACE_RETRIES + 1
            assert [d.name for d in result.decisions] == ["beta"]
            assert all(d.behavior is not None for d in result.decisions)
        finally:
            server.close()

    def test_cache_decisions_off_bypasses_the_table(self, corpus, suite):
        server = PolicyServer(cache_decisions=False)
        try:
            for policy in corpus[:4]:
                server.install_policy(policy)
            result = server.match_all(suite["Low"])
            assert len(result.decisions) == 4
            # Without write-back every match recomputes.
            again = server.match_all(suite["Low"])
            assert again.cache_misses == 4
            assert [d.decision for d in again.decisions] == \
                [d.decision for d in result.decisions]
        finally:
            server.close()


class TestChaos:
    def test_crash_mid_populate_leaves_no_partial_rows(self, tmp_path,
                                                       corpus, suite):
        """Population is one transaction: a crash between the cache
        INSERTs and the commit must recover to *zero* rows, never some."""
        path = str(tmp_path / "p3p.db")
        server = PolicyServer(path)
        for policy in corpus[:6]:
            server.install_policy(policy)
        pool = server.pool
        original = pool.writer.executemany

        def crash_after_write(sql, rows):
            result = original(sql, rows)
            if "decision_cache" in sql:
                # Rows are in the open transaction; die before commit.
                crash_pool(pool)
                raise sqlite3.OperationalError("injected: crashed")
            return result

        pool.writer.executemany = crash_after_write
        with pytest.raises(Exception):
            server.register_preference(suite["High"])

        recovered = Database(path)
        try:
            assert recovered.scalar(
                "SELECT COUNT(*) FROM decision_cache") == 0
            assert recovered.scalar(
                "SELECT COUNT(*) FROM policy") == 6
        finally:
            recovered.close()

    def test_faulting_write_back_never_fails_the_check(self, corpus,
                                                       suite):
        """check() must survive a decision-cache write failure — the
        cache is an optimization, and the error is counted, not raised."""
        server = PolicyServer()
        try:
            for policy in corpus[:3]:
                server.install_policy(policy)
            plan = FaultPlan(every={"sqlite": 1})
            # Match the INSERT alone: in-memory reads share the writer
            # connection, and the warm-path SELECT names the table too.
            uninstall = install_pool_faults(
                server.pool, plan,
                match="INSERT OR REPLACE INTO decision_cache")
            try:
                result = server.match_all(suite["High"])
                assert result.cache_misses == 3
                assert server.decisions.write_errors >= 1
                # Still correct, still recomputing (nothing cached).
                again = server.match_all(suite["High"])
                assert again.cache_misses == 3
                assert [d.decision for d in again.decisions] == \
                    [d.decision for d in result.decisions]
            finally:
                uninstall()
            # Healed: the next match repairs and the one after hits.
            server.match_all(suite["High"])
            assert server.match_all(suite["High"]).cache_misses == 0
        finally:
            server.close()


class DecisionCacheMachine(RuleBasedStateMachine):
    """Installs, registrations and matches in random order: every
    decision the server returns — cached or computed — must equal the
    native APPEL engine's verdict on the currently active version."""

    def __init__(self):
        super().__init__()
        self.server = PolicyServer()
        self.native = AppelEngine()
        self.suite = {level: jrc_suite()[level] for level in _LEVELS}
        self.model: dict[str, Policy] = {}

    @rule(name=st.sampled_from(_NAMES),
          retention=st.sampled_from(_RETENTIONS))
    def install(self, name, retention):
        policy = _policy(name, retention)
        self.server.install_policy(policy)
        self.model[name] = policy

    @precondition(lambda self: self.model)
    @rule(level=st.sampled_from(_LEVELS))
    def register(self, level):
        cached = self.server.register_preference(self.suite[level])
        assert cached == len(self.model)

    @precondition(lambda self: self.model)
    @rule(level=st.sampled_from(_LEVELS))
    def match(self, level):
        result = self.server.match_all(self.suite[level])
        by_name = {decision.name: decision
                   for decision in result.decisions}
        assert set(by_name) == set(self.model)
        for name, policy in self.model.items():
            verdict = self.native.evaluate(policy, self.suite[level])
            decision = by_name[name]
            assert (decision.behavior, decision.rule_index) == \
                (verdict.behavior, verdict.rule_index), (name, level)

    @precondition(lambda self: self.model)
    @rule(level=st.sampled_from(_LEVELS))
    def match_twice_is_stable(self, level):
        first = self.server.match_all(self.suite[level])
        second = self.server.match_all(self.suite[level])
        assert [d.decision for d in second.decisions] == \
            [d.decision for d in first.decisions]
        assert second.cache_misses == 0

    def teardown(self):
        self.server.close()


DecisionCacheMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None,
)
TestDecisionCacheMachine = DecisionCacheMachine.TestCase
