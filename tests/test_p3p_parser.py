"""P3P parser: the Figure 1 walk-through plus error handling."""

import pytest

from repro.errors import PolicyParseError
from repro.p3p.parser import parse_policies, parse_policy
from repro.corpus.volga import VOLGA_POLICY_XML


class TestVolgaPolicy:
    """Figure 1, element by element."""

    def test_two_statements(self, volga):
        assert volga.statement_count() == 2

    def test_policy_attributes(self, volga):
        assert volga.name == "volga"
        assert volga.discuri.endswith("privacy.html")
        assert volga.opturi is not None

    def test_first_statement_purpose_is_current(self, volga):
        first = volga.statements[0]
        assert first.purpose_names() == ("current",)
        assert first.purposes[0].required is None

    def test_first_statement_recipients(self, volga):
        assert volga.statements[0].recipient_names() == ("ours", "same")

    def test_first_statement_retention(self, volga):
        assert volga.statements[0].retention == "stated-purpose"

    def test_first_statement_data(self, volga):
        refs = volga.statements[0].data_refs()
        assert refs == ("#user.name", "#user.home-info.postal",
                        "#dynamic.miscdata")

    def test_miscdata_inline_category(self, volga):
        miscdata = volga.statements[0].data[2]
        assert miscdata.categories == ("purchase",)

    def test_second_statement_opt_in(self, volga):
        """The opt-in on individual-decision/contact that makes the paper's
        Section 2.2 walk-through work."""
        second = volga.statements[1]
        required = {p.name: p.required for p in second.purposes}
        assert required == {"individual-decision": "opt-in",
                            "contact": "opt-in"}

    def test_entity(self, volga):
        assert ("#business.name", "Volga Books") in volga.entity.data

    def test_access(self, volga):
        assert volga.access == "contact-and-other"


class TestDefaults:
    def test_omitted_required_resolves_to_always(self):
        policy = parse_policy(
            "<POLICY><STATEMENT><PURPOSE><contact/></PURPOSE>"
            "</STATEMENT></POLICY>"
        )
        assert policy.statements[0].purposes[0].required == "always"

    def test_omitted_optional_resolves_to_no(self):
        policy = parse_policy(
            "<POLICY><STATEMENT><DATA-GROUP>"
            '<DATA ref="#user.name"/>'
            "</DATA-GROUP></STATEMENT></POLICY>"
        )
        assert policy.statements[0].data[0].optional == "no"


class TestNamespaceHandling:
    def test_namespaced_document(self):
        xml = (
            '<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1">'
            "<STATEMENT><PURPOSE><current/></PURPOSE></STATEMENT>"
            "</POLICY>"
        )
        policy = parse_policy(xml)
        assert policy.statements[0].purpose_names() == ("current",)

    def test_policy_inside_policies_container(self):
        xml = (
            "<POLICIES>"
            "<POLICY name='a'><STATEMENT/></POLICY>"
            "<POLICY name='b'><STATEMENT/></POLICY>"
            "</POLICIES>"
        )
        assert parse_policy(xml).name == "a"
        assert [p.name for p in parse_policies(xml)] == ["a", "b"]


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(PolicyParseError):
            parse_policy("<POLICY><STATEMENT></POLICY>")

    def test_no_policy_element(self):
        with pytest.raises(PolicyParseError):
            parse_policy("<NOTHING/>")

    def test_unknown_purpose_value(self):
        with pytest.raises(PolicyParseError):
            parse_policy(
                "<POLICY><STATEMENT><PURPOSE><espionage/></PURPOSE>"
                "</STATEMENT></POLICY>"
            )

    def test_unknown_retention_value(self):
        with pytest.raises(PolicyParseError):
            parse_policy(
                "<POLICY><STATEMENT><RETENTION><eternal/></RETENTION>"
                "</STATEMENT></POLICY>"
            )

    def test_data_without_ref(self):
        with pytest.raises(PolicyParseError):
            parse_policy(
                "<POLICY><STATEMENT><DATA-GROUP><DATA/></DATA-GROUP>"
                "</STATEMENT></POLICY>"
            )

    def test_unexpected_element_under_policy(self):
        with pytest.raises(PolicyParseError):
            parse_policy("<POLICY><BANNER/></POLICY>")

    def test_unknown_category_value(self):
        with pytest.raises(PolicyParseError):
            parse_policy(
                "<POLICY><STATEMENT><DATA-GROUP>"
                '<DATA ref="#dynamic.miscdata">'
                "<CATEGORIES><gossip/></CATEGORIES></DATA>"
                "</DATA-GROUP></STATEMENT></POLICY>"
            )

    def test_extension_elements_are_ignored(self):
        policy = parse_policy(
            "<POLICY><EXTENSION><anything/></EXTENSION>"
            "<STATEMENT><EXTENSION/></STATEMENT></POLICY>"
        )
        assert policy.statement_count() == 1

    def test_parse_policies_empty_document(self):
        with pytest.raises(PolicyParseError):
            parse_policies("<POLICIES/>")


class TestRoundTripStability:
    def test_volga_reparses_identically(self, volga):
        from repro.p3p.serializer import serialize_policy

        assert parse_policy(serialize_policy(volga)) == volga

    def test_raw_text_matches_fixture(self):
        assert parse_policy(VOLGA_POLICY_XML).name == "volga"
