"""Base data schema: lookups, category inheritance, schema document."""

import pytest

from repro import xmlutil
from repro.errors import VocabularyError
from repro.vocab import basedata, terms


class TestLookup:
    def test_lookup_with_and_without_hash(self):
        assert basedata.lookup("#user.name").name == "user.name"
        assert basedata.lookup("user.name").name == "user.name"

    def test_lookup_deep(self):
        node = basedata.lookup("#user.home-info.postal.street")
        assert node.is_leaf()

    def test_unknown_raises(self):
        with pytest.raises(VocabularyError):
            basedata.lookup("#user.shoe-size")

    def test_empty_raises(self):
        with pytest.raises(VocabularyError):
            basedata.lookup("#")

    def test_is_known_ref(self):
        assert basedata.is_known_ref("#dynamic.miscdata")
        assert not basedata.is_known_ref("#corp.secret")


class TestVariableCategories:
    def test_miscdata_and_cookies_are_variable(self):
        assert basedata.is_variable_ref("#dynamic.miscdata")
        assert basedata.is_variable_ref("#dynamic.cookies")

    def test_variable_refs_have_no_fixed_categories(self):
        assert basedata.categories_for_ref("#dynamic.miscdata") == frozenset()

    def test_fixed_ref_is_not_variable(self):
        assert not basedata.is_variable_ref("#user.name")


class TestCategoryAssignments:
    def test_postal_is_physical(self):
        assert "physical" in basedata.categories_for_ref(
            "#user.home-info.postal"
        )

    def test_email_is_online(self):
        assert basedata.categories_for_ref(
            "#user.home-info.online.email"
        ) == frozenset({"online"})

    def test_bdate_is_demographic(self):
        assert "demographic" in basedata.categories_for_ref("#user.bdate")

    def test_login_is_uniqueid(self):
        assert "uniqueid" in basedata.categories_for_ref("#user.login")

    def test_clickstream_is_navigation_and_computer(self):
        categories = basedata.categories_for_ref("#dynamic.clickstream")
        assert {"navigation", "computer"} <= categories

    def test_subtree_union(self):
        # Referencing a structure collects all its fields' categories.
        whole = basedata.categories_for_ref("#user")
        assert {"physical", "online", "demographic", "uniqueid"} <= whole

    def test_all_categories_are_legal(self):
        for name in basedata.known_refs():
            for category in basedata.lookup(name).categories:
                assert category in terms.CATEGORY_SET

    def test_thirdparty_mirrors_user(self):
        user = basedata.categories_for_ref("#user.name")
        third = basedata.categories_for_ref("#thirdparty.name")
        assert user == third


class TestEnumeration:
    def test_schema_is_substantial(self):
        # The real base data schema has hundreds of named elements; the
        # augmentation cost model depends on that scale.
        assert basedata.schema_size() > 250

    def test_leaf_refs_are_leaves(self):
        for name in basedata.leaf_refs()[:50]:
            assert basedata.lookup(name).is_leaf()

    def test_known_refs_unique(self):
        names = basedata.known_refs()
        assert len(names) == len(set(names))


class TestSchemaDocument:
    def test_document_parses(self):
        root = xmlutil.parse_string(basedata.base_schema_document())
        assert xmlutil.local_name(root.tag) == "DATASCHEMA"

    def test_document_has_one_struct_per_node(self):
        root = xmlutil.parse_string(basedata.base_schema_document())
        assert len(list(root)) == basedata.schema_size()

    def test_document_categories_match_index(self):
        root = xmlutil.parse_string(basedata.base_schema_document())
        for struct in list(root)[:80]:
            name = struct.get("name")
            cats_el = xmlutil.find_child(struct, "CATEGORIES")
            doc_cats = frozenset(
                xmlutil.local_name(c.tag) for c in cats_el
            ) if cats_el is not None else frozenset()
            assert doc_cats == basedata.lookup(name).categories
