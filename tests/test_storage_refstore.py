"""Reference store (Figure 16): in-database applicable-policy lookup."""

import pytest

from repro.corpus.volga import VOLGA_REFERENCE_XML
from repro.errors import ReferenceFileError
from repro.p3p.reference import (
    PolicyRef,
    ReferenceFile,
    parse_reference_file,
)
from repro.storage.database import Database
from repro.storage.refstore import ReferenceStore, pattern_to_like
from repro.storage.shredder import PolicyStore


class TestPatternToLike:
    def test_star_becomes_percent(self):
        assert pattern_to_like("/a/*") == "/a/%"

    def test_like_metacharacters_escaped(self):
        assert pattern_to_like("/100%_done") == "/100\\%\\_done"

    def test_backslash_escaped(self):
        assert pattern_to_like("a\\b") == "a\\\\b"


@pytest.fixture()
def stores(volga):
    db = Database()
    policies = PolicyStore(db)
    pid = policies.install_policy(volga, site="volga.example.com").policy_id
    references = ReferenceStore(db)
    references.install_reference_file(
        parse_reference_file(VOLGA_REFERENCE_XML),
        "volga.example.com",
        policy_store=policies,
    )
    return references, pid


class TestApplicablePolicy:
    def test_covered_uri(self, stores):
        references, pid = stores
        assert references.applicable_policy_id(
            "volga.example.com", "/catalog/book"
        ) == pid

    def test_excluded_uri(self, stores):
        references, _ = stores
        assert references.applicable_policy_id(
            "volga.example.com", "/legacy/old-page"
        ) is None

    def test_unknown_site(self, stores):
        references, _ = stores
        assert references.applicable_policy_id(
            "elsewhere.example.com", "/catalog/book"
        ) is None

    def test_cookie_lookup(self, stores):
        references, pid = stores
        assert references.applicable_policy_id(
            "volga.example.com", "/anything", cookie=True
        ) == pid

    def test_subquery_is_plain_sql(self, stores):
        references, pid = stores
        sql = references.applicable_policy_subquery(
            "volga.example.com", "/catalog/x"
        )
        references.register_sql_functions()
        assert references.db.scalar(sql) == pid

    def test_document_order_priority(self, volga):
        """First matching POLICY-REF in document order wins."""
        db = Database()
        policies = PolicyStore(db)
        first = policies.install_policy(volga).policy_id
        second = policies.install_policy(volga).policy_id
        references = ReferenceStore(db)
        reference = ReferenceFile(refs=(
            PolicyRef(about="#checkout", includes=("/checkout/*",)),
            PolicyRef(about="#site", includes=("/*",)),
        ))
        references.install_reference_file(
            reference, "shop.example.com",
            policy_ids={"checkout": first, "site": second},
        )
        assert references.applicable_policy_id(
            "shop.example.com", "/checkout/pay") == first
        assert references.applicable_policy_id(
            "shop.example.com", "/browse") == second


class TestInstallation:
    def test_unresolvable_policy_name_raises(self):
        references = ReferenceStore()
        reference = ReferenceFile(refs=(
            PolicyRef(about="#ghost", includes=("/*",)),
        ))
        with pytest.raises(ReferenceFileError):
            references.install_reference_file(reference, "x.example.com")

    def test_policy_ids_mapping_used(self):
        references = ReferenceStore()
        reference = ReferenceFile(refs=(
            PolicyRef(about="#p", includes=("/*",)),
        ))
        references.install_reference_file(reference, "x.example.com",
                                          policy_ids={"p": 42})
        assert references.applicable_policy_id("x.example.com", "/a") == 42

    def test_reinstall_replaces_site_reference(self):
        """A new reference file supersedes the site's previous one —
        otherwise stale META rows shadow new policy versions."""
        references = ReferenceStore()
        reference = ReferenceFile(refs=(
            PolicyRef(about="#p", includes=("/*",)),
        ))
        references.install_reference_file(reference, "x.example.com",
                                          policy_ids={"p": 1})
        references.install_reference_file(reference, "x.example.com",
                                          policy_ids={"p": 2})
        assert references.applicable_policy_id("x.example.com", "/a") == 2
        assert references.db.table_count("meta") == 1

    def test_reinstall_keep_mode(self):
        references = ReferenceStore()
        reference = ReferenceFile(refs=(
            PolicyRef(about="#p", includes=("/*",)),
        ))
        references.install_reference_file(reference, "x.example.com",
                                          policy_ids={"p": 1})
        references.install_reference_file(reference, "x.example.com",
                                          policy_ids={"p": 2},
                                          replace=False)
        # Without replacement the earlier installation still wins.
        assert references.applicable_policy_id("x.example.com", "/a") == 1

    def test_multiple_sites_isolated(self):
        references = ReferenceStore()
        for index, site in enumerate(("a.example.com", "b.example.com")):
            references.install_reference_file(
                ReferenceFile(refs=(
                    PolicyRef(about="#p", includes=("/*",)),
                )),
                site, policy_ids={"p": index + 1},
            )
        assert references.applicable_policy_id("a.example.com", "/") == 1
        assert references.applicable_policy_id("b.example.com", "/") == 2
