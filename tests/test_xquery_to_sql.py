"""XTABLE emulation: XQuery -> SQL over the generic schema."""

import pytest

from repro.errors import TranslationTooComplexError
from repro.storage.generic_shredder import GenericPolicyStore
from repro.translate.appel_to_sql import applicable_policy_literal
from repro.translate.appel_to_xquery import XQueryTranslator
from repro.xquery.parser import parse_query
from repro.xquery.to_sql import XTableCompiler, compile_query


@pytest.fixture()
def store(volga):
    store = GenericPolicyStore()
    store.install_policy(volga)
    return store


def _run(store, xquery_text, policy_id=1, limit=10_000):
    query = parse_query(xquery_text)
    sql = compile_query(query, applicable_policy_literal(policy_id),
                        complexity_limit=limit)
    row = store.db.query_one(sql)
    return None if row is None else row["behavior"]


class TestCompilation:
    def test_existence_query(self, store):
        assert _run(store,
                    'if (document("p")[POLICY[STATEMENT]]) '
                    "then <block/>") == "block"

    def test_no_match(self, store):
        assert _run(store,
                    'if (document("p")[POLICY[TEST]]) then <block/>') is None

    def test_attribute_comparison(self, store):
        assert _run(
            store,
            'if (document("p")[POLICY[STATEMENT[PURPOSE['
            'contact[@required = "opt-in"]]]]]) then <block/>',
        ) == "block"

    def test_default_resolved_attribute(self, store):
        # Stored attributes are default-resolved; current has none but
        # same (recipient) defaults to always.
        assert _run(
            store,
            'if (document("p")[POLICY[STATEMENT[RECIPIENT['
            'same[@required = "always"]]]]]) then <block/>',
        ) == "block"

    def test_self_test_folds_to_constant(self):
        compiler = XTableCompiler()
        sql = compiler.compile_query(
            parse_query('if (document("p")[POLICY[*[self::STATEMENT]]]) '
                        "then <block/>"),
            applicable_policy_literal(1),
        )
        # self:: tests disappear into constants; no impossible branches.
        assert "self" not in sql

    def test_unknown_step_is_false(self, store):
        assert _run(store,
                    'if (document("p")[POLICY[WIRETAP]]) '
                    "then <block/>") is None

    def test_exactness_idiom_compiles(self, store):
        # Second Volga statement has PURPOSE/RECIPIENT/RETENTION/DATA-GROUP
        # plus CONSEQUENCE, so exact-PURPOSE fails; just check it runs.
        behavior = _run(
            store,
            'if (document("p")[POLICY[STATEMENT[not(*[not(self::PURPOSE)])]'
            "]]) then <block/>",
        )
        assert behavior is None

    def test_wildcard_expands_to_children(self, store):
        assert _run(store,
                    'if (document("p")[POLICY[STATEMENT[*]]]) '
                    "then <block/>") == "block"


class TestComplexityGuard:
    def test_medium_preference_exceeds_budget(self, suite):
        from repro.corpus.preferences import medium_preference

        translator = XQueryTranslator()
        translated = translator.translate_ruleset(medium_preference())
        with pytest.raises(TranslationTooComplexError):
            for rule in translated.rules:
                compile_query(parse_query(rule.xquery),
                              applicable_policy_literal(1))

    def test_other_levels_fit_budget(self, suite):
        translator = XQueryTranslator()
        for level, rs in suite.items():
            if level == "Medium":
                continue
            for rule in translator.translate_ruleset(rs).rules:
                compile_query(parse_query(rule.xquery),
                              applicable_policy_literal(1))  # no raise

    def test_custom_limit(self):
        query = parse_query(
            'if (document("p")[POLICY[STATEMENT[PURPOSE]]]) then <block/>'
        )
        with pytest.raises(TranslationTooComplexError):
            compile_query(query, applicable_policy_literal(1),
                          complexity_limit=2)

    def test_subquery_count_reported(self):
        compiler = XTableCompiler()
        compiler.compile_query(
            parse_query('if (document("p")[POLICY[STATEMENT]]) '
                        "then <block/>"),
            applicable_policy_literal(1),
        )
        assert compiler.subquery_count == 2


class TestAgreementWithNativeEvaluation:
    """The same XQuery must decide identically via DOM and via SQL."""

    def test_suite_against_volga(self, volga, suite):
        from repro.appel.engine import AppelEngine

        prepared = AppelEngine().prepare(volga)
        store = GenericPolicyStore()
        pid = store.install_policy(volga)
        translator = XQueryTranslator()

        from repro.xquery.evaluator import evaluate_query

        for level, rs in suite.items():
            for translated in translator.translate_ruleset(rs).rules:
                query = parse_query(translated.xquery)
                native = evaluate_query(query, prepared.root)
                try:
                    sql = compile_query(query,
                                        applicable_policy_literal(pid),
                                        complexity_limit=100_000)
                except TranslationTooComplexError:
                    continue
                row = store.db.query_one(sql)
                via_sql = None if row is None else row["behavior"]
                assert native == via_sql, (level, translated.xquery)
