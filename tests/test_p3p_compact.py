"""Compact policies: encode/decode and the IE6-style cookie gate."""

import pytest

from repro.errors import CompactPolicyError
from repro.p3p.compact import (
    CookiePreference,
    decode_compact,
    encode_compact,
)
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)


class TestEncode:
    def test_volga_tokens(self, volga):
        tokens = encode_compact(volga).split()
        assert "CAO" in tokens          # contact-and-other access
        assert "CUR" in tokens          # current purpose
        assert "IVDi" in tokens         # individual-decision opt-in
        assert "CONi" in tokens         # contact opt-in
        assert "OUR" in tokens and "SAM" in tokens
        assert "STP" in tokens and "BUS" in tokens
        assert "PUR" in tokens          # purchase category (miscdata)

    def test_expanded_categories_included(self, volga):
        tokens = encode_compact(volga).split()
        # #user.home-info.postal expands to physical (PHY) at encode time.
        assert "PHY" in tokens

    def test_no_duplicate_tokens(self, volga):
        tokens = encode_compact(volga).split()
        assert len(tokens) == len(set(tokens))

    def test_test_policy_gets_tst(self):
        policy = Policy(test=True, statements=(Statement(),))
        assert encode_compact(policy).split()[-1] == "TST"

    def test_non_identifiable_token(self):
        policy = Policy(statements=(Statement(non_identifiable=True),))
        assert "NID" in encode_compact(policy).split()


class TestDecode:
    def test_roundtrip_purposes(self, volga):
        compact = decode_compact(encode_compact(volga))
        names = {name for name, _ in compact.purposes}
        assert names == {"current", "individual-decision", "contact"}

    def test_required_suffixes(self):
        compact = decode_compact("CONi TELo ADM")
        assert ("contact", "opt-in") in compact.purposes
        assert ("telemarketing", "opt-out") in compact.purposes
        assert ("admin", "always") in compact.purposes

    def test_unknown_token_rejected(self):
        with pytest.raises(CompactPolicyError):
            decode_compact("XYZ")

    def test_bad_suffix_rejected(self):
        with pytest.raises(CompactPolicyError):
            decode_compact("CONx")

    def test_quoted_header_style(self):
        # HTTP headers often quote: P3P: CP="CAO CUR OUR"
        compact = decode_compact('"CAO" "CUR" "OUR"')
        assert compact.access == "contact-and-other"

    def test_to_policy_overapproximates(self, volga):
        compact = decode_compact(encode_compact(volga))
        coarse = compact.to_policy()
        assert coarse.statement_count() == 1
        assert "current" in coarse.statements[0].purpose_names()


class TestCookiePreference:
    def test_accepts_benign_policy(self, volga):
        pref = CookiePreference()
        assert pref.accepts(decode_compact(encode_compact(volga)))

    def test_blocks_always_telemarketing(self):
        pref = CookiePreference()
        assert not pref.accepts(decode_compact("TEL OUR STP"))

    def test_allows_opt_in_telemarketing(self):
        """IE6's 'implicit consent' notion: opt-in keeps the user in
        control, so the cookie is admitted."""
        pref = CookiePreference()
        assert pref.accepts(decode_compact("TELi OUR STP"))

    def test_blocks_unrelated_recipient(self):
        pref = CookiePreference()
        assert not pref.accepts(decode_compact("CUR UNR STP"))

    def test_missing_compact_policy_rejected_by_default(self):
        assert not CookiePreference().accepts(None)

    def test_missing_compact_policy_allowed_when_lenient(self):
        pref = CookiePreference(require_compact_policy=False)
        assert pref.accepts(None)

    def test_category_blocking(self):
        pref = CookiePreference(blocked_categories=frozenset({"health"}))
        assert not pref.accepts(decode_compact("CUR OUR STP HEA"))
        assert pref.accepts(decode_compact("CUR OUR STP FIN"))
