"""Mini XQuery engine: lexer and parser."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import lexer
from repro.xquery.ast import (
    AndExpr,
    AttributeComparison,
    NotExpr,
    OrExpr,
    PathExpr,
    SelfTest,
)
from repro.xquery.parser import parse_condition, parse_query


class TestLexer:
    def test_basic_tokens(self):
        tokens = lexer.tokenize('POLICY[@name = "x"]')
        kinds = [(t.kind, t.text) for t in tokens]
        assert kinds == [
            ("NAME", "POLICY"), ("PUNCT", "["), ("PUNCT", "@"),
            ("NAME", "name"), ("PUNCT", "="), ("STRING", "x"),
            ("PUNCT", "]"), ("END", ""),
        ]

    def test_self_axis_token(self):
        tokens = lexer.tokenize("self::admin")
        assert tokens[0].text == "self::"
        assert tokens[1].text == "admin"

    def test_dashed_names(self):
        tokens = lexer.tokenize("DATA-GROUP non-or stated-purpose")
        assert [t.text for t in tokens[:-1]] == [
            "DATA-GROUP", "non-or", "stated-purpose",
        ]

    def test_single_and_double_quoted_strings(self):
        tokens = lexer.tokenize("\"a\" 'b'")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unknown_character_raises(self):
        with pytest.raises(XQuerySyntaxError):
            lexer.tokenize("POLICY {")

    def test_keyword_case_insensitive(self):
        token = lexer.tokenize("OR")[0]
        assert token.is_keyword("or")


class TestParseQuery:
    def test_figure18_style_query(self):
        query = parse_query(
            'if (document("applicable-policy")[POLICY[STATEMENT'
            '[PURPOSE[admin OR contact[@required = "always"]]]]]) '
            "then <block/>"
        )
        assert query.document.uri == "applicable-policy"
        assert query.then_element == "block"
        policy = query.document.predicates[0]
        assert isinstance(policy, PathExpr)
        assert policy.step == "POLICY"

    def test_then_return_form(self):
        query = parse_query(
            'if (document("p")) then return <request/>'
        )
        assert query.then_element == "request"

    def test_else_clause(self):
        query = parse_query(
            'if (document("p")[POLICY]) then <block/> else <request/>'
        )
        assert query.else_element == "request"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('if (document("p")) then <block/> extra')

    def test_missing_then_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('if (document("p")) <block/>')

    def test_document_requires_string(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("if (document(42)) then <block/>")


class TestParseCondition:
    def test_or_precedence(self):
        condition = parse_condition("a AND b OR c")
        assert isinstance(condition, OrExpr)
        assert isinstance(condition.operands[0], AndExpr)

    def test_parentheses_override(self):
        condition = parse_condition("a AND (b OR c)")
        assert isinstance(condition, AndExpr)
        assert isinstance(condition.operands[1], OrExpr)

    def test_not(self):
        condition = parse_condition("not(a)")
        assert isinstance(condition, NotExpr)
        assert isinstance(condition.operand, PathExpr)

    def test_attribute_comparison(self):
        condition = parse_condition('@required = "opt-in"')
        assert condition == AttributeComparison("required", "opt-in")

    def test_attribute_inequality(self):
        condition = parse_condition('@required != "always"')
        assert condition.negated

    def test_self_test(self):
        condition = parse_condition("self::admin")
        assert condition == SelfTest("admin")

    def test_wildcard_with_predicate(self):
        condition = parse_condition("*[not(self::a OR self::b)]")
        assert isinstance(condition, PathExpr)
        assert condition.step == "*"
        assert len(condition.predicates) == 1

    def test_nested_predicates(self):
        condition = parse_condition("A[B[C]]")
        inner = condition.predicates[0]
        assert inner.step == "B"
        assert inner.predicates[0].step == "C"

    def test_multiple_predicates_on_one_step(self):
        condition = parse_condition('A[B]["x" = @y]'.replace('"x" = @y',
                                                             '@y = "x"'))
        assert len(condition.predicates) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_condition("a b]")
