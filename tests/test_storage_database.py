"""Database wrapper: execution, transactions, timing, identifier quoting."""

import pytest

from repro.errors import StorageError
from repro.storage.database import Database, quote_ident, sql_literal


class TestQuoting:
    def test_plain_identifier_untouched(self):
        assert quote_ident("statement") == "statement"
        assert quote_ident("policy_id") == "policy_id"

    def test_keyword_quoted(self):
        # 'all' is an ACCESS value element and an SQL keyword.
        assert quote_ident("all") == '"all"'
        assert quote_ident("current") == '"current"'

    def test_odd_characters_quoted(self):
        assert quote_ident("Weird Name") == '"Weird Name"'
        assert quote_ident('has"quote') == '"has""quote"'

    def test_sql_literal_escapes_quotes(self):
        assert sql_literal("it's") == "'it''s'"
        assert sql_literal("plain") == "'plain'"

    def test_empty_identifier_quoted(self):
        assert quote_ident("") == '""'

    def test_uppercase_identifier_quoted(self):
        # The plain-identifier pattern is lowercase-only, so uppercase
        # (including uppercase keywords) always gets quoted.
        assert quote_ident("Policy") == '"Policy"'
        assert quote_ident("SELECT") == '"SELECT"'

    def test_unicode_identifier_quoted_and_roundtrips(self):
        name = "pöl_icy"
        assert quote_ident(name) == f'"{name}"'
        with Database() as db:
            db.execute(f"CREATE TABLE {quote_ident(name)} (x INTEGER)")
            db.execute(f"INSERT INTO {quote_ident(name)} VALUES (1)")
            assert db.table_count(name) == 1

    def test_every_keyword_roundtrips_as_column_name(self):
        from repro.storage.database import _SQL_KEYWORDS

        with Database() as db:
            for index, keyword in enumerate(sorted(_SQL_KEYWORDS)):
                table = f"t{index}"
                db.execute(
                    f"CREATE TABLE {table} ({quote_ident(keyword)} INTEGER)"
                )
                db.execute(f"INSERT INTO {table} VALUES (1)")
                assert db.scalar(
                    f"SELECT {quote_ident(keyword)} FROM {table}"
                ) == 1

    def test_sql_literal_edge_cases(self):
        assert sql_literal("") == "''"
        assert sql_literal("''") == "''''''"
        assert sql_literal("naïve — ünïcode") == "'naïve — ünïcode'"
        with Database() as db:
            assert db.scalar(f"SELECT {sql_literal(chr(39) * 3)}") == "'''"


class TestExecution:
    def test_basic_roundtrip(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER, y TEXT)")
            db.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))
            row = db.query_one("SELECT * FROM t")
            assert row["x"] == 1
            assert row["y"] == "one"

    def test_scalar(self):
        with Database() as db:
            assert db.scalar("SELECT 41 + 1") == 42
            assert db.scalar("SELECT 1 WHERE 0") is None

    def test_executemany(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
            assert db.table_count("t") == 5

    def test_bad_sql_raises_storage_error(self):
        with Database() as db:
            with pytest.raises(StorageError):
                db.execute("SELEKT broken")

    def test_executemany_bad_sql_raises_storage_error(self):
        with Database() as db:
            with pytest.raises(StorageError):
                db.executemany("INSERT INTO missing VALUES (?)", [(1,)])

    def test_executemany_arity_mismatch_raises_storage_error(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER, y INTEGER)")
            with pytest.raises(StorageError):
                db.executemany("INSERT INTO t VALUES (?, ?)", [(1, 2), (3,)])

    def test_executemany_constraint_violation_raises_storage_error(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
            with pytest.raises(StorageError):
                db.executemany("INSERT INTO t VALUES (?)",
                               [(1,), (2,), (1,)])

    def test_failed_executemany_records_no_stats(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            before = db.stats.statements
            with pytest.raises(StorageError):
                db.executemany("INSERT INTO nowhere VALUES (?)", [(1,)])
            assert db.stats.statements == before

    def test_executescript_bad_sql_raises_storage_error(self):
        with Database() as db:
            with pytest.raises(StorageError):
                db.executescript("CREATE TABLE ok (x); SELEKT broken;")

    def test_table_names(self):
        with Database() as db:
            db.executescript("CREATE TABLE b (x); CREATE TABLE a (x);")
            assert db.table_names() == ["a", "b"]


class TestTransactions:
    def test_commit_on_success(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
        assert db.table_count("t") == 1

    def test_rollback_on_error(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.commit()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("boom")
        assert db.table_count("t") == 0

    def test_swallowed_statement_failure_is_not_committed(self):
        """Regression: a statement fails inside the block, the caller
        swallows the error, and the context manager used to commit the
        half-applied transaction anyway."""
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.commit()
        with pytest.raises(StorageError, match="rolled back"):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
                try:
                    db.execute("INSERT INTO missing VALUES (1)")
                except StorageError:
                    pass  # swallowed — the transaction must still abort
        assert db.table_count("t") == 0

    def test_transaction_recovers_after_aborted_predecessor(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.commit()
        with pytest.raises(StorageError):
            with db.transaction():
                try:
                    db.execute("SELEKT nope")
                except StorageError:
                    pass
        with db.transaction():
            db.execute("INSERT INTO t VALUES (2)")
        assert db.table_count("t") == 1

    def test_failure_outside_transaction_does_not_poison_next_one(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.commit()
        try:
            db.execute("SELEKT nope")
        except StorageError:
            pass
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
        assert db.table_count("t") == 1


class TestStats:
    def test_statement_count_and_time_accumulate(self):
        db = Database()
        db.execute("SELECT 1")
        db.execute("SELECT 2")
        assert db.stats.statements == 2
        assert db.stats.seconds >= 0.0
        assert db.stats.last_seconds >= 0.0

    def test_reset(self):
        db = Database()
        db.execute("SELECT 1")
        db.stats.reset()
        assert db.stats.statements == 0
        assert db.stats.seconds == 0.0


class TestExplain:
    @pytest.fixture()
    def db(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
                   "grp INTEGER)")
        db.execute("CREATE INDEX idx_t_grp ON t(grp)")
        db.executemany("INSERT INTO t (name, grp) VALUES (?, ?)",
                       [(f"row{i}", i % 4) for i in range(64)])
        db.commit()
        return db

    def test_index_probe_reported_as_search(self, db):
        steps = db.explain("SELECT * FROM t WHERE grp = ?", (2,))
        assert len(steps) == 1
        step = steps[0]
        assert step.uses_index and not step.is_scan
        assert step.table == "t"
        assert "idx_t_grp" in step.detail

    def test_primary_key_lookup_is_not_a_scan(self, db):
        (step,) = db.explain("SELECT * FROM t WHERE id = ?", (7,))
        assert step.uses_index and not step.is_scan

    def test_full_scan_reported_as_scan(self, db):
        (step,) = db.explain("SELECT * FROM t WHERE name = ?", ("row3",))
        assert step.is_scan and not step.uses_index
        assert step.table == "t"

    def test_parameters_optional(self, db):
        (step,) = db.explain("SELECT COUNT(*) FROM t")
        assert step.table == "t"

    def test_invalid_sql_raises_storage_error(self, db):
        with pytest.raises(StorageError):
            db.explain("SELECT * FROM missing_table")

    def test_explain_does_not_skew_query_stats(self, db):
        db.stats.reset()
        db.explain("SELECT * FROM t WHERE grp = ?", (1,))
        assert db.stats.statements == 0

    def test_str_is_planner_detail(self, db):
        (step,) = db.explain("SELECT * FROM t WHERE grp = 1")
        assert str(step) == step.detail


class TestAuditCounters:
    def test_record_audit_accumulates_and_resets(self):
        db = Database()
        db.stats.record_audit(2)
        db.stats.record_audit(0)
        assert db.stats.plans_audited == 2
        assert db.stats.audit_findings == 2
        db.stats.reset()
        assert db.stats.plans_audited == 0
        assert db.stats.audit_findings == 0
