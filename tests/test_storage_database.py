"""Database wrapper: execution, transactions, timing, identifier quoting."""

import pytest

from repro.errors import StorageError
from repro.storage.database import Database, quote_ident, sql_literal


class TestQuoting:
    def test_plain_identifier_untouched(self):
        assert quote_ident("statement") == "statement"
        assert quote_ident("policy_id") == "policy_id"

    def test_keyword_quoted(self):
        # 'all' is an ACCESS value element and an SQL keyword.
        assert quote_ident("all") == '"all"'
        assert quote_ident("current") == '"current"'

    def test_odd_characters_quoted(self):
        assert quote_ident("Weird Name") == '"Weird Name"'
        assert quote_ident('has"quote') == '"has""quote"'

    def test_sql_literal_escapes_quotes(self):
        assert sql_literal("it's") == "'it''s'"
        assert sql_literal("plain") == "'plain'"


class TestExecution:
    def test_basic_roundtrip(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER, y TEXT)")
            db.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))
            row = db.query_one("SELECT * FROM t")
            assert row["x"] == 1
            assert row["y"] == "one"

    def test_scalar(self):
        with Database() as db:
            assert db.scalar("SELECT 41 + 1") == 42
            assert db.scalar("SELECT 1 WHERE 0") is None

    def test_executemany(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
            assert db.table_count("t") == 5

    def test_bad_sql_raises_storage_error(self):
        with Database() as db:
            with pytest.raises(StorageError):
                db.execute("SELEKT broken")

    def test_table_names(self):
        with Database() as db:
            db.executescript("CREATE TABLE b (x); CREATE TABLE a (x);")
            assert db.table_names() == ["a", "b"]


class TestTransactions:
    def test_commit_on_success(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
        assert db.table_count("t") == 1

    def test_rollback_on_error(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.commit()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("boom")
        assert db.table_count("t") == 0


class TestStats:
    def test_statement_count_and_time_accumulate(self):
        db = Database()
        db.execute("SELECT 1")
        db.execute("SELECT 2")
        assert db.stats.statements == 2
        assert db.stats.seconds >= 0.0
        assert db.stats.last_seconds >= 0.0

    def test_reset(self):
        db = Database()
        db.execute("SELECT 1")
        db.stats.reset()
        assert db.stats.statements == 0
        assert db.stats.seconds == 0.0
