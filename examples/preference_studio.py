#!/usr/bin/env python3
"""The deployment tools of Section 3.3, as a library workflow.

The paper surveys the tooling ecosystem: P3PEdit and the Tivoli wizard
generate *policies* from questionnaires; the JRC APPEL editor builds
*preferences* from predefined rules.  This script plays a hosting
provider's onboarding flow:

1. a site owner answers the policy wizard's questions,
2. a user composes a preference from named rule templates,
3. the server checks them against each other (with an explanation trace),
4. the owner revises the policy and reviews the structured diff.

Run:  python examples/preference_studio.py
"""

from dataclasses import replace

from repro.appel import compose_preference, template_keys
from repro.appel.explain import ExplainingEngine
from repro.p3p import PolicyAnswers, build_policy, serialize_policy
from repro.p3p.diff import diff_policies
from repro.p3p.model import PurposeValue


def main() -> None:
    # -- 1. The site owner's questionnaire ------------------------------
    answers = PolicyAnswers(
        company_name="Northwind Books",
        homepage="http://books.example.com",
        collects_payment_data=True,
        does_marketing=True,
        marketing_needs_consent=False,   # oops — no opt-in offered
        does_analytics=True,
    )
    policy = build_policy(answers)
    print(f"Wizard produced policy {policy.name!r} with "
          f"{policy.statement_count()} statements "
          f"({len(serialize_policy(policy)) / 1024:.1f} KB of XML)")

    # -- 2. The user's preference, from templates ------------------------
    print("\nAvailable rule templates:", ", ".join(template_keys()))
    preference = compose_preference(
        ["no-uncontrolled-marketing", "no-third-parties",
         "require-disputes"],
        description="cautious shopper",
    )
    print(f"Composed preference with {preference.rule_count()} rules")

    # -- 3. Check, with explanation --------------------------------------
    engine = ExplainingEngine()
    explanation = engine.explain(policy, preference)
    print(f"\nDecision: {explanation.behavior!r} "
          f"(rule {explanation.rule_index})")
    print(explanation.rules[explanation.rule_index].render())

    # -- 4. Revise and diff -----------------------------------------------
    print("\nThe owner adds opt-in to marketing and re-publishes...")
    fixed_statements = tuple(
        replace(statement, purposes=tuple(
            PurposeValue(p.name, "opt-in")
            if p.name in ("contact", "individual-decision") else p
            for p in statement.purposes))
        for statement in policy.statements
    )
    revised = replace(policy,
                      opturi="http://books.example.com/opt.html",
                      statements=fixed_statements)

    diff = diff_policies(policy, revised)
    print("What changed:")
    print(diff.render())
    print(f"tightens privacy: {diff.tightens_privacy()}")

    outcome = engine.explain(revised, preference)
    print(f"\nDecision against the revision: {outcome.behavior!r}")
    assert outcome.behavior == "request"
    print("OK: the cautious shopper now accepts Northwind Books.")


if __name__ == "__main__":
    main()
