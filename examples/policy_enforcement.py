#!/usr/bin/env python3
"""Enforcement: the shredded policy tables as access-control metadata.

Section 4.2 of the paper: "The privacy data tables built for checking
preferences against policies may serve as meta data for ensuring that
policies are followed" — and Section 7 leaves implementing such mechanisms
as future work (pointing at the Hippocratic-database design).  This script
is that mechanism: Volga's own applications must pass every internal data
access through the Privacy Constraint Validator, which answers from the
same tables the preference matcher queries.

Run:  python examples/policy_enforcement.py
"""

import datetime

from repro import PolicyServer
from repro.corpus.volga import volga_policy
from repro.enforce import (
    PURPOSE,
    AccessRequest,
    PrivacyValidator,
    RetentionAuditor,
)

def main() -> None:
    # The same server database that answers preference checks.
    server = PolicyServer()
    policy_id = server.install_policy(volga_policy(),
                                      site="volga.example.com").policy_id
    validator = PrivacyValidator(server.db)
    auditor = RetentionAuditor(server.db)

    print("Volga's applications request data accesses:\n")
    attempts = [
        ("fulfilment", AccessRequest("jane", policy_id, "current",
                                     "delivery" if False else "ours",
                                     "#user.home-info.postal.street")),
        ("recommendation email", AccessRequest(
            "jane", policy_id, "contact", "ours",
            "#user.home-info.online.email")),
        ("marketing call list", AccessRequest(
            "jane", policy_id, "telemarketing", "ours",
            "#user.home-info.telecom.telephone.number")),
        ("sell to data broker", AccessRequest(
            "jane", policy_id, "current", "unrelated", "#user.name")),
    ]
    for label, request in attempts:
        decision = validator.check(request)
        verdict = "ALLOW" if decision.allowed else "DENY "
        print(f"  [{verdict}] {label:22s} -> {decision.reason}")

    print("\nJane opts in to recommendation emails...")
    validator.consent.grant("jane", policy_id, PURPOSE, "contact")
    decision = validator.check(attempts[1][1])
    print(f"  [{'ALLOW' if decision.allowed else 'DENY '}] "
          f"recommendation email -> {decision.reason}")

    print("\nAudit trail of denied accesses:")
    for entry in validator.denied_accesses(policy_id):
        print(f"  user={entry['user_id']} purpose={entry['purpose']} "
              f"recipient={entry['recipient']} ref={entry['ref']}")

    # Retention: shipping data promised 'stated-purpose' (short-lived);
    # a 90-day-old record violates that promise.
    print("\nRetention audit:")
    old = (datetime.datetime.now(datetime.timezone.utc)
           - datetime.timedelta(days=90))
    auditor.record_stored(policy_id, "#user.home-info.postal", old)
    auditor.record_stored(policy_id, "#user.home-info.online.email", old)
    for finding in auditor.audit(policy_id):
        print(f"  OVERDUE {finding.ref}: class "
              f"{finding.retention!r}, {finding.age_days:.0f} days old "
              f"(limit {finding.limit_days:.0f})")
    print("\nOK: the same database enforces what it promised.")


if __name__ == "__main__":
    main()
