#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Volga is a bookseller whose P3P policy (paper Figure 1) collects name,
postal address and purchase data to fulfil orders, and — with explicit
opt-in — emails personalized recommendations.  Jane (Figure 2) blocks any
purpose beyond the current transaction unless she can opt in, and blocks
data sharing with unknown parties.

This script parses both documents, installs the policy in a server-side
database, shows the APPEL rule translated into SQL (the paper's Figure 15
shape), and runs the check: Volga's policy conforms to Jane's preferences.

Run:  python examples/quickstart.py
"""

from repro import (
    AppelEngine,
    PolicyServer,
    parse_policy,
    parse_ruleset,
    validate_policy,
)
from repro.corpus.volga import (
    JANE_PREFERENCE_XML,
    VOLGA_POLICY_NO_OPTIN_XML,
    VOLGA_POLICY_XML,
    VOLGA_REFERENCE_XML,
)
from repro.translate import OptimizedSqlTranslator, applicable_policy_literal

SITE = "volga.example.com"


def main() -> None:
    # -- 1. Parse and validate the site's policy -------------------------
    policy = parse_policy(VOLGA_POLICY_XML)
    problems = validate_policy(policy)
    print(f"Volga's policy: {policy.statement_count()} statements, "
          f"{len(problems)} validation problem(s)")

    # -- 2. Parse the user's APPEL preference ----------------------------
    jane = parse_ruleset(JANE_PREFERENCE_XML)
    print(f"Jane's preference: {jane.rule_count()} rules, "
          f"behaviors {jane.behaviors()}")

    # -- 3. Install policy + reference file on the server (Figure 5) -----
    server = PolicyServer()
    report = server.install_policy(policy, site=SITE)
    server.install_reference_file(VOLGA_REFERENCE_XML, SITE)
    print(f"Shredded into the database: policy_id={report.policy_id}, "
          f"{report.categories} category rows "
          f"(base-schema expansion done once, at shred time)")

    # -- 4. Show the translated SQL for Jane's first rule ----------------
    translated = OptimizedSqlTranslator().translate_ruleset(
        jane, applicable_policy_literal(report.policy_id))
    print("\nJane's first rule as SQL (Figure 15 shape):")
    print(translated.rules[0].sql)

    # -- 5. The server-side check (Figure 6) ------------------------------
    result = server.check(SITE, "/catalog/dostoevsky", jane)
    print(f"\nServer check on /catalog/dostoevsky: behavior="
          f"{result.behavior!r} (rule {result.rule_index}) "
          f"in {result.elapsed_seconds * 1000:.2f} ms")
    assert result.behavior == "request", "Volga conforms to Jane"

    # -- 6. The paper's counterfactual ------------------------------------
    # Without the opt-in on individual-decision, Jane's first rule fires.
    careless = parse_policy(VOLGA_POLICY_NO_OPTIN_XML)
    outcome = AppelEngine().evaluate(careless, jane)
    print(f"Without the opt-in, the native engine says: "
          f"{outcome.behavior!r} (rule {outcome.rule_index})")
    assert outcome.behavior == "block"

    print("\nOK: the Section 2.2 walk-through reproduces.")


if __name__ == "__main__":
    main()
