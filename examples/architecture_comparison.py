#!/usr/bin/env python3
"""Client-centric vs server-centric vs hybrid, on the same browsing session.

Reproduces the trade-offs of Section 4.2 quantitatively:

* all three architectures reach identical decisions;
* the client-centric agent downloads the policy and re-processes it
  (including category augmentation) on every check — the Figure 20 gap;
* the hybrid keeps the reference file client-side but checks in SQL.

Also prints a miniature Figure 20 over the synthetic corpus.

Run:  python examples/architecture_comparison.py
"""

import statistics
import time

from repro import PolicyServer, parse_policy
from repro.bench.harness import figure20, run_matching_grid
from repro.bench.reporting import format_figure20
from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import VOLGA_POLICY_XML, VOLGA_REFERENCE_XML
from repro.p3p.reference import parse_reference_file
from repro.server import ClientAgent, HybridAgent, Site

HOST = "volga.example.com"
PAGES = [f"/aisle/{i}" for i in range(20)]


def build_world():
    policy = parse_policy(VOLGA_POLICY_XML)
    server = PolicyServer()
    server.install_policy(policy, site=HOST)
    server.install_reference_file(VOLGA_REFERENCE_XML, HOST)
    site = Site(host=HOST,
                reference_file=parse_reference_file(VOLGA_REFERENCE_XML),
                policies={"volga": policy})
    return server, site


def browse_with_client(site, preference):
    agent = ClientAgent(preference)
    times, decisions = [], []
    for page in PAGES:
        result = agent.check(site, page)
        times.append(result.elapsed_seconds)
        decisions.append(result.behavior)
    return times, decisions, site.total_fetches


def browse_with_server(server, preference):
    times, decisions = [], []
    for page in PAGES:
        result = server.check(HOST, page, preference)
        times.append(result.elapsed_seconds)
        decisions.append(result.behavior)
    return times, decisions


def browse_with_hybrid(server, site, preference):
    agent = HybridAgent(preference, server)
    times, decisions = [], []
    for page in PAGES:
        result = agent.check(site, page)
        times.append(result.elapsed_seconds)
        decisions.append(result.behavior)
    return times, decisions


def main() -> None:
    suite = jrc_suite()
    preference = suite["High"]

    server, site = build_world()
    client_times, client_decisions, fetches = browse_with_client(
        site, preference)

    server, site = build_world()
    server_times, server_decisions = browse_with_server(server, preference)

    hybrid_server, site = build_world()
    hybrid_times, hybrid_decisions = browse_with_hybrid(
        hybrid_server, site, preference)

    assert client_decisions == server_decisions == hybrid_decisions
    print(f"Browsing session: {len(PAGES)} pages at {HOST}, "
          f"preference level High")
    print(f"  decisions identical across architectures: "
          f"{set(client_decisions)}")
    print(f"  client-centric : {statistics.fmean(client_times)*1000:7.2f} "
          f"ms/check, {fetches} document fetches")
    print(f"  server-centric : {statistics.fmean(server_times)*1000:7.2f} "
          f"ms/check, 0 document fetches")
    print(f"  hybrid         : {statistics.fmean(hybrid_times)*1000:7.2f} "
          f"ms/check, 1 reference-file fetch")

    print("\nMiniature Figure 20 over the 29-policy corpus "
          "(this takes a few seconds)...")
    start = time.perf_counter()
    samples = run_matching_grid(fortune_corpus(), suite, repeat=1)
    print(format_figure20(figure20(samples)))
    print(f"(grid of {len(samples)} matches in "
          f"{time.perf_counter() - start:.1f} s)")


if __name__ == "__main__":
    main()
