#!/usr/bin/env python3
"""A server-centric P3P deployment for a multi-site hosting provider.

Demonstrates the operational advantages Section 4.2 claims for the
proposed architecture:

* one database serves many sites' policies and reference files;
* thin clients just send APPEL — translation and matching happen in SQL;
* the server's check log gives site owners **conflict analytics** the
  client-centric architecture cannot provide;
* a policy revision is a versioned database update, and its effect on the
  user population is immediately measurable.

Run:  python examples/bookstore_server.py
"""

from dataclasses import replace

from repro import PolicyServer, parse_policy
from repro.corpus.preferences import jrc_suite
from repro.corpus.volga import VOLGA_POLICY_XML, VOLGA_REFERENCE_XML
from repro.p3p.model import PurposeValue
from repro.server import blocking_rules, policy_conflicts, uncovered_uris

SITES = {
    "volga.example.com": VOLGA_POLICY_XML,
    # A site that telemarkets without consent — privacy-conscious users
    # will block it.
    "pushy.example.com": VOLGA_POLICY_XML.replace(
        '<individual-decision required="opt-in"/>',
        "<telemarketing/>",
    ).replace('name="volga"', 'name="pushy"'),
}

#: Simulated user population: how many users run each preference level.
POPULATION = {
    "Very High": 5,
    "High": 10,
    "Medium": 25,
    "Low": 40,
    "Very Low": 20,
}


def build_server() -> PolicyServer:
    server = PolicyServer()
    for host, policy_xml in SITES.items():
        policy = parse_policy(policy_xml)
        server.install_policy(policy, site=host)
        server.install_reference_file(
            VOLGA_REFERENCE_XML
            .replace("volga.example.com", host)
            .replace("#volga", f"#{policy.name}"),
            host,
        )
    return server


def simulate_traffic(server: PolicyServer) -> None:
    suite = jrc_suite()
    for host in SITES:
        for level, users in POPULATION.items():
            preference = suite[level]
            for user in range(users):
                server.check(host, f"/shop/item{user % 7}", preference)
        # A few requests to the ungoverned legacy area.
        server.check(host, "/legacy/archive", suite["Low"])


def print_owner_dashboard(server: PolicyServer) -> None:
    print(f"\n{server.check_count()} checks logged; "
          f"{server.cache_size()} cached preference translations")
    print("\nPer-policy conflict report (what client-centric P3P "
          "cannot tell a site owner):")
    for report in policy_conflicts(server.db):
        print(f"  policy {report.policy_name!r}: {report.checks} checks, "
              f"{report.blocks} blocks ({report.block_rate:.0%}), "
              f"{report.distinct_preferences} distinct preferences")
        for rule in blocking_rules(server.db, report.policy_id):
            print(f"    blocked by preference rule #{rule.rule_index} "
                  f"x{rule.fires}")
    gaps = uncovered_uris(server.db, limit=3)
    if gaps:
        print("\nURIs with no covering policy (deployment gaps):")
        for uri, hits in gaps:
            print(f"  {uri}  ({hits} requests)")


def revise_policy(server: PolicyServer) -> None:
    """The pushy site reacts to its block rate: telemarketing becomes
    opt-in, installed as version 2."""
    print("\n--- pushy.example.com revises its policy "
          "(telemarketing -> opt-in) ---")
    old = server.versions.active_policy("pushy")
    fixed_statements = tuple(
        replace(
            statement,
            purposes=tuple(
                PurposeValue(p.name, "opt-in")
                if p.name == "telemarketing" else p
                for p in statement.purposes
            ),
        )
        for statement in old.statements
    )
    server.install_policy(replace(old, opturi="http://pushy.example.com/opt",
                                  statements=fixed_statements),
                          site="pushy.example.com")
    server.install_reference_file(
        VOLGA_REFERENCE_XML
        .replace("volga.example.com", "pushy.example.com")
        .replace("#volga", "#pushy"),
        "pushy.example.com",
    )
    versions = server.versions.history("pushy")
    print("  version history:",
          [(v.version, "active" if v.active else "superseded")
           for v in versions])

    suite = jrc_suite()
    before_after = {}
    for level in ("Very High", "High", "Medium"):
        result = server.check("pushy.example.com", "/shop/item0",
                              suite[level])
        before_after[level] = result.behavior
    print("  decisions against version 2:", before_after)


def main() -> None:
    server = build_server()
    simulate_traffic(server)
    print_owner_dashboard(server)
    revise_policy(server)
    print("\nOK: server-centric deployment with analytics and versioning.")


if __name__ == "__main__":
    main()
