#!/usr/bin/env python3
"""Compact P3P policies and the IE6-style cookie gate (paper Section 3.2).

Internet Explorer 6 "allows the website to place a cookie only if the site
provides a compact version of the applicable P3P privacy policy, and that
policy is compatible with the user's preference".  This script encodes the
synthetic corpus into compact policies (`P3P: CP="..."` header tokens),
runs an IE6-style acceptance rule over them, and compares the coarse
token-level decision with the full APPEL check — showing where the lossy
compact encoding is stricter than the real policy warrants.

Run:  python examples/cookie_compact_policies.py
"""

from repro import AppelEngine
from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import high_preference
from repro.p3p.compact import (
    CookiePreference,
    decode_compact,
    encode_compact,
)


def main() -> None:
    corpus = fortune_corpus()
    gate = CookiePreference(
        blocked_purposes=frozenset({"telemarketing", "other-purpose",
                                    "individual-decision"}),
        blocked_recipients=frozenset({"unrelated", "public"}),
    )
    engine = AppelEngine()
    full_preference = high_preference()

    print(f"{'site':22s} {'compact tokens':>14s} {'cookie?':>8s} "
          f"{'full check':>11s}")
    accepted = rejected = disagreements = 0
    for policy in corpus:
        compact_text = encode_compact(policy)
        compact = decode_compact(compact_text)
        cookie_ok = gate.accepts(compact)
        full = engine.evaluate(policy, full_preference).behavior
        full_ok = full != "block"

        if cookie_ok:
            accepted += 1
        else:
            rejected += 1
        if cookie_ok != full_ok:
            disagreements += 1
        marker = "" if cookie_ok == full_ok else "  <-- differs"
        print(f"{policy.name:22s} {len(compact_text.split()):14d} "
              f"{'yes' if cookie_ok else 'NO':>8s} "
              f"{'allow' if full_ok else 'BLOCK':>11s}{marker}")

    print(f"\ncookies accepted: {accepted}, rejected: {rejected}")
    print(f"token-level vs full-policy disagreements: {disagreements} "
          "(the information compact policies lose)")

    example = corpus[0]
    print(f"\nExample header for {example.name}:")
    print(f'  P3P: CP="{encode_compact(example)}"')


if __name__ == "__main__":
    main()
