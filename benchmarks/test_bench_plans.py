"""E11: plan compilation — literal per-policy SQL vs compiled plans.

The tentpole claims, pinned as shape assertions:

* a warm compiled-plan check is exactly one SQL round-trip, however
  many rules the preference has; the literal pipeline pays one per rule
  probed, so its per-check trip count is at least the plan's;
* the plan pipeline keeps one translation per preference where the
  literal pipeline keeps one per (preference, policy) cell — and
  correspondingly less SQL text pinned in cache memory;
* both pipelines' statement-cache hit rates are well-formed, and the
  plan pipeline's is perfect: five statement texts serve the whole
  grid.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import plan_compilation_experiment
from repro.bench.reporting import format_plan_compilation


@pytest.fixture(scope="module")
def rows(corpus, suite):
    return plan_compilation_experiment(corpus[:8], suite)


@pytest.fixture(scope="module")
def by_mode(rows):
    return {row.mode: row for row in rows}


class TestGridShape:
    def test_both_pipelines_present(self, by_mode):
        assert set(by_mode) == {"literal", "plan"}

    def test_same_grid_answered(self, by_mode, suite):
        literal, plan = by_mode["literal"], by_mode["plan"]
        assert literal.checks == plan.checks == \
            literal.policies * len(suite)
        assert literal.seconds > 0 and plan.seconds > 0


class TestRoundTrips:
    def test_plan_is_exactly_one_trip_per_warm_check(self, by_mode):
        assert by_mode["plan"].round_trips_per_check == 1.0

    def test_literal_pays_at_least_as_many_trips(self, by_mode):
        assert by_mode["literal"].round_trips_per_check >= \
            by_mode["plan"].round_trips_per_check


class TestCacheFootprint:
    def test_one_translation_per_preference_vs_per_cell(self, by_mode,
                                                        suite):
        literal, plan = by_mode["literal"], by_mode["plan"]
        assert plan.translations == len(suite)
        assert literal.translations == len(suite) * literal.policies

    def test_plan_pins_less_sql_text(self, by_mode):
        assert by_mode["plan"].cached_sql_chars < \
            by_mode["literal"].cached_sql_chars

    def test_statement_cache_rates_well_formed(self, by_mode):
        for row in by_mode.values():
            assert 0.0 <= row.statement_cache_hit_rate <= 1.0

    def test_plan_statement_cache_is_perfect_when_warm(self, by_mode):
        # One statement text per preference, all prepared in the warm
        # pass: the measured region re-executes cached programs only.
        assert by_mode["plan"].statement_cache_hit_rate == 1.0


class TestReporting:
    def test_formatter_renders_both_rows(self, rows):
        report = format_plan_compilation(rows)
        assert "literal" in report
        assert "compiled" in report
        assert "one round-trip per check" in report
