"""E6 — warm vs cold matching (Section 6.3.2's warm-up protocol).

The paper reports cold-minus-warm deltas of ~1.4 s (APPEL engine, JVM
class loading), ~1 s (SQL, DB2 start-up), ~3 s (XQuery, XTABLE).  Our
substrate has no JVM or DB2 server, so the absolute deltas shrink to
translation-cache and page-cache effects; the shape claim is that the
database paths have a measurable first-match premium.
"""

from __future__ import annotations

from repro.bench.harness import warm_cold_experiment
from repro.bench.reporting import format_warm_cold
from repro.engines import SqlMatchEngine


class TestE6WarmCold:
    def test_warm_cold_table(self, benchmark, corpus, suite):
        results = benchmark.pedantic(
            warm_cold_experiment, args=(corpus[:8], suite),
            kwargs={"warm_repeats": 3}, rounds=1, iterations=1,
        )
        print()
        print(format_warm_cold(results))

        by_engine = {r.engine: r for r in results}
        # Database engines pay a first-match premium.
        assert by_engine["sql"].cold_seconds > \
            by_engine["sql"].warm_seconds
        assert by_engine["xquery"].cold_seconds > \
            by_engine["xquery"].warm_seconds

    def test_sql_translation_cache_emulates_warm_deployment(
            self, benchmark, corpus, suite):
        """With cached translations (preferences shipped as SQL), repeat
        checks skip conversion entirely — the steady-state deployment the
        paper sketches in Section 6.3.2."""
        engine = SqlMatchEngine(cache_translations=True)
        handle = engine.install(corpus[0])
        cold = engine.match(handle, suite["High"])

        warm = benchmark(engine.match, handle, suite["High"])
        assert warm.convert_seconds <= cold.convert_seconds
