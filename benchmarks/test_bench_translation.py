"""Translation-cost microbenchmarks (the 'Convert' column, isolated).

Figure 20 reports SQL conversion at roughly half the SQL total; the
XQuery column folds in both APPEL->XQuery translation and XTABLE's
XQuery->SQL generation.  These benchmarks separate every translation
stage so the conversion-time claims can be inspected directly:

* APPEL -> SQL (optimized schema)  — the paper's 'Convert'
* APPEL -> SQL (generic schema)    — more subqueries, more text
* APPEL -> XQuery                  — cheap string generation
* XQuery parse + XTABLE compile    — the expensive middleware stage
"""

from __future__ import annotations

from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    applicable_policy_literal,
)
from repro.translate.appel_to_xquery import XQueryTranslator
from repro.xquery.parser import parse_query
from repro.xquery.to_sql import XTableCompiler

_APPLICABLE = applicable_policy_literal(1)


class TestAppelToSql:
    def test_convert_high_optimized(self, benchmark, suite):
        translator = OptimizedSqlTranslator()
        benchmark(translator.translate_ruleset, suite["High"], _APPLICABLE)

    def test_convert_very_high_optimized(self, benchmark, suite):
        translator = OptimizedSqlTranslator()
        benchmark(translator.translate_ruleset, suite["Very High"],
                  _APPLICABLE)

    def test_convert_high_generic(self, benchmark, suite):
        translator = GenericSqlTranslator()
        benchmark(translator.translate_ruleset, suite["High"], _APPLICABLE)


class TestAppelToXQuery:
    def test_convert_high(self, benchmark, suite):
        translator = XQueryTranslator()
        benchmark(translator.translate_ruleset, suite["High"])


class TestXTableCompilation:
    def test_parse_and_compile_high(self, benchmark, suite):
        translated = XQueryTranslator().translate_ruleset(suite["High"])
        sources = [rule.xquery for rule in translated.rules]

        def parse_and_compile():
            for source in sources:
                compiler = XTableCompiler()
                compiler.compile_query(parse_query(source), _APPLICABLE)

        benchmark(parse_and_compile)

    def test_generated_sql_sizes(self, suite):
        """The generic-schema SQL is substantially larger text — one of
        the reasons the XQuery middleware path costs more."""
        optimized = OptimizedSqlTranslator().translate_ruleset(
            suite["High"], _APPLICABLE)
        generic = GenericSqlTranslator().translate_ruleset(
            suite["High"], _APPLICABLE)
        optimized_size = sum(len(rule.sql) for rule in optimized.rules)
        generic_size = sum(len(rule.sql) for rule in generic.rules)
        assert generic_size > 1.5 * optimized_size
