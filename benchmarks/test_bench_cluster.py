"""E13: check throughput scaling across a sharded cluster.

E9 measured one HTTP server; E13 puts the same check workload against a
sharded, replicated cluster behind the consistent-hash router and asks
how aggregate throughput scales with shard count.

Acceptance: at 4 shards the cluster must serve >= 2.5x the 1-shard
check throughput — **on a host with at least 4 cores**.  Shards are
processes; on fewer cores they time-slice one another and the curve is
flat by physics, not by defect, so the strict assertion is gated on
``os.cpu_count()`` (and ``BENCH_E13.json`` records the count for the
same reason).  The shape assertions below run everywhere.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.export import cluster_results
from repro.bench.harness import cluster_experiment, cluster_speedups
from repro.bench.reporting import format_cluster

SHARD_COUNTS = (1, 2, 4)
MANY_CORES = (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="module")
def rows(tmp_path_factory):
    """The E13 grid, computed once.

    Real spawned workers when the host has the cores to scale onto
    (that run backs the acceptance assertion); in-process workers
    otherwise — same code paths, fraction of the start-up cost.
    """
    workdir = tmp_path_factory.mktemp("bench-cluster")
    return cluster_experiment(shard_counts=SHARD_COUNTS,
                              corpus_size=12, users=4,
                              checks_per_user=25,
                              directory=str(workdir),
                              in_process=not MANY_CORES)


class TestClusterTrajectory:
    def test_grid_is_complete(self, rows):
        assert [row.shards for row in rows] == list(SHARD_COUNTS)

    def test_every_row_did_real_work(self, rows):
        for row in rows:
            assert row.checks == 4 * 25
            assert row.seconds > 0
            assert row.checks_per_second > 0

    def test_checks_route_directly_not_through_fallback(self, rows):
        """The topology-aware clients should serve the storm on the
        direct path; the router fallback is for failures, of which a
        healthy cluster has none."""
        for row in rows:
            assert row.direct_checks == row.checks
            assert row.router_fallbacks == 0

    def test_speedups_anchor_at_one_shard(self, rows):
        speedups = cluster_speedups(rows)
        assert speedups[1] == pytest.approx(1.0)
        assert set(speedups) == set(SHARD_COUNTS)

    @pytest.mark.skipif(not MANY_CORES,
                        reason="scaling needs >= 4 cores; shards "
                               "time-slice on fewer")
    def test_four_shards_reach_2_5x(self, rows):
        """The PR's acceptance bar: near-linear scaling to 4 shards."""
        assert cluster_speedups(rows)[4] >= 2.5

    def test_report_renders(self, rows):
        table = format_cluster(rows)
        assert "Shards" in table
        for shards in SHARD_COUNTS:
            assert f" {shards} " in table


class TestClusterExport:
    def test_document_shape(self, tmp_path):
        document = cluster_results(shard_counts=(1,), corpus_size=4,
                                   users=2, checks_per_user=4,
                                   in_process=True)
        assert document["meta"]["cpu_count"] == os.cpu_count()
        assert document["meta"]["in_process"] is True
        (row,) = document["e13_cluster"]["rows"]
        assert row["shards"] == 1
        assert row["checks"] == 8
        assert document["e13_cluster"]["speedups"] == {"1": 1.0}
