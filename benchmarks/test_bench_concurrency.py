"""E8: serving-layer throughput under concurrency (beyond the paper).

The paper benchmarks one check at a time; ROADMAP's north star is "heavy
traffic from millions of users".  These benchmarks pin the trajectory:

* ``serial`` — the seed-style deployment (one shared connection,
  rollback journal, check-log commit per request) driven by 1 thread;
* ``pooled`` — the concurrent serving layer (WAL connection pool,
  per-thread readers, batched group-committed check log) at 1/4/16
  threads.

Acceptance floor: pooled at 4 threads must deliver at least 2x the
checks/sec of the 1-thread serial baseline, and a 16-thread run must
log every check exactly once.  (This box may have a single core — the
pooled speedup comes from WAL plus commit batching, not parallel CPU.)
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    _concurrency_requests,
    _concurrency_server,
    concurrency_experiment,
)
from repro.corpus.volga import jane_preference


@pytest.fixture(scope="module")
def trajectory(tmp_path_factory):
    """The full E8 grid, computed once."""
    workdir = tmp_path_factory.mktemp("bench-concurrency")
    rows = concurrency_experiment(directory=str(workdir), checks=600)
    return {(row.mode, row.threads): row for row in rows}


class TestThroughputTrajectory:
    def test_grid_is_complete(self, trajectory):
        assert set(trajectory) == {
            ("serial", 1), ("pooled", 1), ("pooled", 4), ("pooled", 16),
        }

    def test_pooled_4_threads_at_least_2x_serial_baseline(self, trajectory):
        serial = trajectory[("serial", 1)].checks_per_second
        pooled = trajectory[("pooled", 4)].checks_per_second
        assert pooled >= 2 * serial, (
            f"pooled@4 {pooled:.0f} checks/s vs serial@1 {serial:.0f}"
        )

    def test_pooled_beats_serial_at_every_thread_count(self, trajectory):
        serial = trajectory[("serial", 1)].checks_per_second
        for threads in (1, 4, 16):
            assert trajectory[("pooled", threads)].checks_per_second > \
                serial

    def test_16_threads_completes_with_sane_timing(self, trajectory):
        row = trajectory[("pooled", 16)]
        assert row.checks == 600
        assert row.seconds > 0


class TestExactlyOnceUnderLoad:
    def test_16_thread_run_drops_and_duplicates_nothing(self, tmp_path):
        server = _concurrency_server(str(tmp_path / "once.db"),
                                     log_batch_size=256,
                                     log_flush_interval=0.05)
        try:
            jane = jane_preference()
            requests = [
                ("volga.example.com", f"/catalog/unique-{i}", jane)
                for i in range(960)
            ]
            results = server.serve_many(requests, threads=16)
            assert len(results) == len(requests)
            with server.pool.read() as db:
                total = db.scalar("SELECT COUNT(*) FROM check_log")
                distinct = db.scalar(
                    "SELECT COUNT(DISTINCT uri) FROM check_log"
                )
            assert total == len(requests), "dropped or duplicated rows"
            assert distinct == len(requests), "duplicated rows"
        finally:
            server.close()


class TestMicrobenchmarks:
    """pytest-benchmark samples for the BENCH_*.json trajectory."""

    @pytest.fixture(scope="class")
    def pooled_server(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench-pool") / "pooled.db"
        server = _concurrency_server(str(path), log_batch_size=256,
                                     log_flush_interval=0.05)
        yield server
        server.close()

    @pytest.fixture(scope="class")
    def batch(self):
        return _concurrency_requests(200)

    def _bench(self, benchmark, server, batch, threads):
        server.serve_many(batch[:32], threads=threads)  # warm
        result = benchmark.pedantic(
            server.serve_many, args=(batch,),
            kwargs={"threads": threads}, rounds=3, iterations=1,
        )
        assert len(result) == len(batch)
        benchmark.extra_info["threads"] = threads
        benchmark.extra_info["checks_per_round"] = len(batch)

    def test_serve_many_1_thread(self, benchmark, pooled_server, batch):
        self._bench(benchmark, pooled_server, batch, threads=1)

    def test_serve_many_4_threads(self, benchmark, pooled_server, batch):
        self._bench(benchmark, pooled_server, batch, threads=4)

    def test_serve_many_16_threads(self, benchmark, pooled_server, batch):
        self._bench(benchmark, pooled_server, batch, threads=16)

    def test_serial_baseline_check(self, benchmark, tmp_path):
        """The seed-style per-check-commit cost, for the ratio."""
        from repro.storage.database import Database

        server = _concurrency_server(Database(str(tmp_path / "serial.db")),
                                     log_batch_size=1)
        try:
            jane = jane_preference()
            server.check("volga.example.com", "/catalog/item-0", jane)
            benchmark(server.check, "volga.example.com",
                      "/catalog/item-1", jane)
        finally:
            server.close()
