"""E15: structural XQuery compilation — shape assertions.

The acceptance claims of the structural-join compiler, pinned:

* the grid has all three engines (direct SQL, naive XTABLE,
  structural) over all five levels;
* the Medium structural cell is *filled* (zero failures) while the
  Medium XTABLE cell stays unavailable, as in Figure 21;
* on every level where both XQuery paths run, the structural path is
  strictly faster than the naive XTABLE emulation (speedup > 1);
* the export document carries the same facts for regression diffing.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    structural_speedups,
    structural_sql_gap,
    structural_xquery_experiment,
)
from repro.bench.reporting import format_structural


@pytest.fixture(scope="module")
def rows(corpus, suite):
    return structural_xquery_experiment(corpus[:8], suite)


@pytest.fixture(scope="module")
def cells(rows):
    return {(row.level, row.engine): row for row in rows}


class TestGridShape:
    def test_all_engines_and_levels_present(self, rows, suite):
        engines = {row.engine for row in rows}
        levels = {row.level for row in rows}
        assert engines == {"sql", "xquery", "xquery-structural"}
        assert levels == set(suite)

    def test_structural_never_fails(self, rows):
        for row in rows:
            if row.engine == "xquery-structural":
                assert row.failures == 0, row.level
                assert not row.unavailable, row.level


class TestMediumCell:
    def test_xtable_medium_still_blank(self, cells):
        assert cells[("Medium", "xquery")].unavailable

    def test_structural_medium_filled(self, cells):
        cell = cells[("Medium", "xquery-structural")]
        assert not cell.unavailable
        assert cell.total.average > 0


class TestSpeedups:
    def test_structural_strictly_faster_than_xtable(self, rows):
        speedups = structural_speedups(rows)
        # Medium is excluded (no XTABLE number); everything else compares.
        assert set(speedups) == {"Very High", "High", "Low", "Very Low"}
        for level, speedup in speedups.items():
            assert speedup > 1.0, (level, speedup)

    def test_sql_gap_defined_for_every_level(self, rows, suite):
        gap = structural_sql_gap(rows)
        assert set(gap) == set(suite)
        for level, ratio in gap.items():
            assert ratio > 0, level


class TestReporting:
    def test_formatter_mentions_the_filled_cell(self, rows):
        report = format_structural(rows, structural_speedups(rows),
                                   structural_sql_gap(rows))
        assert "Medium" in report
        assert "blank XQuery cell is filled" in report
        assert "Structural" in report
