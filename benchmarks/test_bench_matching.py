"""E4 / E5 — preference matching across the three engines (Figures 20/21).

Paper numbers (seconds): APPEL engine avg 2.63, SQL convert 0.08 + query
0.08 = 0.16 total, XQuery 1.65; "the SQL implementation turns out to be
more than 15 times faster ... If we just compare the matching time, the SQL
implementation is 30 times faster."  Figure 21 additionally shows the
XQuery column blank for the Medium preference ("too complex for DB2").

Shape assertions reproduced here:

* ordering: SQL total < XQuery total < APPEL engine;
* SQL query-only advantage exceeds its end-to-end advantage;
* the XQuery engine fails exactly on the Medium level;
* Very Low is the cheapest level for the database engines.
"""

from __future__ import annotations

import statistics

from repro.bench.harness import figure20, figure21
from repro.bench.reporting import format_figure20, format_figure21
from repro.engines import (
    NativeAppelMatchEngine,
    SqlMatchEngine,
    XTableMatchEngine,
)


def _median_policy(corpus):
    from repro.p3p.serializer import serialize_policy

    return sorted(corpus, key=lambda p: len(serialize_policy(p)))[14]


class TestSingleMatchMicrobenchmarks:
    """One (High preference x median policy) match per engine."""

    def test_match_appel_engine(self, benchmark, corpus, suite):
        engine = NativeAppelMatchEngine()
        handle = engine.install(_median_policy(corpus))
        engine.warm_up(handle, suite["High"])
        outcome = benchmark(engine.match, handle, suite["High"])
        assert not outcome.failed

    def test_match_sql(self, benchmark, corpus, suite):
        engine = SqlMatchEngine()
        handle = engine.install(_median_policy(corpus))
        engine.warm_up(handle, suite["High"])
        outcome = benchmark(engine.match, handle, suite["High"])
        assert not outcome.failed

    def test_match_sql_query_only(self, benchmark, corpus, suite):
        """The 'preferences pre-translated to SQL' deployment of
        Section 6.3.2 — conversion amortized away."""
        engine = SqlMatchEngine(cache_translations=True)
        handle = engine.install(_median_policy(corpus))
        engine.warm_up(handle, suite["High"])
        outcome = benchmark(engine.match, handle, suite["High"])
        assert not outcome.failed

    def test_match_xquery(self, benchmark, corpus, suite):
        engine = XTableMatchEngine()
        handle = engine.install(_median_policy(corpus))
        engine.warm_up(handle, suite["High"])
        outcome = benchmark(engine.match, handle, suite["High"])
        assert not outcome.failed


class TestE4Figure20:
    def test_figure20(self, benchmark, grid_samples):
        rows = benchmark.pedantic(figure20, args=(grid_samples,),
                                  rounds=1, iterations=1)
        print()
        print(format_figure20(rows))

        by_engine = {row.engine: row for row in rows}
        appel = by_engine["appel"].total.average
        sql_total = by_engine["sql"].total.average
        sql_query = by_engine["sql"].query.average
        xquery = by_engine["xquery"].total.average

        # The paper's ordering: SQL < XQuery < native APPEL.
        assert sql_total < xquery < appel
        # Substantial end-to-end advantage (paper: >15x; we claim >3x).
        assert appel / sql_total > 3
        # Query-only advantage exceeds end-to-end (paper: 30x vs 15x).
        assert appel / sql_query > appel / sql_total

    def test_engines_decide_identically(self, grid_samples):
        groups = {}
        for sample in grid_samples:
            if sample.failed:
                continue
            key = (sample.level, sample.policy_index)
            groups.setdefault(key, set()).add(sample.behavior)
        assert all(len(v) == 1 for v in groups.values())


class TestE5Figure21:
    def test_figure21(self, benchmark, grid_samples):
        rows = benchmark.pedantic(figure21, args=(grid_samples,),
                                  rounds=1, iterations=1)
        print()
        print(format_figure21(rows))

        cells = {(r.level, r.engine): r for r in rows}
        # The blank Medium/XQuery cell of Figure 21.
        assert cells[("Medium", "xquery")].unavailable
        for level in ("Very High", "High", "Low", "Very Low"):
            assert not cells[(level, "xquery")].unavailable

        # Very Low is the cheapest SQL level (1 trivial rule).
        sql_levels = {level: cells[(level, "sql")].total.average
                      for level in ("Very High", "High", "Medium", "Low",
                                    "Very Low")}
        assert sql_levels["Very Low"] == min(sql_levels.values())
        # Very High costs more than Low for SQL (more rules to run).
        assert sql_levels["Very High"] > sql_levels["Low"]

    def test_appel_cost_is_level_insensitive(self, grid_samples):
        """Paper Figure 21: the APPEL engine's times are nearly constant
        across levels (augmentation dominates, not rule evaluation)."""
        appel = {}
        for sample in grid_samples:
            if sample.engine == "appel":
                appel.setdefault(sample.level, []).append(
                    sample.total_seconds)
        averages = [statistics.fmean(v) for v in appel.values()]
        assert max(averages) < 2.5 * min(averages)
