"""E9: HTTP serving overhead over the in-process serving layer.

E8 measured the serving layer in process; E9 puts the same workload
behind ``P3PHttpServer`` on loopback and measures what the wire costs:
JSON encode/decode, one HTTP round trip per check (keep-alive), and the
admission gate.  Both sides flush the check log inside the timed region
so durability is equal.

Acceptance ceiling: at 16 client threads the HTTP path must stay within
3x of the in-process ``serve_many`` baseline — the protocol must not
dominate the database work the paper is about.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import http_load_experiment, http_overhead
from repro.corpus.volga import (
    VOLGA_POLICY_XML,
    VOLGA_REFERENCE_XML,
    jane_preference,
)
from repro.net.client import HttpClientAgent
from repro.net.httpd import serve

THREAD_COUNTS = (1, 4, 16)


@pytest.fixture(scope="module")
def load(tmp_path_factory):
    """The full E9 grid, computed once."""
    workdir = tmp_path_factory.mktemp("bench-http")
    rows = http_load_experiment(directory=str(workdir),
                                thread_counts=THREAD_COUNTS, checks=320)
    return {(row.mode, row.threads): row for row in rows}


class TestHttpLoadTrajectory:
    def test_grid_is_complete(self, load):
        assert set(load) == {
            (mode, threads)
            for mode in ("in-process", "http")
            for threads in THREAD_COUNTS
        }

    def test_every_cell_served_the_full_batch(self, load):
        for row in load.values():
            assert row.checks == 320
            assert row.seconds > 0

    def test_overhead_at_16_threads_within_3x(self, load):
        rows = list(load.values())
        overhead = http_overhead(rows)
        assert overhead[16] <= 3.0, (
            f"HTTP@16 is {overhead[16]:.2f}x the in-process baseline"
        )

    def test_overhead_reported_for_every_thread_count(self, load):
        overhead = http_overhead(list(load.values()))
        assert set(overhead) == set(THREAD_COUNTS)
        for threads, multiple in overhead.items():
            assert multiple > 1.0, (
                f"HTTP@{threads} faster than in-process — timing bug?"
            )


class TestExactlyOnceOverHttp:
    def test_checks_survive_the_wire_exactly_once(self, tmp_path):
        site = "volga.example.com"
        server = serve(str(tmp_path / "wire-once.db"))
        thread = server.run_in_thread()
        try:
            with HttpClientAgent(server.base_url,
                                 jane_preference()) as agent:
                agent.install_policy(VOLGA_POLICY_XML, site=site,
                                     reference_file=VOLGA_REFERENCE_XML)
                uris = [f"/catalog/wire-{i}" for i in range(96)]
                for chunk in range(0, len(uris), 32):
                    agent.check_batch(
                        [(site, uri) for uri in uris[chunk:chunk + 32]])
            server.policy_server.flush_log()
            with server.policy_server.pool.read() as db:
                total = db.scalar("SELECT COUNT(*) FROM check_log")
                distinct = db.scalar(
                    "SELECT COUNT(DISTINCT uri) FROM check_log")
            assert total == len(uris), "dropped or duplicated rows"
            assert distinct == len(uris), "duplicated rows"
        finally:
            server.close()
            thread.join(timeout=5)


class TestMicrobenchmarks:
    """pytest-benchmark samples for the BENCH_*.json trajectory."""

    @pytest.fixture(scope="class")
    def wire(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench-wire") / "wire.db"
        server = serve(str(path))
        thread = server.run_in_thread()
        agent = HttpClientAgent(server.base_url, jane_preference())
        agent.install_policy(VOLGA_POLICY_XML, site="volga.example.com",
                             reference_file=VOLGA_REFERENCE_XML)
        agent.check("volga.example.com", "/catalog/warm")
        yield agent
        agent.close()
        server.close()
        thread.join(timeout=5)

    def test_single_check_round_trip(self, benchmark, wire):
        result = benchmark(wire.check, "volga.example.com",
                           "/catalog/item-1")
        assert result.covered

    def test_batch_of_32_round_trip(self, benchmark, wire):
        batch = [("volga.example.com", f"/catalog/b{i}")
                 for i in range(32)]
        results = benchmark(wire.check_batch, batch)
        assert len(results) == 32
