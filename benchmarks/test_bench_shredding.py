"""E3 — shredding policies into the optimized schema (Section 6.3.1).

Paper numbers (DB2 UDB 7.2 on dual 600 MHz NT4): avg 3.19 s, max 11.94 s,
min 1.17 s, with the conclusion that "since a policy changes infrequently,
the lifetime cost of shredding can be considered negligible".  The shape we
reproduce: shredding costs a few matches' worth of time, so amortized over
many preference checks it is negligible; the largest policy takes several
times the smallest.
"""

from __future__ import annotations

from repro.bench.harness import shredding_experiment
from repro.bench.reporting import format_shredding
from repro.p3p.serializer import serialize_policy
from repro.storage.database import Database
from repro.storage.shredder import PolicyStore


def _fresh_store() -> PolicyStore:
    return PolicyStore(Database())


class TestE3Shredding:
    def test_shred_smallest_policy(self, benchmark, corpus):
        smallest = min(corpus,
                       key=lambda p: len(serialize_policy(p)))
        store = _fresh_store()
        benchmark(store.install_policy, smallest)

    def test_shred_largest_policy(self, benchmark, corpus):
        largest = max(corpus,
                      key=lambda p: len(serialize_policy(p)))
        store = _fresh_store()
        benchmark(store.install_policy, largest)

    def test_shred_whole_corpus(self, benchmark, corpus):
        def shred_all():
            store = _fresh_store()
            for policy in corpus:
                store.install_policy(policy)
            return store

        store = benchmark(shred_all)
        assert store.statement_count() == 54

    def test_shredding_table(self, benchmark, corpus):
        """The Section 6.3.1 table, with its two shape claims."""
        result = benchmark.pedantic(
            shredding_experiment, args=(corpus,), kwargs={"repeat": 1},
            rounds=1, iterations=1,
        )
        print()
        print(format_shredding(result))

        # Max policy costs several times the min (paper: 11.94 vs 1.17).
        assert result.aggregate.maximum > 2 * result.aggregate.minimum
        # Amortization claim: one shred costs less than ~50 SQL matches
        # (a policy is matched far more often than it changes).
        assert result.aggregate.average < 0.5  # seconds; trivially true
