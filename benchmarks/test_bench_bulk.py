"""E12: set-at-a-time corpus matching vs the materialized cache.

The tentpole claims, pinned as shape assertions:

* per-policy matching pays one round trip per corpus policy; the bulk
  plan decides the whole corpus in exactly one statement, and the
  cached mode reads the materialized decisions in exactly one;
* all three modes agree on the decision set (the experiment itself
  raises if they disagree — these tests also pin the counts);
* the cached read beats the per-policy sweep by a wide margin even at
  smoke scale (the acceptance bar is 5x at 1000 policies; at 150 we
  only insist it is not slower).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bulk_matching_experiment
from repro.bench.reporting import format_bulk_matching

SMOKE_CORPUS = 150


@pytest.fixture(scope="module")
def rows():
    return bulk_matching_experiment(corpus_size=SMOKE_CORPUS)


@pytest.fixture(scope="module")
def by_mode(rows):
    return {row.mode: row for row in rows}


class TestGridShape:
    def test_all_three_modes_present(self, by_mode):
        assert set(by_mode) == {"per-policy", "bulk", "cached"}

    def test_same_corpus_answered(self, by_mode):
        policies = {row.policies for row in by_mode.values()}
        assert policies == {SMOKE_CORPUS}

    def test_modes_agree_on_decision_count(self, by_mode):
        decisions = {row.decisions for row in by_mode.values()}
        assert len(decisions) == 1
        assert 0 < decisions.pop() <= SMOKE_CORPUS


class TestRoundTrips:
    def test_per_policy_pays_one_trip_per_policy(self, by_mode):
        assert by_mode["per-policy"].round_trips == SMOKE_CORPUS

    def test_bulk_is_exactly_one_statement(self, by_mode):
        assert by_mode["bulk"].round_trips == 1

    def test_cached_is_exactly_one_statement(self, by_mode):
        assert by_mode["cached"].round_trips == 1


class TestSpeedup:
    def test_cached_not_slower_than_per_policy(self, by_mode):
        # The acceptance criterion (>= 5x at 1000 policies) is run by
        # `p3pdb bench bulk`; a smoke corpus only pins the direction.
        assert by_mode["cached"].seconds <= by_mode["per-policy"].seconds


class TestReporting:
    def test_formatter_renders_all_modes_and_the_bar(self, rows):
        report = format_bulk_matching(rows)
        for mode in ("per-policy", "bulk", "cached"):
            assert mode in report
        assert "acceptance" in report
