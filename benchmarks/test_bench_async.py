"""E14: the async front end — connection scaling and batching wins.

Two claims back the asyncio server:

* **Connection scaling** — the threaded front end spends one handler
  thread (and its stack) per open connection; the async front end holds
  10× the connections on one event loop plus a fixed executor pool.
  Acceptance: at 10× the connections the async server's thread growth
  stays flat (a small constant, not a function of the connection count).
* **Batching throughput** — under the E9 skewed load (one preference,
  eight URIs, decision cache off) the micro-batching window must beat
  the same async server with the window closed.

Both assertions are gated on ``os.cpu_count() >= 4`` like E13: on tiny
hosts the client threads, the loop, and the executor time-slice one
core and the throughput comparison measures the scheduler, not the
server.  The shape assertions run everywhere.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.export import async_results
from repro.bench.harness import (
    batching_load_experiment,
    batching_speedup,
    connection_scaling_experiment,
)
from repro.bench.reporting import format_async

MANY_CORES = (os.cpu_count() or 1) >= 4

CONNECTIONS = 8
MULTIPLIER = 10


@pytest.fixture(scope="module")
def scaling():
    return connection_scaling_experiment(connections=CONNECTIONS,
                                         multiplier=MULTIPLIER)


@pytest.fixture(scope="module")
def batching():
    return batching_load_experiment(threads=8, checks=300, warmup=24)


class TestConnectionScaling:
    def test_grid_is_complete(self, scaling):
        assert [row.frontend for row in scaling] == ["threaded", "async"]
        threaded, asynch = scaling
        assert threaded.connections == CONNECTIONS
        assert asynch.connections == CONNECTIONS * MULTIPLIER

    def test_threaded_grows_a_thread_per_connection(self, scaling):
        threaded = scaling[0]
        # ThreadingHTTPServer dedicates a handler thread to every open
        # keep-alive connection (give or take one for scheduling races).
        assert threaded.thread_delta >= threaded.connections - 2

    def test_async_stays_flat_at_10x_connections(self, scaling):
        """The tentpole claim: 10× the connections, bounded threads."""
        asynch = scaling[1]
        # The loop thread plus (at most) the executor pool — never a
        # function of the connection count.
        assert asynch.thread_delta <= 6
        assert asynch.thread_delta < asynch.connections / 10

    def test_async_thread_cost_beats_threaded_per_connection(self,
                                                             scaling):
        threaded, asynch = scaling
        assert asynch.threads_per_connection < \
            threaded.threads_per_connection / 5
        assert asynch.est_stack_bytes <= threaded.est_stack_bytes

    def test_stack_estimate_prices_the_delta(self, scaling):
        for row in scaling:
            assert row.est_stack_bytes % max(1, row.thread_delta or 1) == 0
            assert row.est_stack_bytes >= 0


class TestBatchingThroughput:
    def test_grid_is_complete(self, batching):
        assert sorted(row.mode for row in batching) == \
            ["batched", "unbatched"]
        for row in batching:
            assert row.checks == 300
            assert row.seconds > 0
            assert row.checks_per_second > 0

    def test_unbatched_never_coalesces(self, batching):
        unbatched = next(r for r in batching if r.mode == "unbatched")
        assert unbatched.batches == unbatched.checks
        assert unbatched.coalesced == 0

    def test_batched_coalesces_under_skew(self, batching):
        batched = next(r for r in batching if r.mode == "batched")
        assert batched.batches < batched.checks
        assert batched.coalesced > 0

    @pytest.mark.skipif(not MANY_CORES,
                        reason="throughput comparison needs >= 4 cores; "
                               "clients, loop and executor time-slice "
                               "on fewer")
    def test_batching_window_wins(self, batching):
        """The PR's acceptance bar: micro-batching must pay under
        skewed load, not just break even."""
        assert batching_speedup(batching) >= 1.15

    def test_report_renders(self, scaling, batching):
        table = format_async(scaling, batching)
        assert "Frontend" in table
        assert "batched" in table
        assert "threaded" in table


class TestAsyncExport:
    def test_document_shape(self):
        document = async_results(connections=4, multiplier=5,
                                 threads=4, checks=64)
        assert document["meta"]["cpu_count"] == os.cpu_count()
        assert document["meta"]["multiplier"] == 5
        section = document["e14_async"]
        frontends = [row["frontend"]
                     for row in section["connection_scaling"]]
        assert frontends == ["threaded", "async"]
        assert {row["mode"] for row in section["batching"]} == \
            {"batched", "unbatched"}
        for row in section["batching"]:
            assert row["checks"] == 64
        assert section["batching_speedup"] is not None
