"""E10: what does the fault-tolerance layer cost?

The retry policy and ``check_key`` stamping ride on every check — if
they were expensive the serving numbers of E8/E9 would be fiction.  The
acceptance bound is a zero-fault overhead within 5% of the no-retry
client; the shape test allows measurement noise on top of that, but a
retry layer costing a multiple of the baseline fails loudly.  Under
injected response drops the client must heal every check and the row
must show it paid for recovery with actual retries.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    fault_tolerance_experiment,
    retry_overhead,
)

CHECKS = 240
FAULT_EVERY = 6


@pytest.fixture(scope="module")
def rows(tmp_path_factory):
    """The full E10 run, computed once."""
    workdir = tmp_path_factory.mktemp("bench-faults")
    return fault_tolerance_experiment(directory=str(workdir),
                                      checks=CHECKS,
                                      fault_every=FAULT_EVERY)


class TestFaultToleranceShape:
    def test_all_three_modes_reported(self, rows):
        assert [row.mode for row in rows] == \
            ["no-retry", "retry", "retry-faults"]

    def test_every_mode_completed_the_full_batch(self, rows):
        for row in rows:
            assert row.checks == CHECKS
            assert row.seconds > 0
            assert row.per_check_seconds > 0

    def test_zero_fault_modes_injected_nothing(self, rows):
        by_mode = {row.mode: row for row in rows}
        assert by_mode["no-retry"].faults_injected == 0
        assert by_mode["retry"].faults_injected == 0

    def test_retry_overhead_is_reported_and_small(self, rows):
        overhead = retry_overhead(rows)
        assert overhead is not None
        # The acceptance target is <= 1.05; the bench report carries the
        # real number, the gate here tolerates scheduler noise.
        assert overhead <= 1.25, (
            f"zero-fault retry layer costs {overhead:.2f}x the "
            "no-retry client"
        )

    def test_faulted_run_recovered_via_retries(self, rows):
        faulted = rows[-1]
        assert faulted.mode == "retry-faults"
        # Every fault_every-th response was dropped after processing …
        assert faulted.faults_injected >= CHECKS // FAULT_EVERY
        # … and every drop had to be healed by a re-send.
        assert faulted.retries >= faulted.faults_injected
