"""Scaling ablations beyond the paper's fixed-size experiment.

The paper matched against one applicable policy at a time; a production
policy server hosts many policies and sites.  These benchmarks answer the
deployment questions the paper's architecture raises:

* does SQL matching degrade as the store grows? (it should not — the
  ApplicablePolicy subquery pins one policy id, and the per-policy
  indexes keep the nested EXISTS probes constant-time);
* how does matching cost scale with *policy size* (statements)?
* how does the native engine scale with policy size? (linearly — it
  re-processes the whole document per match).
"""

from __future__ import annotations

import statistics

from repro.corpus.policies import fortune_corpus
from repro.engines import NativeAppelMatchEngine, SqlMatchEngine
from repro.p3p.model import Policy


def _policy_with_statements(base: Policy, count: int) -> Policy:
    from dataclasses import replace

    statements = tuple(
        base.statements[i % len(base.statements)] for i in range(count)
    )
    return replace(base, statements=statements)


class TestStoreSizeScaling:
    """Matching time vs number of policies in the store."""

    def _engine_with_n_policies(self, n: int):
        engine = SqlMatchEngine()
        corpus = fortune_corpus()
        handles = []
        for i in range(n):
            handles.append(engine.install(corpus[i % len(corpus)]))
        return engine, handles

    def test_match_in_store_of_10(self, benchmark, suite):
        engine, handles = self._engine_with_n_policies(10)
        engine.warm_up(handles[0], suite["High"])
        benchmark(engine.match, handles[5], suite["High"])

    def test_match_in_store_of_200(self, benchmark, suite):
        engine, handles = self._engine_with_n_policies(200)
        engine.warm_up(handles[0], suite["High"])
        benchmark(engine.match, handles[100], suite["High"])

    def test_store_growth_does_not_degrade_matching(self, suite):
        """20x more policies must not mean anywhere near 20x slower."""
        times = {}
        for n in (10, 200):
            engine, handles = self._engine_with_n_policies(n)
            target = handles[n // 2]
            engine.warm_up(target, suite["High"])
            samples = [
                engine.match(target, suite["High"]).total_seconds
                for _ in range(30)
            ]
            times[n] = statistics.median(samples)
        assert times[200] < 4 * times[10], times


class TestPolicySizeScaling:
    """Matching time vs statements per policy."""

    def _sized_policy(self, statements: int) -> Policy:
        return _policy_with_statements(fortune_corpus()[9], statements)

    def test_sql_match_2_statements(self, benchmark, suite):
        engine = SqlMatchEngine()
        handle = engine.install(self._sized_policy(2))
        engine.warm_up(handle, suite["High"])
        benchmark(engine.match, handle, suite["High"])

    def test_sql_match_32_statements(self, benchmark, suite):
        engine = SqlMatchEngine()
        handle = engine.install(self._sized_policy(32))
        engine.warm_up(handle, suite["High"])
        benchmark(engine.match, handle, suite["High"])

    def test_native_match_2_statements(self, benchmark, suite):
        engine = NativeAppelMatchEngine()
        handle = engine.install(self._sized_policy(2))
        benchmark(engine.match, handle, suite["High"])

    def test_native_match_32_statements(self, benchmark, suite):
        engine = NativeAppelMatchEngine()
        handle = engine.install(self._sized_policy(32))
        benchmark(engine.match, handle, suite["High"])

    def test_native_engine_scales_with_document_size(self, suite):
        """The native engine re-processes the document per match, so a
        16x larger policy costs several times more; the SQL engine's
        indexed probes grow far more slowly."""
        native = NativeAppelMatchEngine()
        small = native.install(self._sized_policy(2))
        large = native.install(self._sized_policy(32))

        def median_native(handle):
            return statistics.median(
                native.match(handle, suite["High"]).total_seconds
                for _ in range(10)
            )

        native_small = median_native(small)
        native_large = median_native(large)
        assert native_large > 2 * native_small
