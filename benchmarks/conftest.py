"""Shared benchmark fixtures: the Section 6 workload, built once."""

from __future__ import annotations

import pytest

from repro.corpus.policies import fortune_corpus
from repro.corpus.preferences import jrc_suite


@pytest.fixture(scope="session")
def corpus():
    """The 29-policy synthetic Fortune-1000 corpus (Section 6.2)."""
    return fortune_corpus()


@pytest.fixture(scope="session")
def suite():
    """The five JRC-style preferences (Figure 19)."""
    return jrc_suite()


@pytest.fixture(scope="session")
def grid_samples(corpus, suite):
    """The full matching grid (E4/E5), computed once per session."""
    from repro.bench.harness import run_matching_grid

    return run_matching_grid(corpus, suite)
