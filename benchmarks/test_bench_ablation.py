"""E7 — ablations behind the headline result.

1. Section 6.3.2's profiling claim: "Before matching a preference against
   a policy, the APPEL engine first augments every data element in the
   policy with the corresponding categories predefined in the P3P base
   schema ... this augmentation accounts for most of the difference in
   performance."  We time the native engine with and without its
   per-match document preparation.

2. Schema ablation: how much the Section 5.4 optimizations (Figure 14
   vs the generic Figure 8 schema) buy for the SQL path.

3. Translation-cache ablation: the "preferences as SQL" deployment.
"""

from __future__ import annotations

from repro.appel.engine import AppelEngine
from repro.bench.harness import ablation_experiment
from repro.bench.reporting import format_ablation
from repro.engines import GenericSqlMatchEngine, SqlMatchEngine


class TestE7NativeEngineAblation:
    def test_ablation_table(self, benchmark, corpus, suite):
        result = benchmark.pedantic(
            ablation_experiment, args=(corpus[:10], suite),
            rounds=1, iterations=1,
        )
        print()
        print(format_ablation(result))

        # The profiling claim: per-match preparation (render + parse +
        # schema-document augmentation) dominates the native engine.
        assert result.augmentation_share > 0.5
        # Augmentation alone (vs no-augment) is the biggest single factor.
        assert result.native_full.average > \
            2 * result.native_no_augment.average
        # Schema ablation: Figure 14 beats Figure 8.
        assert result.sql_optimized.average < result.sql_generic.average

    def test_prepare_full(self, benchmark, corpus):
        """Document preparation with augmentation (per-match cost)."""
        engine = AppelEngine(augment=True)
        benchmark(engine.prepare, corpus[9])

    def test_prepare_without_augmentation(self, benchmark, corpus):
        engine = AppelEngine(augment=False)
        benchmark(engine.prepare, corpus[9])

    def test_match_on_prepared_document(self, benchmark, corpus, suite):
        """Pure rule evaluation once preparation is amortized away."""
        engine = AppelEngine()
        prepared = engine.prepare(corpus[9])
        benchmark(engine.evaluate_prepared, prepared, suite["High"])


class TestE7SchemaAblation:
    def test_optimized_schema_match(self, benchmark, corpus, suite):
        engine = SqlMatchEngine()
        handle = engine.install(corpus[9])
        engine.warm_up(handle, suite["High"])
        benchmark(engine.match, handle, suite["High"])

    def test_generic_schema_match(self, benchmark, corpus, suite):
        engine = GenericSqlMatchEngine()
        handle = engine.install(corpus[9])
        engine.warm_up(handle, suite["High"])
        benchmark(engine.match, handle, suite["High"])

    def test_generic_schema_agrees_with_optimized(self, corpus, suite):
        optimized = SqlMatchEngine()
        generic = GenericSqlMatchEngine()
        for policy in corpus[:6]:
            h1 = optimized.install(policy)
            h2 = generic.install(policy)
            for preference in suite.values():
                a = optimized.match(h1, preference)
                b = generic.match(h2, preference)
                assert (a.behavior, a.rule_index) == \
                    (b.behavior, b.rule_index)
