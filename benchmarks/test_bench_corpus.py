"""E1 / E2 — workload statistics (Section 6.2 dataset, Figure 19 table).

Regenerates and prints both workload tables, asserts the calibration
targets, and benchmarks the generators themselves (corpus generation is
part of every experiment's setup cost).
"""

from __future__ import annotations

from repro.appel.analysis import ruleset_stats
from repro.bench.reporting import (
    format_dataset_stats,
    format_preference_stats,
)
from repro.corpus.policies import corpus_statistics, fortune_corpus
from repro.corpus.preferences import jrc_suite


class TestE1DatasetStats:
    def test_corpus_generation(self, benchmark, corpus):
        """Benchmark generating the 29-policy corpus from scratch."""
        policies = benchmark(fortune_corpus)
        stats = corpus_statistics(policies)

        print()
        print(format_dataset_stats(stats))

        # Section 6.2 calibration targets.
        assert stats.policy_count == 29
        assert stats.total_statements == 54
        assert 1.0 <= stats.min_kb <= 2.5
        assert 9.0 <= stats.max_kb <= 14.0
        assert 2.5 <= stats.avg_kb <= 5.5

    def test_corpus_statistics_cost(self, benchmark, corpus):
        """Statistics require serializing all 29 policies."""
        stats = benchmark(corpus_statistics, corpus)
        assert stats.policy_count == 29


class TestE2PreferenceStats:
    def test_suite_generation(self, benchmark):
        """Benchmark building the five-level suite."""
        suite = benchmark(jrc_suite)

        rows = [
            (level, ruleset_stats(rs).rule_count,
             ruleset_stats(rs).size_kb)
            for level, rs in suite.items()
        ]
        print()
        print(format_preference_stats(rows))

        # Figure 19's rule counts, exactly.
        assert [rules for _, rules, _ in rows] == [10, 7, 4, 2, 1]
        # Sizes decrease monotonically from Very High to Very Low apart
        # from the Medium/High inversion tolerance.
        sizes = {level: size for level, _, size in rows}
        assert sizes["Very High"] > sizes["Low"] > sizes["Very Low"]
