"""XQuery over a native XML store (Section 4, architecture variation 3).

Policies are stored as XML documents in a single-table document store
(install-time augmentation included — the store plays the server's role).
Each match translates the APPEL preference to XQuery (conversion time) and
evaluates the queries directly over the parsed document (query time,
including the per-match document parse a document store pays).
"""

from __future__ import annotations

import time

from repro import xmlutil
from repro.appel.model import Ruleset
from repro.engines.base import MatchEngine, MatchOutcome
from repro.errors import UnknownPolicyError
from repro.p3p.model import Policy
from repro.p3p.serializer import serialize_policy
from repro.storage.database import Database
from repro.translate.appel_to_xquery import XQueryTranslator
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_query


class NativeXmlStore:
    """A minimal native XML store: one row per policy document."""

    def __init__(self, db: Database | None = None):
        self.db = db if db is not None else Database()
        self.db.execute(
            "CREATE TABLE IF NOT EXISTS xml_policy ("
            "  policy_id INTEGER PRIMARY KEY,"
            "  document  TEXT NOT NULL"
            ")"
        )

    def store(self, policy: Policy) -> int:
        document = serialize_policy(policy.augmented(), indent=False)
        cursor = self.db.execute(
            "INSERT INTO xml_policy (document) VALUES (?)", (document,)
        )
        self.db.commit()
        return cursor.lastrowid

    def fetch(self, policy_id: int) -> str:
        document = self.db.scalar(
            "SELECT document FROM xml_policy WHERE policy_id = ?",
            (policy_id,),
        )
        if document is None:
            raise UnknownPolicyError(f"no XML policy with id {policy_id}")
        return document


class XQueryNativeMatchEngine(MatchEngine):
    """APPEL -> XQuery, evaluated against the native XML store."""

    name = "xquery-native"

    def __init__(self, db: Database | None = None):
        self.store = NativeXmlStore(db)
        self.translator = XQueryTranslator()

    def install(self, policy: Policy) -> int:
        return self.store.store(policy)

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        document = self.store.fetch(handle)

        start = time.perf_counter()
        translated = self.translator.translate_ruleset(ruleset)
        queries = [parse_query(rule.xquery) for rule in translated.rules]
        converted = time.perf_counter()

        root = xmlutil.parse_string(document)
        behavior: str | None = None
        rule_index: int | None = None
        for index, query in enumerate(queries):
            outcome = evaluate_query(query, root)
            if outcome is not None:
                behavior = outcome
                rule_index = index
                break
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )
