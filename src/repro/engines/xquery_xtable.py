"""XQuery through the XTABLE emulator (the paper's 'XQuery' column).

The pipeline mirrors Section 6.1: "XTABLE was responsible for generating
SQL from XQuery, which was then run against DB2.  The XQuery numbers
include both the time for converting APPEL into XQuery, and the time taken
by XTABLE to convert XQuery into SQL."

Conversion time here = APPEL -> XQuery translation + XQuery parse + XTABLE
SQL generation; query time = execution of the generated SQL over the
generic schema.  A rule whose generated SQL exceeds the complexity budget
produces a failed outcome, reproducing the blank Medium cell of Figure 21.
"""

from __future__ import annotations

import time

from repro.appel.model import Ruleset
from repro.engines.base import MatchEngine, MatchOutcome
from repro.errors import TranslationTooComplexError
from repro.p3p.model import Policy
from repro.storage.database import Database
from repro.storage.generic_shredder import GenericPolicyStore
from repro.translate.appel_to_xquery import XQueryTranslator
from repro.translate.plan import APPLICABLE_POLICY_PARAM
from repro.xquery.parser import parse_query
from repro.xquery.to_sql import DEFAULT_COMPLEXITY_LIMIT, XTableCompiler


class XTableMatchEngine(MatchEngine):
    """APPEL -> XQuery -> (XTABLE) SQL -> generic schema."""

    name = "xquery"

    def __init__(self, db: Database | None = None,
                 complexity_limit: int = DEFAULT_COMPLEXITY_LIMIT):
        self.store = GenericPolicyStore(db)
        self.db = self.store.db
        self.translator = XQueryTranslator()
        self.complexity_limit = complexity_limit

    def install(self, policy: Policy) -> int:
        return self.store.install_policy(policy)

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        self.store.require_policy(handle)
        start = time.perf_counter()
        try:
            compiled = self._compile(ruleset)
        except TranslationTooComplexError as exc:
            return MatchOutcome(
                behavior=None,
                rule_index=None,
                convert_seconds=time.perf_counter() - start,
                query_seconds=0.0,
                error=str(exc),
            )
        converted = time.perf_counter()

        behavior: str | None = None
        rule_index: int | None = None
        for index, (rule_behavior, sql) in enumerate(compiled):
            row = self.db.query_one(sql, (handle,))
            if row is not None:
                behavior = rule_behavior
                rule_index = index
                break
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )

    def _compile(self, ruleset: Ruleset) -> list[tuple[str, str]]:
        """Policy-independent per-rule SQL: the applicable policy is a
        ``?`` bind (``APPLICABLE_POLICY_PARAM``), not interpolated text,
        so the compiled list is reusable across installed policies."""
        translated = self.translator.translate_ruleset(ruleset)
        compiled: list[tuple[str, str]] = []
        for rule in translated.rules:
            query = parse_query(rule.xquery)
            compiler = XTableCompiler(
                complexity_limit=self.complexity_limit
            )
            compiled.append(
                (rule.behavior,
                 compiler.compile_query(query, APPLICABLE_POLICY_PARAM))
            )
        return compiled
