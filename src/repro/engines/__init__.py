"""Uniform MatchEngine interface over the four matching implementations:
native APPEL (baseline), SQL on the optimized schema, SQL on the generic
schema, XQuery over a native XML store, and XQuery through the XTABLE
emulator."""

from repro.engines.base import MatchEngine, MatchOutcome
from repro.engines.native import NativeAppelMatchEngine
from repro.engines.sql_engine import GenericSqlMatchEngine, SqlMatchEngine
from repro.engines.xquery_native import (
    NativeXmlStore,
    XQueryNativeMatchEngine,
)
from repro.engines.xquery_structural import XQueryStructuralMatchEngine
from repro.engines.xquery_xtable import XTableMatchEngine


def standard_engines() -> list[MatchEngine]:
    """Fresh instances of the three engines compared in Figure 20
    (native APPEL, SQL, XQuery-via-XTABLE)."""
    return [NativeAppelMatchEngine(), SqlMatchEngine(), XTableMatchEngine()]


def all_engines() -> list[MatchEngine]:
    """Fresh instances of every engine (adds generic-SQL, XQuery-native
    and structural XQuery, used by ablations and differential tests)."""
    return [
        NativeAppelMatchEngine(),
        SqlMatchEngine(),
        GenericSqlMatchEngine(),
        XQueryNativeMatchEngine(),
        XTableMatchEngine(),
        XQueryStructuralMatchEngine(),
    ]


__all__ = [
    "MatchEngine",
    "MatchOutcome",
    "NativeAppelMatchEngine",
    "SqlMatchEngine",
    "GenericSqlMatchEngine",
    "NativeXmlStore",
    "XQueryNativeMatchEngine",
    "XTableMatchEngine",
    "XQueryStructuralMatchEngine",
    "standard_engines",
    "all_engines",
]
