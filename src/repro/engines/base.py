"""The uniform preference-matching interface over all four implementations.

The paper's experiment (Section 6.1) "measured the time to match a P3P
policy with an APPEL preference, first using a native APPEL engine and then
using a database engine".  Every engine here follows the same two-phase
shape so the harness can time them identically:

* ``install(policy)`` — one-time server-side work (shredding, storing the
  XML document, or — for the client-centric native engine — nothing but
  remembering the policy, since a client re-processes the document at
  every match);
* ``match(handle, ruleset)`` — one preference check, reporting *convert*
  time (APPEL -> query translation) and *query* time (evaluation)
  separately, the split Figure 20 reports for the SQL implementation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.appel.model import Ruleset
from repro.p3p.model import Policy


@dataclass(frozen=True)
class MatchOutcome:
    """Result of matching one preference against one policy."""

    behavior: str | None
    rule_index: int | None
    convert_seconds: float = 0.0
    query_seconds: float = 0.0
    error: str | None = None  # e.g. XTABLE complexity failures (Figure 21)

    @property
    def total_seconds(self) -> float:
        return self.convert_seconds + self.query_seconds

    @property
    def failed(self) -> bool:
        return self.error is not None


class MatchEngine(abc.ABC):
    """One policy-preference matching implementation."""

    #: short identifier used in benchmark tables ("appel", "sql", ...)
    name: str = "abstract"

    @abc.abstractmethod
    def install(self, policy: Policy) -> int:
        """Register *policy*; returns the handle used by :meth:`match`."""

    @abc.abstractmethod
    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        """Match *ruleset* against the policy registered under *handle*."""

    def warm_up(self, handle: int, ruleset: Ruleset) -> None:
        """One discarded match, mirroring the paper's warm-up protocol
        (Section 6.3.2: "The system was warmed up by first matching an
        extra (artificial) preference and discarding this time")."""
        self.match(handle, ruleset)
