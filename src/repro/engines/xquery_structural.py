"""XQuery through the structural-join compiler (beyond the paper).

Same front half as :class:`~repro.engines.xquery_xtable.XTableMatchEngine`
(APPEL -> XQuery -> SQL over the generic Figure 8 schema), but the back
half is :mod:`repro.xquery.structural`: one flat, parameterized statement
per ruleset instead of per-rule nested ``EXISTS`` chains.  Consequences:

* no complexity guard — the Medium preference's blank Figure 21 cell
  fills in;
* a check is **one** round trip (first-rule-wins folded with
  ``MIN(rule_index) OVER ()``), like the direct-SQL engines;
* the plan is policy-independent (``?`` binds), so it joins the PR 4-6
  plan architecture: the same bounded :class:`TranslationCache` LRU,
  keyed by the serialized preference, shares one compiled plan across
  every installed policy.

``cache_translations`` defaults to False like :class:`SqlMatchEngine`,
matching the paper's protocol of reporting conversion time per match.
"""

from __future__ import annotations

import time

from repro.appel.model import Ruleset
from repro.appel.serializer import serialize_ruleset
from repro.engines.base import MatchEngine, MatchOutcome
from repro.p3p.model import Policy
from repro.storage.database import Database
from repro.storage.generic_schema import create_structural_indexes
from repro.storage.generic_shredder import GenericPolicyStore
from repro.translate.plan import TranslationCache
from repro.xquery import structural


class XQueryStructuralMatchEngine(MatchEngine):
    """APPEL -> XQuery -> structural-join SQL -> generic schema."""

    name = "xquery-structural"

    def __init__(self, db: Database | None = None,
                 cache_translations: bool = False,
                 cache_size: int = 256):
        self.store = GenericPolicyStore(db)
        self.db = self.store.db
        # The Figure 8 primary keys cannot serve `policy_id = ?` probes;
        # the structural path adds its own per-table policy_id indexes.
        create_structural_indexes(self.db)
        self.cache_translations = cache_translations
        self._cache = TranslationCache(cache_size)

    def install(self, policy: Policy) -> int:
        return self.store.install_policy(policy)

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        self.store.require_policy(handle)
        start = time.perf_counter()
        plan = self._plan(ruleset)
        converted = time.perf_counter()
        behavior, rule_index = plan.execute(self.db, handle)
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )

    def _plan(self, ruleset: Ruleset) -> structural.StructuralPlan:
        if not self.cache_translations:
            return structural.compile_ruleset(ruleset)
        key = serialize_ruleset(ruleset, indent=False)
        plan = self._cache.get(key)
        if plan is None:
            plan = structural.compile_ruleset(ruleset)
            self._cache.put(key, plan)
        return plan
