"""The client-centric native APPEL engine behind the MatchEngine interface.

There is no conversion step — APPEL is the engine's native language — so
all time is reported as query time.  Every match pays the full
document-processing cost (render, parse, category augmentation), exactly
like a browser-side engine that receives the policy document on each visit.
"""

from __future__ import annotations

import time

from repro.appel.engine import AppelEngine
from repro.appel.model import Ruleset
from repro.engines.base import MatchEngine, MatchOutcome
from repro.errors import UnknownPolicyError
from repro.p3p.model import Policy


class NativeAppelMatchEngine(MatchEngine):
    """Baseline: the specialized APPEL engine at the client (Figure 4)."""

    name = "appel"

    def __init__(self, augment: bool = True):
        self._engine = AppelEngine(augment=augment)
        self._policies: dict[int, Policy] = {}
        self._next_handle = 0

    def install(self, policy: Policy) -> int:
        self._next_handle += 1
        self._policies[self._next_handle] = policy
        return self._next_handle

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        policy = self._policies.get(handle)
        if policy is None:
            raise UnknownPolicyError(f"no policy with handle {handle}")
        start = time.perf_counter()
        result = self._engine.evaluate(policy, ruleset)
        elapsed = time.perf_counter() - start
        return MatchOutcome(
            behavior=result.behavior,
            rule_index=result.rule_index,
            convert_seconds=0.0,
            query_seconds=elapsed,
        )
