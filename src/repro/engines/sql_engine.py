"""The proposed server-centric SQL implementations (Figures 5/6).

:class:`SqlMatchEngine` runs against the optimized (Figure 14) schema — the
configuration whose numbers the paper reports in the SQL columns of
Figures 20/21.  :class:`GenericSqlMatchEngine` runs the same preferences
against the pedagogical Figure 8 schema; it exists for the schema ablation
(how much do the Section 5.4 optimizations buy?) and for differential
testing.

Both engines match through :class:`~repro.translate.plan.CompiledPlan`:
the preference compiles once to parameterized SQL (the applicable policy
id is a ``?`` bind), and a check executes as **one** query — the paper's
"checked ... using a single query" — instead of one round-trip per rule.

``cache_translations=True`` corresponds to a deployment where the GUI tool
"produces preferences as a set of SQL statements" (Section 6.3.2): the
conversion cost disappears from the steady state.  The cache is the same
bounded LRU the serving layer uses, keyed by preference alone — a plan
compiled against one policy handle is reused, verbatim, for every other
handle.  The benchmark default is False, matching the paper's protocol of
reporting conversion per match.
"""

from __future__ import annotations

import time

from repro.appel.model import Ruleset
from repro.appel.serializer import serialize_ruleset
from repro.engines.base import MatchEngine, MatchOutcome
from repro.p3p.model import Policy
from repro.storage.database import Database
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
)
from repro.translate.plan import CompiledPlan, TranslationCache


class SqlMatchEngine(MatchEngine):
    """Server-centric matching on the optimized schema (the paper's 'SQL')."""

    name = "sql"

    def __init__(self, db: Database | None = None,
                 cache_translations: bool = False,
                 cache_size: int = 256):
        self.store = PolicyStore(db)
        self.db = self.store.db
        self.translator = OptimizedSqlTranslator()
        self.cache_translations = cache_translations
        self._cache = TranslationCache(cache_size)

    def install(self, policy: Policy) -> int:
        return self.store.install_policy(policy).policy_id

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        self.store.require_policy(handle)
        start = time.perf_counter()
        plan = self._plan(ruleset)
        converted = time.perf_counter()
        behavior, rule_index = plan.execute(self.db, handle)
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )

    def _plan(self, ruleset: Ruleset) -> CompiledPlan:
        if not self.cache_translations:
            return self.translator.compile_ruleset(ruleset)
        key = serialize_ruleset(ruleset, indent=False)
        plan = self._cache.get(key)
        if plan is None:
            plan = self.translator.compile_ruleset(ruleset)
            self._cache.put(key, plan)
        return plan


class GenericSqlMatchEngine(MatchEngine):
    """Same pipeline over the generic (Figure 8) schema — schema ablation."""

    name = "sql-generic"

    def __init__(self, db: Database | None = None):
        self.store = GenericPolicyStore(db)
        self.db = self.store.db
        self.translator = GenericSqlTranslator()

    def install(self, policy: Policy) -> int:
        return self.store.install_policy(policy)

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        self.store.require_policy(handle)
        start = time.perf_counter()
        plan = self.translator.compile_ruleset(ruleset)
        converted = time.perf_counter()
        behavior, rule_index = plan.execute(self.db, handle)
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )
