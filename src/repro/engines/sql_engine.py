"""The proposed server-centric SQL implementations (Figures 5/6).

:class:`SqlMatchEngine` runs against the optimized (Figure 14) schema — the
configuration whose numbers the paper reports in the SQL columns of
Figures 20/21.  :class:`GenericSqlMatchEngine` runs the same preferences
against the pedagogical Figure 8 schema; it exists for the schema ablation
(how much do the Section 5.4 optimizations buy?) and for differential
testing.

``cache_translations=True`` corresponds to a deployment where the GUI tool
"produces preferences as a set of SQL statements" (Section 6.3.2): the
conversion cost disappears from the steady state.  The benchmark default is
False, matching the paper's protocol of reporting conversion per match.
"""

from __future__ import annotations

import time

from repro.appel.model import Ruleset
from repro.appel.serializer import serialize_ruleset
from repro.engines.base import MatchEngine, MatchOutcome
from repro.p3p.model import Policy
from repro.storage.database import Database
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    TranslatedRuleset,
    applicable_policy_literal,
    evaluate_ruleset,
)


class SqlMatchEngine(MatchEngine):
    """Server-centric matching on the optimized schema (the paper's 'SQL')."""

    name = "sql"

    def __init__(self, db: Database | None = None,
                 cache_translations: bool = False):
        self.store = PolicyStore(db)
        self.db = self.store.db
        self.translator = OptimizedSqlTranslator()
        self.cache_translations = cache_translations
        self._cache: dict[tuple[str, int], TranslatedRuleset] = {}

    def install(self, policy: Policy) -> int:
        return self.store.install_policy(policy).policy_id

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        self.store.require_policy(handle)
        start = time.perf_counter()
        translated = self._translate(ruleset, handle)
        converted = time.perf_counter()
        behavior, rule_index = evaluate_ruleset(self.db, translated)
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )

    def _translate(self, ruleset: Ruleset,
                   policy_id: int) -> TranslatedRuleset:
        if not self.cache_translations:
            return self.translator.translate_ruleset(
                ruleset, applicable_policy_literal(policy_id)
            )
        key = (serialize_ruleset(ruleset, indent=False), policy_id)
        translated = self._cache.get(key)
        if translated is None:
            translated = self.translator.translate_ruleset(
                ruleset, applicable_policy_literal(policy_id)
            )
            self._cache[key] = translated
        return translated


class GenericSqlMatchEngine(MatchEngine):
    """Same pipeline over the generic (Figure 8) schema — schema ablation."""

    name = "sql-generic"

    def __init__(self, db: Database | None = None):
        self.store = GenericPolicyStore(db)
        self.db = self.store.db
        self.translator = GenericSqlTranslator()

    def install(self, policy: Policy) -> int:
        return self.store.install_policy(policy)

    def match(self, handle: int, ruleset: Ruleset) -> MatchOutcome:
        self.store.require_policy(handle)
        start = time.perf_counter()
        translated = self.translator.translate_ruleset(
            ruleset, applicable_policy_literal(handle)
        )
        converted = time.perf_counter()
        behavior, rule_index = evaluate_ruleset(self.db, translated)
        end = time.perf_counter()
        return MatchOutcome(
            behavior=behavior,
            rule_index=rule_index,
            convert_seconds=converted - start,
            query_seconds=end - converted,
        )
