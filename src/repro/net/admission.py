"""Admission control: a bounded in-flight gate for the check endpoints.

The serving stack deliberately funnels every check-log append through one
buffered writer; an unbounded burst of HTTP threads would queue behind it
and time out en masse.  :class:`AdmissionController` caps how many checks
may be in flight at once — requests beyond the cap are *shed immediately*
with 503 + ``Retry-After`` (the client's cue to back off) instead of
being parked on a lock.  Shedding is load-proportional and cheap; the
writer keeps draining at its own pace.

The gate is a counter, not a ``threading.Semaphore``: acquisition never
blocks, and the controller keeps the occupancy statistics ``/metrics``
reports (peak concurrency, admitted/rejected totals).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Mapping


class AdmissionController:
    """Admit at most *max_inflight* concurrent requests; shed the rest.

    ``retry_after`` is the default back-off a shed request advertises;
    ``retry_after_by_class`` overrides it per *operation class* (the
    serving layer uses ``"check"`` for reads and ``"install"`` for
    writes), so a front door can tell writers to back off harder than
    readers — an install retried too eagerly queues behind the single
    shard writer, while a shed check can come back almost immediately.
    """

    def __init__(self, max_inflight: int = 64, *,
                 retry_after: float = 1.0,
                 retry_after_by_class: Mapping[str, float] | None = None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self.retry_after_by_class = dict(retry_after_by_class or {})
        for op_class, value in self.retry_after_by_class.items():
            if value < 0:
                raise ValueError(
                    f"retry_after for {op_class!r} must be >= 0")
        self._lock = threading.Lock()
        self.in_flight = 0
        self.peak_in_flight = 0
        self.admitted = 0
        self.rejected = 0

    def retry_after_for(self, op_class: str | None = None) -> float:
        """The advertised back-off for *op_class* (default otherwise)."""
        if op_class is None:
            return self.retry_after
        return self.retry_after_by_class.get(op_class, self.retry_after)

    def try_enter(self) -> bool:
        """Take a slot if one is free; never blocks."""
        with self._lock:
            if self.in_flight >= self.max_inflight:
                self.rejected += 1
                return False
            self.in_flight += 1
            self.admitted += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight
            return True

    def leave(self) -> None:
        with self._lock:
            if self.in_flight <= 0:
                raise RuntimeError("leave() without a matching try_enter()")
            self.in_flight -= 1

    @contextmanager
    def admit(self) -> Iterator[bool]:
        """``with controller.admit() as ok:`` — ok says whether to serve."""
        ok = self.try_enter()
        try:
            yield ok
        finally:
            if ok:
                self.leave()

    def snapshot(self) -> dict[str, float | int]:
        """Occupancy counters for the metrics endpoint."""
        with self._lock:
            return {
                "limit": self.max_inflight,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "retry_after": self.retry_after,
                "retry_after_by_class": dict(self.retry_after_by_class),
            }
