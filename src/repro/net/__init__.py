"""The HTTP serving tier: wire protocol, admission control, server, client.

The paper's architecture is *server-centric* — the site's machine answers
preference checks — so the system needs a network surface.  This package
provides it with nothing beyond the standard library:

* :mod:`repro.net.protocol` — the versioned JSON wire format and its
  stable error codes;
* :mod:`repro.net.admission` — the bounded in-flight gate that sheds
  load with 503 + Retry-After instead of drowning the writer;
* :mod:`repro.net.httpd` — :class:`P3PHttpServer`, a threading HTTP
  server over :class:`~repro.server.policy_server.PolicyServer`;
* :mod:`repro.net.client` — :class:`HttpClientAgent`, the thin client
  that registers its APPEL preference once and checks by hash.
"""

from repro.net.admission import AdmissionController
from repro.net.client import HttpClientAgent
from repro.net.httpd import P3PHttpServer, PreferenceRegistry, serve
from repro.net.protocol import (
    PROTOCOL_VERSION,
    BatchCheckRequest,
    BatchCheckResponse,
    CheckRequest,
    CheckResponse,
    ErrorEnvelope,
    InstallPolicyRequest,
    InstallPolicyResponse,
    ProtocolError,
    RegisterPreferenceRequest,
    RegisterPreferenceResponse,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ErrorEnvelope",
    "CheckRequest",
    "CheckResponse",
    "BatchCheckRequest",
    "BatchCheckResponse",
    "RegisterPreferenceRequest",
    "RegisterPreferenceResponse",
    "InstallPolicyRequest",
    "InstallPolicyResponse",
    "AdmissionController",
    "P3PHttpServer",
    "PreferenceRegistry",
    "serve",
    "HttpClientAgent",
]
