"""The asyncio front end: one event loop, many connections, batched plans.

The threaded front end (:mod:`repro.net.httpd`) spends a thread per
connection and executes one compiled plan per ``/v1/check``.  This
module carries the paper's set-at-a-time idea across *connections*:

* :class:`AsyncP3PServer` — an asyncio HTTP/1.1 server speaking the
  same versioned JSON protocol, reusing :class:`PreferenceRegistry`,
  :class:`~repro.net.admission.AdmissionController` and
  :class:`~repro.server.policy_server.PolicyServer` unchanged.  The
  event loop owns parsing, routing and admission; every blocking
  SQLite call is confined to a small :class:`ThreadPoolExecutor`
  (bounded threads → bounded pooled readers), so ten thousand idle
  keep-alive connections cost file descriptors, not thread stacks.
* :class:`BatchingExecutor` — concurrent ``check()`` requests for the
  same preference hash are held for a bounded window (a couple of
  milliseconds, or until the batch fills) and serviced together: one
  reader resolves every request's applicable policy, consults the
  materialized decision cache, and repairs all misses with a single
  ``policy_id IN (...)`` micro-batch
  (:meth:`PolicyServer.translate_bulk` over
  ``batched_policy_source``), writing the repaired rows back
  best-effort.  Results are split back to their waiting requests, and
  every request is logged through the idempotent check-log writer with
  its own ``check_key`` — retries that land in different batches still
  log at most once.

Fairness and liveness: a batch never waits longer than the window (the
first request arms a timer) and never grows past ``max_batch`` (the
filling request flushes it), so a lone request pays at most the window
and a storm pays amortized one statement per ``max_batch`` checks.

``GET /metrics`` serves the same document as the threaded front end
plus a ``batching`` block: batch depth, window occupancy, coalesced
request counters, and a bounded per-preference depth map.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import logging
import socket
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.appel.model import Ruleset
from repro.appel.parser import parse_ruleset
from repro.errors import ReproError
from repro.net import protocol
from repro.net.admission import AdmissionController
from repro.net.httpd import (
    PreferenceRegistry,
    _etag,
    _Metrics,
    snapshot_metrics,
)
from repro.p3p.parser import parse_policy
from repro.server.policy_server import (
    MATCH_BATCH_SIZE,
    POLICY_VERSION_SQL,
    CheckResult,
    PolicyServer,
)
from repro.storage.decision_cache import utc_now_iso

logger = logging.getLogger(__name__)

__all__ = ["AsyncP3PServer", "BatchingExecutor", "serve_async"]

#: Longest accepted request/header line; longer lines are a 400.
_MAX_LINE_BYTES = 16 * 1024
#: Most header lines accepted on one request.
_MAX_HEADERS = 100


def _bucket(size: int) -> int:
    """The micro-batch shape for *size* distinct policy ids.

    Rounded up to a power of two so a preference compiles at most
    ``log2(MATCH_BATCH_SIZE)`` bulk-plan shapes instead of one per
    observed batch depth — the id list is padded by repeating the last
    id, which is harmless under ``policy_id IN (...)``.
    """
    shape = 1
    while shape < size:
        shape *= 2
    return min(shape, MATCH_BATCH_SIZE)


@dataclass
class _Batch:
    """One open coalescing window for a (preference, cookie) pair."""

    preference: Ruleset
    cookie: bool
    opened: float
    items: list[tuple[str, str, str | None, asyncio.Future]] = \
        field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class BatchingExecutor:
    """Coalesces concurrent same-preference checks into one bulk plan.

    Loop-affine: :meth:`check`, the flush path and :meth:`snapshot` all
    run on the owning event loop, so the counters need no lock.  Only
    :meth:`_execute` — the blocking SQLite work — runs on the executor
    pool, on its own pooled reader connection.
    """

    def __init__(self, policy_server: PolicyServer,
                 executor: ThreadPoolExecutor,
                 loop: asyncio.AbstractEventLoop, *,
                 window: float = 0.0015,
                 max_batch: int = 32,
                 preference_depths: int = 32):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.policy_server = policy_server
        self.window = window
        self.max_batch = max_batch
        self._executor = executor
        self._loop = loop
        self._pending: dict[tuple[str, bool], _Batch] = {}
        # -- counters (loop-affine) --
        self.requests_total = 0
        self.batches = 0
        self.coalesced = 0           # requests that shared their batch
        self.singleton_batches = 0
        self.depth_max = 0
        self.depth_sum = 0
        self.window_flushes = 0      # timer fired before the batch filled
        self.full_flushes = 0        # max_batch reached inside the window
        #: Bounded per-preference depth map (most recent preferences
        #: only — the same LRU discipline as the registries).
        self._preference_depths: OrderedDict[str, dict] = OrderedDict()
        self._preference_depths_size = preference_depths

    # -- submission (event loop) ----------------------------------------------

    async def check(self, preference_hash: str, preference: Ruleset, *,
                    site: str, uri: str, cookie: bool = False,
                    check_key: str | None = None) -> CheckResult:
        """One decision, possibly served by a shared micro-batch."""
        future: asyncio.Future = self._loop.create_future()
        key = (preference_hash, cookie)
        batch = self._pending.get(key)
        if batch is None:
            batch = _Batch(preference=preference, cookie=cookie,
                           opened=self._loop.time())
            self._pending[key] = batch
            if self.window > 0:
                batch.timer = self._loop.call_later(
                    self.window, self._flush, key, "window")
        batch.items.append((site, uri, check_key, future))
        self.requests_total += 1
        if len(batch.items) >= self.max_batch:
            self._flush(key, "full")
        elif self.window <= 0:
            # Batching disabled: each request is its own batch (the
            # benchmark baseline, and the safest failure posture).
            self._flush(key, "window")
        return await future

    def _flush(self, key: tuple[str, bool], reason: str) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None:
            batch.timer.cancel()
        depth = len(batch.items)
        self.batches += 1
        self.depth_sum += depth
        self.depth_max = max(self.depth_max, depth)
        if depth > 1:
            self.coalesced += depth
        else:
            self.singleton_batches += 1
        if reason == "full":
            self.full_flushes += 1
        else:
            self.window_flushes += 1
        self._record_depth(key[0], depth)
        self._loop.create_task(self._service(batch))

    def _record_depth(self, preference_hash: str, depth: int) -> None:
        label = preference_hash[:12]
        entry = self._preference_depths.get(label)
        if entry is None:
            entry = {"requests": 0, "batches": 0, "depth_max": 0}
            self._preference_depths[label] = entry
        entry["requests"] += depth
        entry["batches"] += 1
        entry["depth_max"] = max(entry["depth_max"], depth)
        self._preference_depths.move_to_end(label)
        while len(self._preference_depths) > self._preference_depths_size:
            self._preference_depths.popitem(last=False)

    async def _service(self, batch: _Batch) -> None:
        try:
            results = await self._loop.run_in_executor(
                self._executor, self._execute, batch)
        except Exception as exc:     # noqa: BLE001 — fail the waiters, not the loop
            for _, _, _, future in batch.items:
                if not future.done():
                    future.set_exception(protocol.ProtocolError(
                        protocol.ERR_INTERNAL,
                        f"{type(exc).__name__}: {exc}"))
            return
        for (_, _, _, future), result in zip(batch.items, results):
            if not future.done():
                future.set_result(result)

    # -- execution (executor thread) ------------------------------------------

    def _execute(self, batch: _Batch) -> list[CheckResult]:
        """Decide every request in *batch* with one reader and (at
        most) one micro-batch statement per :func:`_bucket` chunk.

        The decision logic is exactly :meth:`PolicyServer.check`
        factored over a set: reference lookup per request, decision-
        cache probe per distinct policy, one ``policy_id IN (...)``
        bulk execution for the misses, best-effort write-back, and one
        idempotent log append per request.  ``elapsed_seconds`` is the
        batch's wall time — the latency every coalesced waiter actually
        paid.
        """
        server = self.policy_server
        start = time.perf_counter()
        key = PolicyServer._preference_hash(batch.preference)
        resolved: list[int | None] = []
        decided: dict[int, tuple[str | None, int | None]] = {}
        write_back: list[tuple] = []
        with server.pool.read() as db:
            for site, uri, _, _ in batch.items:
                resolved.append(server.references.applicable_policy_id(
                    site, uri, cookie=batch.cookie, db=db))
            distinct = list(dict.fromkeys(
                pid for pid in resolved if pid is not None))
            missing: list[int] = []
            for policy_id in distinct:
                cached = (server.decisions.lookup(db, key, policy_id)
                          if server.cache_decisions else None)
                if cached is not None:
                    decided[policy_id] = cached
                else:
                    missing.append(policy_id)
            for offset in range(0, len(missing), MATCH_BATCH_SIZE):
                chunk = missing[offset:offset + MATCH_BATCH_SIZE]
                shape = _bucket(len(chunk))
                padded = tuple(chunk) + (chunk[-1],) * (shape - len(chunk))
                plan = server.translate_bulk(batch.preference,
                                             batch_size=shape)
                fired = plan.execute(db, padded)
                point_plan = None
                for policy_id in chunk:
                    if policy_id in fired:
                        decided[policy_id] = fired[policy_id]
                        continue
                    # The bulk plan's policy source is ``active = 1``,
                    # so an install racing this batch can deactivate a
                    # policy between the reference lookup above and the
                    # bulk execute.  The point plan has no active filter
                    # (version rows persist), so it decides exactly what
                    # the threaded front end's per-request check would
                    # have served — and still returns (None, None) for a
                    # policy no rule genuinely fires against.
                    if point_plan is None:
                        point_plan = server.translate(batch.preference)
                    decided[policy_id] = point_plan.execute(db, policy_id)
            if missing and server.cache_decisions:
                stamp = utc_now_iso()
                for policy_id in missing:
                    version = db.scalar(POLICY_VERSION_SQL, (policy_id,))
                    if version is not None:
                        behavior, rule_index = decided[policy_id]
                        write_back.append((key, int(policy_id),
                                           int(version), behavior,
                                           rule_index, stamp))
        if write_back:
            server._store_decisions(write_back, best_effort=True)
        elapsed = time.perf_counter() - start
        results: list[CheckResult] = []
        for (site, uri, check_key, _), policy_id in zip(batch.items,
                                                        resolved):
            behavior, rule_index = (decided.get(policy_id, (None, None))
                                    if policy_id is not None
                                    else (None, None))
            result = CheckResult(site=site, uri=uri, policy_id=policy_id,
                                 behavior=behavior, rule_index=rule_index,
                                 elapsed_seconds=elapsed)
            server._log(result, batch.preference, check_key)
            results.append(result)
        return results

    # -- introspection (event loop) -------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window,
            "max_batch": self.max_batch,
            "requests": self.requests_total,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "singleton_batches": self.singleton_batches,
            "depth_max": self.depth_max,
            "depth_avg": (self.depth_sum / self.batches
                          if self.batches else 0.0),
            # Fraction of the batch capacity the windows actually used:
            # 1.0 means every flush was full, ~0 means no coalescing.
            "window_occupancy": (self.depth_sum
                                 / (self.batches * self.max_batch)
                                 if self.batches else 0.0),
            "window_flushes": self.window_flushes,
            "full_flushes": self.full_flushes,
            "by_preference": {label: dict(entry) for label, entry
                              in self._preference_depths.items()},
        }


@dataclass
class _Response:
    """One HTTP response the connection loop writes out."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Mapping[str, str] | None = None
    close: bool = False


def _json_response(status: int, payload: Mapping[str, Any],
                   headers: Mapping[str, str] | None = None) -> _Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _Response(status, body, headers=headers)


class AsyncP3PServer:
    """The asyncio twin of :class:`~repro.net.httpd.P3PHttpServer`.

    Same constructor surface (plus the batching knobs), same endpoints,
    same error envelopes and shard-identity headers, same lifecycle
    (``serve_forever`` / ``run_in_thread`` / ``shutdown`` / ``close``)
    — the cluster worker and the CLI treat the two interchangeably.
    The listening socket is bound in the constructor (port 0 works), so
    ``base_url`` is valid before the loop starts, exactly like the
    threaded server.
    """

    def __init__(self, policy_server: PolicyServer,
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 max_inflight: int = 64,
                 retry_after: float = 1.0,
                 retry_after_by_class: Mapping[str, float] | None = None,
                 batch_threads: int = 4,
                 max_body_bytes: int = 4 * 1024 * 1024,
                 registry_size: int = 4096,
                 identity: protocol.ShardIdentity | None = None,
                 owns_policy_server: bool = False,
                 executor_threads: int = 4,
                 batch_window: float = 0.0015,
                 batch_max: int = 32):
        self.policy_server = policy_server
        self.admission = AdmissionController(
            max_inflight, retry_after=retry_after,
            retry_after_by_class=retry_after_by_class)
        self.preferences = PreferenceRegistry(registry_size)
        self.net_metrics = _Metrics()
        self.batch_threads = batch_threads
        self.max_body_bytes = max_body_bytes
        self.owns_policy_server = owns_policy_server
        self.server_id = uuid.uuid4().hex[:16]
        self.started_monotonic = time.monotonic()
        self.identity = identity
        self.metrics_extensions: list = []
        self.executor_threads = executor_threads
        self.batch_window = batch_window
        self.batch_max = batch_max
        self._reference_lock = threading.Lock()
        self._reference_documents: dict[str, tuple[bytes, str]] = {}
        self._socket = socket.create_server(address, reuse_port=False)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="p3p-aio-db")
        self.batching: BatchingExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: BaseException | None = None
        self._serving = False
        self._closed = False

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._socket.getsockname()[0]

    @property
    def port(self) -> int:
        return self._socket.getsockname()[1]

    @property
    def base_url(self) -> str:
        host = self.host
        if ":" in host:                      # bare IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    # -- reference documents -------------------------------------------------

    def register_reference_document(self, site: str, xml: str) -> None:
        body = xml.encode("utf-8")
        with self._reference_lock:
            self._reference_documents[site] = (body, _etag(body))

    def reference_document(self, site: str) -> tuple[bytes, str] | None:
        with self._reference_lock:
            return self._reference_documents.get(site)

    # -- introspection -------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        snapshot = snapshot_metrics(self)
        snapshot["server"]["frontend"] = "async"
        snapshot["batching"] = self.batching_snapshot()
        return snapshot

    def batching_snapshot(self) -> dict[str, Any]:
        """The executor's counters (zeros before the loop starts)."""
        if self.batching is None:
            return {"requests": 0, "batches": 0, "coalesced": 0,
                    "singleton_batches": 0, "depth_max": 0}
        return self.batching.snapshot()

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self, poll_interval: float | None = None) -> None:
        """Run the event loop on the calling thread until ``shutdown``.

        *poll_interval* is accepted (and ignored) for signature parity
        with ``ThreadingHTTPServer.serve_forever`` — the worker entry
        point calls both the same way.
        """
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stopped.clear()
        try:
            loop.run_until_complete(self._serve(loop))
        except BaseException as exc:
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            raise
        finally:
            pending = [task for task in self._tasks if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(
                    *pending, return_exceptions=True))
            asyncio.set_event_loop(None)
            loop.close()
            self._loop = None
            self._serving = False
            self._stopped.set()

    async def _serve(self, loop: asyncio.AbstractEventLoop) -> None:
        self.batching = BatchingExecutor(
            self.policy_server, self._executor, loop,
            window=self.batch_window, max_batch=self.batch_max)
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection,
                                            sock=self._socket)
        self._serving = True
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            # The listening socket outlives the loop (close() owns it),
            # so a stopped server can be restarted in tests if needed.
            try:
                await server.wait_closed()
            except OSError:
                pass

    def run_in_thread(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread and return it."""
        thread = threading.Thread(target=self._run_guarded,
                                  name="p3p-aio", daemon=True)
        self._thread = thread
        thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("async server did not start within 10s")
        if self._startup_error is not None:
            raise RuntimeError("async server failed to start") \
                from self._startup_error
        return thread

    def _run_guarded(self) -> None:
        try:
            self.serve_forever()
        except Exception:            # noqa: BLE001 — surfaced via _startup_error
            logger.exception("async server loop failed")

    def shutdown(self) -> None:
        """Stop serving; blocks until the loop has exited (parity with
        ``BaseServer.shutdown``).  Thread-safe, idempotent."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
            self._stopped.wait(10)

    def server_close(self) -> None:
        """Release the listening socket (the crash-shaped teardown —
        no drain, no flush; pairs with ``InProcessWorker.kill``)."""
        self._socket.close()

    def close(self) -> None:
        """Graceful: stop the loop, drain the executor, flush the log,
        release the socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.shutdown()
        if self._thread is not None:
            self._thread.join(10)
            self._thread = None
        self._executor.shutdown(wait=True)
        self._socket.close()
        if self.owns_policy_server:
            self.policy_server.close()     # close() flushes first
        else:
            self.policy_server.flush_log()

    def __enter__(self) -> "AsyncP3PServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers = request
                response = await self._respond(method, target, headers,
                                               reader)
                writer.write(self._render(response))
                await writer.drain()
                if response.close or \
                        headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, TimeoutError):
            pass
        except Exception:
            writer.close()
            raise
        except asyncio.CancelledError:
            # Server teardown with the connection mid-read: drop the
            # socket and finish *normally* (no awaits past this point),
            # so the streams machinery's done-callback — which calls
            # ``task.exception()`` — doesn't spray CancelledError
            # tracebacks for every held-open keep-alive connection.
            writer.close()
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError):
            # CancelledError here is server teardown racing a graceful
            # close that was already underway — finish normally, as
            # above.
            pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]] | None:
        """Parse one request line + header block; ``None`` on EOF."""
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise ConnectionResetError("request line too long") from None
        if len(line) > _MAX_LINE_BYTES:
            raise ConnectionResetError("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ConnectionResetError(f"malformed request line {line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readuntil(b"\n")
            if line in (b"\r\n", b"\n"):
                break
            if len(line) > _MAX_LINE_BYTES or len(headers) >= _MAX_HEADERS:
                raise ConnectionResetError("header block too large")
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Mapping[str, str]) -> bytes:
        """The async twin of the threaded ``_read_body``: same error
        codes, same refuse-before-reading posture on oversized
        payloads."""
        length_header = headers.get("content-length")
        try:
            length = int(length_header or 0)
        except ValueError:
            raise protocol.ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"unreadable Content-Length {length_header!r}") from None
        if length < 0:
            raise protocol.ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"negative Content-Length {length}")
        if length > self.max_body_bytes:
            # Read nothing; the connection is closed with the response.
            raise protocol.ProtocolError(
                protocol.ERR_PAYLOAD_TOO_LARGE,
                f"body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit")
        if not length:
            return b""
        return await reader.readexactly(length)

    _GET_ROUTES = {
        "/healthz": "_handle_healthz",
        "/metrics": "_handle_metrics",
        "/w3c/p3p.xml": "_handle_reference",
    }
    _POST_ROUTES = {
        "/v1/preferences": "_handle_register_preference",
        "/v1/check": "_handle_check",
        "/v1/check-batch": "_handle_check_batch",
        "/v1/match": "_handle_match_corpus",
        "/v1/policies": "_handle_install_policy",
    }

    async def _respond(self, method: str, target: str,
                       headers: dict[str, str],
                       reader: asyncio.StreamReader) -> _Response:
        split = urlsplit(target)
        path, query = split.path, parse_qs(split.query)
        try:
            body = await self._read_body(reader, headers) \
                if method == "POST" else b""
            routes = self._GET_ROUTES if method == "GET" else \
                self._POST_ROUTES
            name = routes.get(path)
            if name is None:
                other = self._POST_ROUTES if method == "GET" else \
                    self._GET_ROUTES
                if path in other:
                    raise protocol.ProtocolError(
                        protocol.ERR_METHOD_NOT_ALLOWED,
                        f"{path} does not accept {method}")
                raise protocol.ProtocolError(
                    protocol.ERR_NOT_FOUND, f"no endpoint at {path}")
            self.net_metrics.request(path)
            self._check_shard_identity(path, headers)
            handler: Callable[..., Awaitable[_Response]] = \
                getattr(self, name)
            return await handler(body, query, headers)
        except protocol.ProtocolError as exc:
            return self._protocol_error(exc)
        except ReproError as exc:
            return self._protocol_error(protocol.ProtocolError(
                protocol.ERR_PARSE, str(exc)))
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError, asyncio.IncompleteReadError):
            raise
        except Exception as exc:     # noqa: BLE001 — keep the server up
            return self._protocol_error(protocol.ProtocolError(
                protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"))

    def _protocol_error(self, exc: protocol.ProtocolError) -> _Response:
        self.net_metrics.error(exc.code)
        headers = {}
        if exc.retry_after is not None:
            headers["Retry-After"] = str(max(1, round(exc.retry_after)))
        response = _json_response(exc.http_status, exc.envelope().to_wire(),
                                  headers)
        # An oversized body was never read off the socket — the framing
        # is gone, so the connection must close with the 413.
        response.close = exc.code == protocol.ERR_PAYLOAD_TOO_LARGE
        return response

    def _render(self, response: _Response) -> bytes:
        reason = http.client.responses.get(response.status, "")
        headers = {
            "Content-Type": response.content_type,
            "Content-Length": str(len(response.body)),
            protocol.SERVER_ID_HEADER: self.server_id,
        }
        if self.identity is not None:
            headers[protocol.SHARD_HEADER] = str(self.identity.shard_id)
            headers[protocol.TOPOLOGY_HEADER] = \
                str(self.identity.topology_version)
            headers[protocol.ROLE_HEADER] = self.identity.role
        headers.update(response.headers or {})
        if response.close:
            headers["Connection"] = "close"
        head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        ) + "\r\n"
        return head.encode("latin-1") + response.body

    def _check_shard_identity(self, path: str,
                              headers: Mapping[str, str]) -> None:
        identity = self.identity
        if identity is None or not path.startswith("/v1/"):
            return
        claimed = headers.get(protocol.SHARD_HEADER.lower())
        if claimed is not None and claimed != str(identity.shard_id):
            raise protocol.ProtocolError(
                protocol.ERR_WRONG_SHARD,
                f"request addressed shard {claimed} but this server "
                f"owns shard {identity.shard_id} (topology "
                f"v{identity.topology_version}); refresh the topology "
                "and re-route")
        version = headers.get(protocol.TOPOLOGY_HEADER.lower())
        if version is not None and \
                version != str(identity.topology_version):
            raise protocol.ProtocolError(
                protocol.ERR_WRONG_SHARD,
                f"request carries topology v{version} but this server "
                f"is at v{identity.topology_version}; refresh the "
                "topology and re-route")

    def _preference(self, preference_hash: str) -> Ruleset:
        preference = self.preferences.get(preference_hash)
        if preference is None:
            raise protocol.ProtocolError(
                protocol.ERR_UNKNOWN_PREFERENCE,
                f"no preference registered under {preference_hash!r}; "
                "POST it to /v1/preferences first")
        return preference

    def _admitted(self, op_class: str = "check") -> None:
        if not self.admission.try_enter():
            raise protocol.ProtocolError(
                protocol.ERR_OVERLOADED,
                f"server is at its {self.admission.max_inflight}"
                "-request concurrency limit; retry shortly",
                retry_after=self.admission.retry_after_for(op_class))

    async def _in_executor(self, work: Callable[[], Any]) -> Any:
        assert self._loop is not None
        return await self._loop.run_in_executor(self._executor, work)

    # -- endpoints -----------------------------------------------------------

    async def _handle_healthz(self, body: bytes, query: dict,
                              headers: dict) -> _Response:
        return _json_response(200, {"v": protocol.PROTOCOL_VERSION,
                                    "status": "ok"})

    async def _handle_metrics(self, body: bytes, query: dict,
                              headers: dict) -> _Response:
        return _json_response(200, self.metrics_snapshot())

    async def _handle_reference(self, body: bytes, query: dict,
                                headers: dict) -> _Response:
        sites = query.get("site")
        if sites:
            site = sites[0]
        else:
            site = (headers.get("host") or "").split(":")[0]
        document = self.reference_document(site)
        if document is None:
            raise protocol.ProtocolError(
                protocol.ERR_NOT_FOUND,
                f"no reference file registered for site {site!r}")
        xml, etag = document
        candidates = headers.get("if-none-match")
        if candidates is not None:
            matches = {candidate.strip()
                       for candidate in candidates.split(",")}
            if "*" in matches or etag in matches:
                self.net_metrics.revalidated()
                return _Response(304, b"", headers={"ETag": etag})
        return _Response(200, xml,
                         content_type="application/xml; charset=utf-8",
                         headers={"ETag": etag,
                                  "Cache-Control": "max-age=86400"})

    async def _handle_register_preference(self, body: bytes, query: dict,
                                          headers: dict) -> _Response:
        request = protocol.RegisterPreferenceRequest.from_wire(
            protocol.decode(body))

        def work() -> tuple[int, dict]:
            preference = parse_ruleset(request.appel)
            digest, created = self.preferences.register(preference)
            if created and self.policy_server.cache_decisions:
                try:
                    self.policy_server.register_preference(preference)
                except Exception:    # noqa: BLE001 — populate is advisory
                    self.policy_server.decisions.record_write_error()
                    logger.warning(
                        "decision-cache populate failed for %s",
                        digest[:12], exc_info=True)
            return (201 if created else 200,
                    protocol.RegisterPreferenceResponse(
                        preference_hash=digest,
                        rules=len(preference.rules),
                        created=created).to_wire())

        status, payload = await self._in_executor(work)
        return _json_response(status, payload)

    async def _handle_check(self, body: bytes, query: dict,
                            headers: dict) -> _Response:
        request = protocol.CheckRequest.from_wire(protocol.decode(body))
        self._admitted()
        try:
            preference = self._preference(request.preference_hash)
            assert self.batching is not None
            result = await self.batching.check(
                request.preference_hash, preference,
                site=request.site, uri=request.uri,
                cookie=request.cookie, check_key=request.check_key)
        finally:
            self.admission.leave()
        self.net_metrics.checks(1)
        return _json_response(
            200, protocol.CheckResponse.from_result(result).to_wire())

    async def _handle_check_batch(self, body: bytes, query: dict,
                                  headers: dict) -> _Response:
        request = protocol.BatchCheckRequest.from_wire(
            protocol.decode(body))
        self._admitted()
        try:
            preference = self._preference(request.preference_hash)
            keys = request.check_keys or (None,) * len(request.checks)
            assert self.batching is not None
            results = await asyncio.gather(*[
                self.batching.check(
                    request.preference_hash, preference,
                    site=site, uri=uri, cookie=request.cookie,
                    check_key=key)
                for (site, uri), key in zip(request.checks, keys)
            ])
            # Same durability contract as the threaded endpoint: the
            # log is flushed before the batch reply goes out.
            await self._in_executor(self.policy_server.flush_log)
        finally:
            self.admission.leave()
        self.net_metrics.checks(len(results))
        return _json_response(200, protocol.BatchCheckResponse(
            results=tuple(protocol.CheckResponse.from_result(result)
                          for result in results)).to_wire())

    async def _handle_match_corpus(self, body: bytes, query: dict,
                                   headers: dict) -> _Response:
        request = protocol.MatchCorpusRequest.from_wire(
            protocol.decode(body))
        self._admitted()
        try:
            preference = self._preference(request.preference_hash)
            result = await self._in_executor(
                lambda: self.policy_server.match_all(preference))
        finally:
            self.admission.leave()
        self.net_metrics.checks(len(result.decisions))
        return _json_response(200, protocol.MatchCorpusResponse(
            results=tuple(protocol.MatchCorpusEntry(
                policy_id=decision.policy_id,
                name=decision.name,
                version=decision.version,
                behavior=decision.behavior,
                rule_index=decision.rule_index,
                cached=decision.cached,
            ) for decision in result.decisions),
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            elapsed_seconds=result.elapsed_seconds,
        ).to_wire())

    async def _handle_install_policy(self, body: bytes, query: dict,
                                     headers: dict) -> _Response:
        request = protocol.InstallPolicyRequest.from_wire(
            protocol.decode(body))

        def work() -> dict:
            policy = parse_policy(request.policy)
            report = self.policy_server.install_policy(
                policy, site=request.site)
            reference_rows = None
            if request.reference_file is not None:
                reference_rows = self.policy_server \
                    .install_reference_file(request.reference_file,
                                            request.site)
                self.register_reference_document(
                    request.site, request.reference_file)
            return protocol.InstallPolicyResponse(
                policy_id=report.policy_id,
                statements=report.statements,
                data_items=report.data_items,
                categories=report.categories,
                seconds=report.seconds,
                reference_rows=reference_rows,
            ).to_wire()

        return _json_response(201, await self._in_executor(work))


def serve_async(db: str | None = None, host: str = "127.0.0.1",
                port: int = 0, **options: Any) -> AsyncP3PServer:
    """Boot an async server over a fresh :class:`PolicyServer` on *db*.

    The returned server owns its PolicyServer: ``close()`` flushes the
    check log and closes the pool.  The twin of :func:`repro.net.httpd.serve`.
    """
    policy_server = PolicyServer(db)
    return AsyncP3PServer(policy_server, (host, port),
                          owns_policy_server=True, **options)
