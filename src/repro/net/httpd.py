"""The network front-end: ``P3PHttpServer`` over a ``PolicyServer``.

This is the deployment Section 3 sketches: the site's web server answers
preference checks itself, backed by the policy database.  One process,
stdlib only:

* ``POST /v1/preferences``  — register an APPEL ruleset once; the
  response carries its hash.  Parsing (and, lazily, SQL translation) is
  paid at registration — the paper's pay-once insight moved to the wire.
* ``POST /v1/check``        — one decision, by preference hash.
* ``POST /v1/check-batch``  — many decisions through ``serve_many``
  (results in request order, check log flushed before replying).
* ``POST /v1/match``        — one preference against the *whole* corpus
  (``match_all``): answered from the materialized decision cache where
  possible, misses repaired set-at-a-time by a bulk plan.  Registering
  a preference eagerly populates its cache rows, so the first match
  after registration is already warm.
* ``POST /v1/policies``     — install a policy (optionally with its
  reference file); compiled plans are policy-independent, so installs
  invalidate nothing in the plan cache.
* ``GET /w3c/p3p.xml``      — the site's reference file with a strong
  ETag; ``If-None-Match`` revalidation answers 304 with no body, so
  agents refresh caches for the price of a header.
* ``GET /healthz``          — liveness.
* ``GET /metrics``          — JSON counters (requests, errors, plan- and
  statement-cache hit rates, check-log pending, admission occupancy).

Requests are handled on a thread per connection (HTTP/1.1 keep-alive —
``ThreadingHTTPServer``), which maps one-to-one onto the connection
pool's reader-per-thread design.  The check endpoints sit behind an
:class:`~repro.net.admission.AdmissionController`; everything else
(registration, installs, health) bypasses it so operators can always
look inside an overloaded server.

Shutdown is graceful: :meth:`P3PHttpServer.close` stops accepting,
then flushes the buffered check log, so exactly-once logging holds
across the network boundary.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
import uuid
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.appel.analysis import validate_ruleset
from repro.appel.model import Ruleset
from repro.appel.parser import parse_ruleset
from repro.errors import ReproError
from repro.net import protocol
from repro.net.admission import AdmissionController
from repro.p3p.parser import parse_policy
from repro.server.policy_server import PolicyServer

logger = logging.getLogger(__name__)


class PreferenceRegistry:
    """Registered APPEL rulesets, addressable by content hash.

    Bounded LRU, same discipline as the translation cache: a crowd of
    distinct users cannot grow server memory without limit.  Eviction is
    safe because the protocol is self-healing — a check whose hash was
    evicted gets ``unknown-preference`` and the client re-registers.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("registry maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Ruleset] = OrderedDict()
        self.evictions = 0
        self.validation_findings = 0

    def register(self, preference: Ruleset) -> tuple[str, bool]:
        """Store *preference*; returns ``(hash, created)``.

        Newly seen rulesets are run through
        :func:`repro.appel.analysis.validate_ruleset`; problems are
        *logged, never rejected* — an APPEL ruleset with a misspelled
        vocabulary term is legal, it just matches nothing, and the
        user's agent deserves service while the operator sees why
        checks keep returning the catch-all behavior.
        """
        digest = PolicyServer._preference_hash(preference)
        with self._lock:
            created = digest not in self._entries
            self._entries[digest] = preference
            self._entries.move_to_end(digest)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        if created:
            problems = validate_ruleset(preference)
            if problems:
                with self._lock:
                    self.validation_findings += len(problems)
                for problem in problems:
                    logger.warning("preference %s: %s",
                                   digest[:12], problem)
        return digest, created

    def get(self, preference_hash: str) -> Ruleset | None:
        with self._lock:
            preference = self._entries.get(preference_hash)
            if preference is not None:
                self._entries.move_to_end(preference_hash)
            return preference

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, preference_hash: str) -> bool:
        with self._lock:
            return preference_hash in self._entries


class _Metrics:
    """Lock-protected request/error counters behind ``GET /metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_total = 0
        self.by_endpoint: dict[str, int] = {}
        self.errors_total = 0
        self.by_error_code: dict[str, int] = {}
        self.checks_served = 0
        self.not_modified = 0

    def request(self, endpoint: str) -> None:
        with self._lock:
            self.requests_total += 1
            self.by_endpoint[endpoint] = \
                self.by_endpoint.get(endpoint, 0) + 1

    def error(self, code: str) -> None:
        with self._lock:
            self.errors_total += 1
            self.by_error_code[code] = self.by_error_code.get(code, 0) + 1

    def checks(self, count: int) -> None:
        with self._lock:
            self.checks_served += count

    def revalidated(self) -> None:
        with self._lock:
            self.not_modified += 1

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "requests": {
                    "total": self.requests_total,
                    "by_endpoint": dict(self.by_endpoint),
                },
                "errors": {
                    "total": self.errors_total,
                    "by_code": dict(self.by_error_code),
                },
                "checks_served": self.checks_served,
                "reference_not_modified": self.not_modified,
            }


def _etag(body: bytes) -> str:
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


def snapshot_metrics(server: Any) -> dict[str, Any]:
    """The ``GET /metrics`` document for any front end over a
    :class:`PolicyServer`.

    Shared by the threaded server and the asyncio front end
    (:mod:`repro.net.aio`): both expose the same attribute surface
    (``policy_server``, ``net_metrics``, ``admission``, ``preferences``,
    ``identity``, ``metrics_extensions``), so operators read one schema
    regardless of which front end answered the scrape.
    """
    # "translation_cache" is the compiled-plan cache: keyed by
    # preference hash alone, one entry serves every installed policy.
    cache = server.policy_server._translation_cache
    log = server.policy_server.log
    pool_stats = server.policy_server.pool.stats()
    server_block: dict[str, Any] = {
        "server_id": server.server_id,
        "pid": os.getpid(),
        "uptime_seconds": time.monotonic() - server.started_monotonic,
    }
    if server.identity is not None:
        server_block["shard"] = server.identity.shard_id
        server_block["role"] = server.identity.role
        server_block["topology_version"] = server.identity.topology_version
    snapshot = {
        "v": protocol.PROTOCOL_VERSION,
        "server": server_block,
        **server.net_metrics.snapshot(),
        "translation_cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "hit_rate": cache.hit_rate(),
            "size": len(cache),
            "size_chars": cache.size_chars(),
        },
        "statement_cache": {
            "hits": pool_stats.cache_hits,
            "misses": pool_stats.cache_misses,
            "hit_rate": pool_stats.cache_hit_rate,
        },
        "check_log": {
            "pending": log.pending,
            "appended": log.appended,
            "written": log.written,
            "batches": log.batches,
        },
        "admission": server.admission.snapshot(),
        "preferences": {
            "registered": len(server.preferences),
            "evictions": server.preferences.evictions,
            "validation_findings": server.preferences.validation_findings,
        },
        # Flag-gated EXPLAIN audits of freshly compiled plans
        # (PolicyServer(audit_plans=True)); counters ride on the
        # per-connection QueryStats the pool aggregates.
        "plan_audit": {
            "plans_audited": pool_stats.plans_audited,
            "findings": pool_stats.audit_findings,
        },
        # The materialized decision cache behind check() and
        # /v1/match: hit rate, populate/invalidate volume, and
        # best-effort write-back failures.
        "decision_cache": server.policy_server.decisions.snapshot(),
    }
    for extension in server.metrics_extensions:
        snapshot.update(extension())
    return snapshot


class P3PHttpServer(ThreadingHTTPServer):
    """An HTTP policy server: bind, then ``serve_forever`` or
    :meth:`run_in_thread`.  Bind to port 0 for an ephemeral port and
    read :attr:`base_url` back."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, policy_server: PolicyServer,
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 max_inflight: int = 64,
                 retry_after: float = 1.0,
                 retry_after_by_class: Mapping[str, float] | None = None,
                 batch_threads: int = 4,
                 max_body_bytes: int = 4 * 1024 * 1024,
                 registry_size: int = 4096,
                 identity: protocol.ShardIdentity | None = None,
                 owns_policy_server: bool = False):
        super().__init__(address, _P3PRequestHandler)
        self.policy_server = policy_server
        self.admission = AdmissionController(
            max_inflight, retry_after=retry_after,
            retry_after_by_class=retry_after_by_class)
        self.preferences = PreferenceRegistry(registry_size)
        self.net_metrics = _Metrics()
        self.batch_threads = batch_threads
        self.max_body_bytes = max_body_bytes
        self.owns_policy_server = owns_policy_server
        #: Stable within the process lifetime: lets aggregated cluster
        #: metrics attribute a snapshot to one server instance even
        #: when several share a host (and distinguishes a restarted
        #: worker from its predecessor).
        self.server_id = uuid.uuid4().hex[:16]
        self.started_monotonic = time.monotonic()
        #: Cluster deployments set this: responses carry the shard-
        #: identity headers and mismatched requests get ``wrong-shard``.
        self.identity = identity
        #: Extra top-level blocks merged into ``metrics_snapshot()``
        #: (zero-argument callables returning a mapping) — the replica
        #: refresh loop reports its generation/lag through this.
        self.metrics_extensions: list = []
        self._reference_lock = threading.Lock()
        #: site -> (raw XML bytes, strong ETag)
        self._reference_documents: dict[str, tuple[bytes, str]] = {}
        #: Test/chaos extension point: ``hook(stage, path) -> action``.
        #: *stage* is ``"request"`` (routed, before the handler runs) or
        #: ``"response"`` (before the reply is written); ``"drop"``
        #: severs the connection, ``"truncate"`` (response only) sends a
        #: partial body, anything else is a no-op.  See
        #: repro.testing.faults.
        self.fault_hook = None
        self._serving = False
        self._closed = False

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        host = self.host
        if ":" in host:                      # bare IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    # -- reference documents -------------------------------------------------

    def register_reference_document(self, site: str, xml: str) -> None:
        """Make ``GET /w3c/p3p.xml?site=...`` serve *xml* for *site*."""
        body = xml.encode("utf-8")
        with self._reference_lock:
            self._reference_documents[site] = (body, _etag(body))

    def reference_document(self, site: str) -> tuple[bytes, str] | None:
        with self._reference_lock:
            return self._reference_documents.get(site)

    # -- introspection -------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        return snapshot_metrics(self)

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def run_in_thread(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread and return it."""
        thread = threading.Thread(target=self.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  name="p3p-httpd", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, flush the check log, release the socket.

        Closes the underlying :class:`PolicyServer` too when this server
        owns it (the ``serve()`` factory and the CLI set that up).
        Idempotent.  Call from a different thread than ``serve_forever``
        (or after it returned), as with ``BaseServer.shutdown``.
        """
        if self._closed:
            return
        self._closed = True
        if self._serving:          # shutdown() hangs if never serving
            self.shutdown()
        self.server_close()
        if self.owns_policy_server:
            self.policy_server.close()     # close() flushes first
        else:
            self.policy_server.flush_log()

    def __enter__(self) -> "P3PHttpServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve(db: str | None = None, host: str = "127.0.0.1", port: int = 0,
          **options: Any) -> P3PHttpServer:
    """Boot an HTTP server over a fresh :class:`PolicyServer` on *db*.

    The returned server owns its PolicyServer: ``close()`` flushes the
    check log and closes the pool.
    """
    policy_server = PolicyServer(db)
    return P3PHttpServer(policy_server, (host, port),
                         owns_policy_server=True, **options)


class _P3PRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the handlers above; all failures become the
    protocol's error envelope."""

    server: P3PHttpServer
    protocol_version = "HTTP/1.1"
    server_version = "p3pdb"
    # Responses are two sends (header block, body); without TCP_NODELAY,
    # Nagle + delayed ACK stalls every reply ~40 ms on loopback.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass                       # /metrics replaces per-request stderr

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    _GET_ROUTES = {
        "/healthz": "_handle_healthz",
        "/metrics": "_handle_metrics",
        "/w3c/p3p.xml": "_handle_reference",
    }
    _POST_ROUTES = {
        "/v1/preferences": "_handle_register_preference",
        "/v1/check": "_handle_check",
        "/v1/check-batch": "_handle_check_batch",
        "/v1/match": "_handle_match_corpus",
        "/v1/policies": "_handle_install_policy",
    }

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        path, query = split.path, parse_qs(split.query)
        try:
            body = self._read_body() if method == "POST" else b""
            routes = self._GET_ROUTES if method == "GET" else \
                self._POST_ROUTES
            name = routes.get(path)
            if name is None:
                other = self._POST_ROUTES if method == "GET" else \
                    self._GET_ROUTES
                if path in other:
                    raise protocol.ProtocolError(
                        protocol.ERR_METHOD_NOT_ALLOWED,
                        f"{path} does not accept {method}",
                    )
                raise protocol.ProtocolError(
                    protocol.ERR_NOT_FOUND, f"no endpoint at {path}",
                )
            self.server.net_metrics.request(path)
            self._route = path
            self._check_shard_identity(path)
            hook = self.server.fault_hook
            if hook is not None and hook("request", path) == "drop":
                raise ConnectionResetError("injected: connection dropped")
            getattr(self, name)(body, query)
        except protocol.ProtocolError as exc:
            self._send_protocol_error(exc)
        except ReproError as exc:
            # Library-level rejection of the request's content (unknown
            # policy name in a reference file, vocabulary violations...).
            self._send_protocol_error(protocol.ProtocolError(
                protocol.ERR_PARSE, str(exc)))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:   # noqa: BLE001 — keep the server up
            self._send_protocol_error(protocol.ProtocolError(
                protocol.ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}"))

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or 0)
        except ValueError:
            raise protocol.ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"unreadable Content-Length {length_header!r}") from None
        if length < 0:
            # A negative length would make rfile.read() read until EOF,
            # stalling the kept-alive connection until timeout.
            raise protocol.ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"negative Content-Length {length}")
        if length > self.server.max_body_bytes:
            # Read nothing; the connection is closed with the response.
            self.close_connection = True
            raise protocol.ProtocolError(
                protocol.ERR_PAYLOAD_TOO_LARGE,
                f"body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit")
        return self.rfile.read(length)

    def _send_json(self, status: int, payload: Mapping[str, Any],
                   extra_headers: Mapping[str, str] | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        truncate = False
        hook = self.server.fault_hook
        if hook is not None:
            action = hook("response", getattr(self, "_route", self.path))
            if action == "drop":
                raise ConnectionResetError("injected: response dropped")
            truncate = action == "truncate"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header(protocol.SERVER_ID_HEADER, self.server.server_id)
        identity = self.server.identity
        if identity is not None:
            self.send_header(protocol.SHARD_HEADER,
                             str(identity.shard_id))
            self.send_header(protocol.TOPOLOGY_HEADER,
                             str(identity.topology_version))
            self.send_header(protocol.ROLE_HEADER, identity.role)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if truncate:
            # Advertise the full length, deliver half, sever: the client
            # sees an IncompleteRead, exactly like a mid-reply crash.
            self.wfile.write(body[:max(1, len(body) // 2)])
            self.wfile.flush()
            raise ConnectionResetError("injected: response truncated")
        self.wfile.write(body)

    def _send_protocol_error(self, exc: protocol.ProtocolError) -> None:
        self.server.net_metrics.error(exc.code)
        headers = {}
        if exc.retry_after is not None:
            # Retry-After is delta-seconds; never advertise zero.
            headers["Retry-After"] = str(max(1, round(exc.retry_after)))
        try:
            self._send_json(exc.http_status, exc.envelope().to_wire(),
                            headers)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _preference(self, preference_hash: str) -> Ruleset:
        preference = self.server.preferences.get(preference_hash)
        if preference is None:
            raise protocol.ProtocolError(
                protocol.ERR_UNKNOWN_PREFERENCE,
                f"no preference registered under {preference_hash!r}; "
                "POST it to /v1/preferences first",
            )
        return preference

    def _admitted(self, op_class: str = "check") -> None:
        if not self.server.admission.try_enter():
            raise protocol.ProtocolError(
                protocol.ERR_OVERLOADED,
                f"server is at its {self.server.admission.max_inflight}"
                "-request concurrency limit; retry shortly",
                retry_after=self.server.admission.retry_after_for(
                    op_class),
            )

    def _check_shard_identity(self, path: str) -> None:
        """Reject a request addressed to a shard this server is not.

        A misrouted request must get a *redirect-shaped* error, never a
        wrong answer: a client holding a stale topology would otherwise
        read decisions (or install policies!) against the wrong shard's
        corpus.  Only ``/v1/*`` traffic is checked — health probes and
        metrics scrapes are deliberately shard-agnostic.
        """
        identity = self.server.identity
        if identity is None or not path.startswith("/v1/"):
            return
        claimed = self.headers.get(protocol.SHARD_HEADER)
        if claimed is not None and claimed != str(identity.shard_id):
            raise protocol.ProtocolError(
                protocol.ERR_WRONG_SHARD,
                f"request addressed shard {claimed} but this server "
                f"owns shard {identity.shard_id} (topology "
                f"v{identity.topology_version}); refresh the topology "
                "and re-route",
            )
        version = self.headers.get(protocol.TOPOLOGY_HEADER)
        if version is not None and \
                version != str(identity.topology_version):
            raise protocol.ProtocolError(
                protocol.ERR_WRONG_SHARD,
                f"request carries topology v{version} but this server "
                f"is at v{identity.topology_version}; refresh the "
                "topology and re-route",
            )

    # -- endpoints -----------------------------------------------------------

    def _handle_healthz(self, body: bytes, query: dict) -> None:
        self._send_json(200, {"v": protocol.PROTOCOL_VERSION,
                              "status": "ok"})

    def _handle_metrics(self, body: bytes, query: dict) -> None:
        self._send_json(200, self.server.metrics_snapshot())

    def _handle_reference(self, body: bytes, query: dict) -> None:
        sites = query.get("site")
        if sites:
            site = sites[0]
        else:
            # Default to the Host header, as a real deployment would.
            site = (self.headers.get("Host") or "").split(":")[0]
        document = self.server.reference_document(site)
        if document is None:
            raise protocol.ProtocolError(
                protocol.ERR_NOT_FOUND,
                f"no reference file registered for site {site!r}",
            )
        xml, etag = document
        candidates = self.headers.get("If-None-Match")
        if candidates is not None:
            matches = {candidate.strip() for candidate
                       in candidates.split(",")}
            if "*" in matches or etag in matches:
                self.server.net_metrics.revalidated()
                self.send_response(304)
                self.send_header("ETag", etag)
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
        self.send_response(200)
        self.send_header("Content-Type", "application/xml; charset=utf-8")
        self.send_header("Content-Length", str(len(xml)))
        self.send_header("ETag", etag)
        self.send_header("Cache-Control", "max-age=86400")
        self.end_headers()
        self.wfile.write(xml)

    def _handle_register_preference(self, body: bytes,
                                    query: dict) -> None:
        request = protocol.RegisterPreferenceRequest.from_wire(
            protocol.decode(body))
        preference = parse_ruleset(request.appel)
        digest, created = self.server.preferences.register(preference)
        if created and self.server.policy_server.cache_decisions:
            # Eagerly materialize this preference's decision for every
            # installed policy — the pay-once moment.  Best-effort: a
            # failed populate costs the first match a repair pass, it
            # must not fail the registration.
            try:
                self.server.policy_server.register_preference(preference)
            except Exception:      # noqa: BLE001 — populate is advisory
                self.server.policy_server.decisions.record_write_error()
                logger.warning("decision-cache populate failed for %s",
                               digest[:12], exc_info=True)
        self._send_json(201 if created else 200,
                        protocol.RegisterPreferenceResponse(
                            preference_hash=digest,
                            rules=len(preference.rules),
                            created=created,
                        ).to_wire())

    def _handle_match_corpus(self, body: bytes, query: dict) -> None:
        request = protocol.MatchCorpusRequest.from_wire(
            protocol.decode(body))
        self._admitted()
        try:
            preference = self._preference(request.preference_hash)
            result = self.server.policy_server.match_all(preference)
        finally:
            self.server.admission.leave()
        self.server.net_metrics.checks(len(result.decisions))
        self._send_json(200, protocol.MatchCorpusResponse(
            results=tuple(protocol.MatchCorpusEntry(
                policy_id=decision.policy_id,
                name=decision.name,
                version=decision.version,
                behavior=decision.behavior,
                rule_index=decision.rule_index,
                cached=decision.cached,
            ) for decision in result.decisions),
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            elapsed_seconds=result.elapsed_seconds,
        ).to_wire())

    def _handle_check(self, body: bytes, query: dict) -> None:
        request = protocol.CheckRequest.from_wire(protocol.decode(body))
        self._admitted()
        try:
            preference = self._preference(request.preference_hash)
            result = self.server.policy_server.check(
                request.site, request.uri, preference,
                cookie=request.cookie, check_key=request.check_key)
        finally:
            self.server.admission.leave()
        self.server.net_metrics.checks(1)
        self._send_json(200,
                        protocol.CheckResponse.from_result(result).to_wire())

    def _handle_check_batch(self, body: bytes, query: dict) -> None:
        request = protocol.BatchCheckRequest.from_wire(
            protocol.decode(body))
        self._admitted()
        try:
            preference = self._preference(request.preference_hash)
            keys = request.check_keys or (None,) * len(request.checks)
            # serve_many flushes the check log in a finally, so checks
            # that completed before a worker failure are durable even
            # when this handler answers with an error envelope.
            results = self.server.policy_server.serve_many(
                [(site, uri, preference, key)
                 for (site, uri), key in zip(request.checks, keys)],
                threads=self.server.batch_threads,
                cookie=request.cookie)
        finally:
            self.server.admission.leave()
        self.server.net_metrics.checks(len(results))
        self._send_json(200, protocol.BatchCheckResponse(
            results=tuple(protocol.CheckResponse.from_result(result)
                          for result in results)).to_wire())

    def _handle_install_policy(self, body: bytes, query: dict) -> None:
        request = protocol.InstallPolicyRequest.from_wire(
            protocol.decode(body))
        policy = parse_policy(request.policy)
        report = self.server.policy_server.install_policy(
            policy, site=request.site)
        reference_rows = None
        if request.reference_file is not None:
            reference_rows = self.server.policy_server \
                .install_reference_file(request.reference_file,
                                        request.site)
            self.server.register_reference_document(
                request.site, request.reference_file)
        self._send_json(201, protocol.InstallPolicyResponse(
            policy_id=report.policy_id,
            statements=report.statements,
            data_items=report.data_items,
            categories=report.categories,
            seconds=report.seconds,
            reference_rows=reference_rows,
        ).to_wire())
