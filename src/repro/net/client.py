"""``HttpClientAgent`` — the thin client of the server-centric design.

The paper's Section 4.2 point: the client should *not* re-do document
processing per check.  Over the wire that becomes: serialize and POST
the APPEL preference **once** (``/v1/preferences``), keep the returned
hash, and make every subsequent check a small JSON request.  The agent
registers lazily on first use and transparently **re-registers** when
the server answers ``unknown-preference`` — which happens after a server
restart or a registry eviction — so callers never see the handshake.

Transport is a persistent ``http.client.HTTPConnection`` (keep-alive;
rebuilt automatically if the server closed it).  One agent is therefore
**not** thread-safe — give each client thread its own agent, the exact
analogue of the connection pool's reader-per-thread rule.  Reference
files are cached with their ETag and revalidated with
``If-None-Match``, so a fresh copy costs a 304 with no body.

**Fault tolerance.**  Idempotent calls (checks, registration, GETs)
run under a :class:`~repro.net.retry.RetryPolicy` — bounded attempts,
exponential backoff with deterministic jitter, ``Retry-After`` honored
on ``overloaded`` — so shed load, dropped connections, truncated
replies and transient server errors heal without surfacing.  Every
check is stamped with a generated ``check_key`` and a retry re-sends
the *same* key, so the server logs the check exactly once even when
the first response was lost.  Installs are **not** retried (repeating
one creates a new policy version); pass ``retry=None`` to disable
retries everywhere.
"""

from __future__ import annotations

import http.client
import socket
import time
import uuid
from typing import Any, Iterable, Mapping
from urllib.parse import quote, urlsplit

from repro.appel.model import Ruleset
from repro.appel.parser import parse_ruleset
from repro.appel.serializer import serialize_ruleset
from repro.net import protocol
from repro.net.retry import RetryPolicy
from repro.p3p.model import Policy
from repro.p3p.serializer import serialize_policy
from repro.translate.plan import TranslationCache

#: Sentinel: "caller did not choose a policy" (None means *no retries*).
_DEFAULT_RETRY = RetryPolicy()


class HttpClientAgent:
    """A P3P user agent speaking the v1 wire protocol to one server."""

    def __init__(self, base_url: str,
                 preference: Ruleset | str | None = None, *,
                 preference_hash: str | None = None,
                 timeout: float = 30.0,
                 retry: RetryPolicy | None = _DEFAULT_RETRY,
                 default_headers: Mapping[str, str] | None = None,
                 reference_cache_size: int = 64):
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(
                f"unsupported scheme {split.scheme!r} (http only)")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        if isinstance(preference, str):
            preference = parse_ruleset(preference)
        self.preference = preference
        self.preference_hash = preference_hash
        self.timeout = timeout
        self.retry = retry
        #: Sent with every request (cluster clients stamp the shard-
        #: identity headers here, so a misrouted call is *rejected* by
        #: the receiving server instead of silently answered).
        self.default_headers = dict(default_headers or {})
        self.requests_sent = 0
        self.reregistrations = 0
        self.revalidations = 0
        self.retries = 0
        self._check_counter = 0
        self._agent_id = uuid.uuid4().hex[:16]
        self._connection: http.client.HTTPConnection | None = None
        #: site -> (etag, xml) for If-None-Match revalidation.  Bounded
        #: LRU: an agent crawling many sites revalidates the hot ones
        #: and refetches the cold ones instead of growing forever.
        self._reference_cache = TranslationCache(reference_cache_size)

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: bytes | None = None,
                 headers: Mapping[str, str] | None = None
                 ) -> tuple[int, dict[str, str], bytes]:
        """One round trip, reusing the kept-alive connection.

        A request that fails on a *reused* connection is retried once on
        a fresh one (the server may have idled it out between checks);
        a failure on a fresh connection propagates.
        """
        send_headers = {"Content-Type": "application/json",
                        **self.default_headers,
                        **(headers or {})}
        for attempt in (0, 1):
            fresh = self._connection is None
            if fresh:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self.timeout)
                self._connection.connect()
                # Requests are two writes (headers, body); keep Nagle
                # from serializing them against the server's ACKs.
                self._connection.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = self._connection
            try:
                connection.request(method, path, body=body,
                                   headers=send_headers)
                response = connection.getresponse()
                payload = response.read()
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                connection.close()
                self._connection = None
                if fresh or attempt:
                    raise
                self.retries += 1
                continue
            self.requests_sent += 1
            if response.will_close:
                connection.close()
                self._connection = None
            return (response.status,
                    {key.lower(): value
                     for key, value in response.getheaders()},
                    payload)
        raise AssertionError("unreachable")

    def _call(self, method: str, path: str,
              payload: Mapping[str, Any] | None = None, *,
              retry_key: str | None = None) -> dict[str, Any]:
        """One protocol call; retried under the policy when *retry_key*
        marks it idempotent (the key also seeds the backoff jitter)."""
        body = protocol.encode(payload) if payload is not None else None

        def attempt() -> dict[str, Any]:
            status, _, raw = self._request(method, path, body)
            if status >= 400:
                raise protocol.error_from_http(status, raw)
            return protocol.decode(raw)

        if self.retry is None or retry_key is None:
            return attempt()
        return self.retry.run(attempt, key=retry_key,
                              on_retry=self._count_retry)

    def call(self, method: str, path: str,
             payload: Mapping[str, Any] | None = None, *,
             retry_key: str | None = None) -> dict[str, Any]:
        """One raw protocol call: encode, send, decode, raise on error.

        The cluster router and topology-aware clients forward already-
        decoded wire payloads through this without re-modeling them as
        dataclasses; *retry_key* marks the call idempotent and enables
        the agent's retry policy (installs must pass None).
        """
        return self._call(method, path, payload, retry_key=retry_key)

    def _count_retry(self, exc: BaseException, attempt: int) -> None:
        self.retries += 1

    def _next_check_key(self) -> str:
        """A fresh idempotency token; retries of the same logical check
        re-send the same token, distinct checks never collide."""
        self._check_counter += 1
        return f"{self._agent_id}-{self._check_counter:08x}"

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "HttpClientAgent":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- preference lifecycle ------------------------------------------------

    def register_preference(self) -> str:
        """POST the APPEL document; remember and return its hash."""
        if self.preference is None:
            raise ValueError("agent has no preference to register")
        # Registration is content-addressed, so retrying it is safe.
        response = protocol.RegisterPreferenceResponse.from_wire(
            self._call("POST", "/v1/preferences",
                       protocol.RegisterPreferenceRequest(
                           appel=serialize_ruleset(self.preference,
                                                   indent=False),
                       ).to_wire(),
                       retry_key=f"{self._agent_id}-register"))
        self.preference_hash = response.preference_hash
        return response.preference_hash

    def _ensure_registered(self) -> str:
        if self.preference_hash is None:
            return self.register_preference()
        return self.preference_hash

    def _with_reregistration(self, call):
        """Run *call(hash)*; on ``unknown-preference`` re-register once.

        This is the self-healing half of register-once: a restarted
        server (empty registry) or an evicting one only costs the agent
        one extra round trip, not an error surfaced to the caller.
        """
        digest = self._ensure_registered()
        try:
            return call(digest)
        except protocol.ProtocolError as exc:
            if exc.code != protocol.ERR_UNKNOWN_PREFERENCE or \
                    self.preference is None:
                raise
        self.reregistrations += 1
        return call(self.register_preference())

    # -- checking ------------------------------------------------------------

    def check(self, site: str, uri: str,
              cookie: bool = False) -> protocol.CheckResponse:
        """One decision for (site, uri) under the agent's preference.

        The check is stamped with a fresh ``check_key``; retries (shed
        load, dropped connection, lost response) re-send the same key,
        so the server logs the check at most once.
        """
        check_key = self._next_check_key()
        return self._with_reregistration(
            lambda digest: protocol.CheckResponse.from_wire(
                self._call("POST", "/v1/check",
                           protocol.CheckRequest(
                               site=site, uri=uri,
                               preference_hash=digest,
                               cookie=cookie,
                               check_key=check_key).to_wire(),
                           retry_key=check_key)))

    def check_batch(self, checks: Iterable[tuple[str, str]],
                    cookie: bool = False) -> list[protocol.CheckResponse]:
        """Decisions for many (site, uri) pairs, in request order.

        Every check in the batch carries its own ``check_key``, so a
        retried batch re-logs none of the rows the first attempt
        already durably recorded.
        """
        checks = tuple(checks)
        check_keys = tuple(self._next_check_key() for _ in checks)
        response = self._with_reregistration(
            lambda digest: protocol.BatchCheckResponse.from_wire(
                self._call("POST", "/v1/check-batch",
                           protocol.BatchCheckRequest(
                               preference_hash=digest,
                               checks=checks,
                               cookie=cookie,
                               check_keys=check_keys).to_wire(),
                           retry_key=check_keys[0] if check_keys
                           else None)))
        return list(response.results)

    def match_corpus(self) -> protocol.MatchCorpusResponse:
        """The whole corpus matched against the agent's preference.

        One round trip returns a decision for every installed policy;
        matching is read-only (any cache write-back on the server is
        idempotent), so transport retries are safe.
        """
        return self._with_reregistration(
            lambda digest: protocol.MatchCorpusResponse.from_wire(
                self._call("POST", "/v1/match",
                           protocol.MatchCorpusRequest(
                               preference_hash=digest).to_wire(),
                           retry_key=f"{self._agent_id}-match")))

    # -- site administration -------------------------------------------------

    def install_policy(self, policy: Policy | str,
                       site: str | None = None,
                       reference_file: str | None = None
                       ) -> protocol.InstallPolicyResponse:
        """Install a policy (optionally with its reference file)."""
        if isinstance(policy, Policy):
            policy = serialize_policy(policy)
        return protocol.InstallPolicyResponse.from_wire(
            self._call("POST", "/v1/policies",
                       protocol.InstallPolicyRequest(
                           policy=policy, site=site,
                           reference_file=reference_file).to_wire()))

    def fetch_reference_file(self, site: str) -> str:
        """GET /w3c/p3p.xml for *site*, revalidating the cached copy.

        A GET is idempotent, so transport failures retry under the
        agent's policy.
        """
        def attempt() -> str:
            headers = {}
            cached = self._reference_cache.get(site)
            if cached is not None:
                headers["If-None-Match"] = cached[0]
            status, response_headers, body = self._request(
                "GET", f"/w3c/p3p.xml?site={quote(site)}",
                headers=headers)
            if status == 304 and cached is not None:
                self.revalidations += 1
                return cached[1]
            if status >= 400:
                raise protocol.error_from_http(status, body)
            xml = body.decode("utf-8")
            etag = response_headers.get("etag")
            if etag is not None:
                self._reference_cache.put(site, (etag, xml))
            return xml

        if self.retry is None:
            return attempt()
        return self.retry.run(attempt, key=f"{self._agent_id}-ref",
                              on_retry=self._count_retry)

    # -- introspection -------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._call("GET", "/metrics")

    def wait_until_healthy(self, timeout: float = 5.0,
                           interval: float = 0.05) -> bool:
        """Poll /healthz until the server answers or *timeout* passes."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.health().get("status") == "ok":
                    return True
            except (protocol.ProtocolError, OSError):
                pass
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            # Clamp the final sleep: overshooting the deadline by a
            # full interval turns "poll for 5s" into "poll for 5s and
            # change", which callers budgeting startup time notice.
            time.sleep(min(interval, remaining))
