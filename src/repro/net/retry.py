"""Retry with bounded exponential backoff — the client half of fault
tolerance.

The serving stack already *sheds* load (503 + ``Retry-After``) and
*batches* durability (the buffered check log); what was missing is the
discipline on the other end of the wire: a client that heals transient
failures instead of surfacing them.  :class:`RetryPolicy` packages the
standard large-system recipe:

* **bounded attempts** — a call is tried at most ``max_attempts`` times;
* **exponential backoff** — the delay before attempt *n* is
  ``base_delay * multiplier**(n-1)``, capped at ``max_delay``;
* **deterministic jitter** — the delay is stretched by up to ``jitter``
  of itself, derived from a hash of ``(key, attempt)`` rather than a
  PRNG, so a retry schedule is reproducible in tests and two clients
  retrying the same key still decorrelate from clients with other keys;
* **Retry-After wins** — when the server shed the request
  (``overloaded``) and named a delay, the client honors it (still capped
  by the deadline budget);
* **per-call deadline** — backoff never schedules a sleep that would
  push the call past ``deadline`` seconds of total elapsed time; the
  last error is raised instead.

What is safe to retry is the *caller's* decision: the policy only
classifies via the ``classify`` callable handed to :meth:`run`.  The
default (:func:`default_classify`) retries transport failures (reset /
truncated / dropped connections) and the two transient protocol codes
``overloaded`` and ``internal-error``.  Retrying a check is safe even
when the first attempt executed, because checks are stamped with a
``check_key`` and the server's log writer deduplicates (see
docs/http-api.md "Idempotent checks").
"""

from __future__ import annotations

import hashlib
import http.client
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.net import protocol

#: Protocol codes that indicate a transient server-side condition.
#: ``shard-unavailable`` is transient by construction: the router sends
#: it while a shard's backends are down, and the cluster supervisor's
#: job is to bring one back.  ``wrong-shard`` is deliberately absent —
#: retrying the same request at the same server cannot fix a routing
#: mistake; the caller must refresh its topology first.
TRANSIENT_CODES = frozenset({protocol.ERR_OVERLOADED,
                             protocol.ERR_SHARD_UNAVAILABLE,
                             protocol.ERR_INTERNAL})

#: Transport-level exceptions worth a second attempt (connection reset,
#: dropped keep-alive, truncated response, refused reconnect).
TRANSPORT_ERRORS = (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, TimeoutError, OSError)


@dataclass(frozen=True)
class RetryDecision:
    """Whether (and how) one failure should be retried."""

    retry: bool
    #: Server-suggested delay (Retry-After), seconds; None → use backoff.
    retry_after: float | None = None


def default_classify(exc: BaseException) -> RetryDecision:
    """The standard classification: transport and transient errors retry.

    ``overloaded`` carries the server's ``Retry-After`` into the
    decision; ``internal-error`` is retried because the serving stack
    maps transient storage failures (e.g. a busy or faulted SQLite
    write) onto it and idempotent ``check_key`` stamping makes the
    retry safe.  Everything else — bad requests, parse errors,
    unknown endpoints — is deterministic and propagates immediately.
    """
    if isinstance(exc, protocol.ProtocolError):
        if exc.code in TRANSIENT_CODES:
            return RetryDecision(True, retry_after=exc.retry_after)
        return RetryDecision(False)
    if isinstance(exc, TRANSPORT_ERRORS):
        return RetryDecision(True)
    return RetryDecision(False)


def _jitter_fraction(key: str, attempt: int) -> float:
    """A reproducible value in [0, 1) from (key, attempt)."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Frozen and stateless — one policy instance can drive any number of
    concurrent calls; per-call state lives on the stack of :meth:`run`.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    #: Total seconds one logical call may consume, attempts + sleeps.
    deadline: float | None = 15.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep before retry number *attempt* (1-based)."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        return delay * (1.0 + self.jitter * _jitter_fraction(key, attempt))

    def run(self, call: Callable[[], Any], *, key: str = "",
            classify: Callable[[BaseException], RetryDecision]
            = default_classify,
            on_retry: Callable[[BaseException, int], None] | None = None,
            sleep: Callable[[float], None] = time.sleep,
            clock: Callable[[], float] = time.monotonic) -> Any:
        """Invoke *call* until it succeeds, retries are exhausted, or the
        deadline budget cannot fit another attempt.

        *on_retry(exc, attempt)* is invoked just before each re-attempt
        (clients use it to count retries); *sleep*/*clock* are injectable
        so tests can run schedules without wall-clock time.
        """
        start = clock()
        attempt = 1
        while True:
            try:
                return call()
            except BaseException as exc:
                decision = classify(exc)
                if not decision.retry or attempt >= self.max_attempts:
                    raise
                delay = self.backoff_delay(attempt, key)
                if decision.retry_after is not None:
                    delay = max(delay, decision.retry_after)
                if self.deadline is not None and \
                        clock() - start + delay > self.deadline:
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt)
                sleep(delay)
                attempt += 1


#: A policy that never retries — the explicit "off" switch.
NO_RETRY = RetryPolicy(max_attempts=1)
