"""The versioned JSON wire format spoken between agent and policy server.

Every message is a JSON object carrying ``"v": 1``; unknown versions are
rejected before any field is looked at, so the format can evolve without
silent misreads.  Failures travel as one error envelope shape with a
small set of **stable error codes** (machine-matchable strings — clients
branch on ``code``, never on the human-readable ``message``):

========================  ======  =============================================
code                      status  meaning
========================  ======  =============================================
``bad-json``              400     body is not a JSON object
``bad-version``           400     ``v`` missing or not a supported version
``bad-request``           400     a field is missing or has the wrong type
``parse-error``           422     APPEL/P3P XML inside the request is invalid
``unknown-preference``    404     no registered preference under that hash
``not-found``             404     no such endpoint / reference document
``method-not-allowed``    405     endpoint exists, verb is wrong
``payload-too-large``     413     body exceeds the server's size limit
``wrong-shard``           421     request addressed to a shard this server
                                  does not own (stale topology)
``overloaded``            503     admission control shed the request
``shard-unavailable``     503     the owning shard has no reachable backend
``internal-error``        500     unexpected server-side failure
========================  ======  =============================================

**Shard identity.**  Cluster deployments (see :mod:`repro.cluster`)
stamp every response with the shard-identity headers below, and a
request *may* carry them to assert which shard (at which topology
version) it believes it is talking to.  A mismatch is answered with
``wrong-shard`` (421 Misdirected Request) — the response headers name
the shard the server actually owns, so a smart client refreshes its
topology and re-routes instead of acting on a wrong answer.

Messages are frozen dataclasses with ``to_wire()`` / ``from_wire()``;
``from_wire`` validates shape and raises :class:`ProtocolError` (never a
bare ``KeyError``), so the HTTP layer can map any protocol failure to one
envelope uniformly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ReproError

PROTOCOL_VERSION = 1

#: Largest number of checks one batch request may carry.
MAX_BATCH_CHECKS = 1024

ERR_BAD_JSON = "bad-json"
ERR_BAD_VERSION = "bad-version"
ERR_BAD_REQUEST = "bad-request"
ERR_PARSE = "parse-error"
ERR_UNKNOWN_PREFERENCE = "unknown-preference"
ERR_NOT_FOUND = "not-found"
ERR_METHOD_NOT_ALLOWED = "method-not-allowed"
ERR_PAYLOAD_TOO_LARGE = "payload-too-large"
ERR_WRONG_SHARD = "wrong-shard"
ERR_OVERLOADED = "overloaded"
ERR_SHARD_UNAVAILABLE = "shard-unavailable"
ERR_INTERNAL = "internal-error"

#: Default HTTP status per error code (a ProtocolError may override).
HTTP_STATUS = {
    ERR_BAD_JSON: 400,
    ERR_BAD_VERSION: 400,
    ERR_BAD_REQUEST: 400,
    ERR_PARSE: 422,
    ERR_UNKNOWN_PREFERENCE: 404,
    ERR_NOT_FOUND: 404,
    ERR_METHOD_NOT_ALLOWED: 405,
    ERR_PAYLOAD_TOO_LARGE: 413,
    ERR_WRONG_SHARD: 421,
    ERR_OVERLOADED: 503,
    ERR_SHARD_UNAVAILABLE: 503,
    ERR_INTERNAL: 500,
}

#: Shard-identity headers.  Servers stamp responses with all three;
#: requests may carry SHARD/TOPOLOGY to assert the intended target.
SHARD_HEADER = "X-P3P-Shard"
TOPOLOGY_HEADER = "X-P3P-Topology-Version"
SERVER_ID_HEADER = "X-P3P-Server-Id"
ROLE_HEADER = "X-P3P-Role"


@dataclass(frozen=True)
class ShardIdentity:
    """Which shard a server claims, at which topology version.

    Handed to :class:`~repro.net.httpd.P3PHttpServer` by the cluster's
    worker supervisor; a standalone server has no identity and skips
    the shard checks entirely.
    """

    shard_id: int
    topology_version: int
    role: str = "primary"


class ProtocolError(ReproError):
    """A wire-protocol failure, carrying its stable code and HTTP status."""

    def __init__(self, code: str, message: str, *,
                 http_status: int | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.http_status = http_status or HTTP_STATUS.get(code, 400)
        self.retry_after = retry_after

    def envelope(self) -> "ErrorEnvelope":
        return ErrorEnvelope(code=self.code, message=str(self),
                             retry_after=self.retry_after)


def encode(payload: Mapping[str, Any]) -> bytes:
    """Serialize a wire dict (``v`` added if absent) to UTF-8 JSON."""
    document = {"v": PROTOCOL_VERSION, **payload}
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode(raw: bytes | str) -> dict[str, Any]:
    """Parse and version-check a request/response body."""
    try:
        payload = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(ERR_BAD_JSON,
                            f"body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(ERR_BAD_JSON, "body must be a JSON object")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_BAD_VERSION,
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
        )
    return payload


def _field(payload: Mapping[str, Any], name: str, types, *,
           required: bool = True, default: Any = None) -> Any:
    value = payload.get(name, default)
    if value is None:
        if required:
            raise ProtocolError(ERR_BAD_REQUEST,
                                f"missing required field {name!r}")
        return None
    if not isinstance(value, types):
        wanted = getattr(types, "__name__", None) or \
            "/".join(t.__name__ for t in types)
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"field {name!r} must be {wanted}, got {type(value).__name__}",
        )
    return value


@dataclass(frozen=True)
class ErrorEnvelope:
    """The one shape every failure response takes."""

    code: str
    message: str
    retry_after: float | None = None

    def to_wire(self) -> dict[str, Any]:
        error: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"v": PROTOCOL_VERSION, "error": error}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "ErrorEnvelope":
        error = _field(payload, "error", dict)
        return cls(
            code=_field(error, "code", str),
            message=_field(error, "message", str),
            retry_after=_field(error, "retry_after", (int, float),
                               required=False),
        )

    def raise_(self, http_status: int | None = None) -> None:
        raise ProtocolError(self.code, self.message,
                            http_status=http_status,
                            retry_after=self.retry_after)


@dataclass(frozen=True)
class RegisterPreferenceRequest:
    """POST /v1/preferences — pay the translation/parse cost once."""

    appel: str

    def to_wire(self) -> dict[str, Any]:
        return {"v": PROTOCOL_VERSION, "appel": self.appel}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]
                  ) -> "RegisterPreferenceRequest":
        return cls(appel=_field(payload, "appel", str))


@dataclass(frozen=True)
class RegisterPreferenceResponse:
    """The registry's receipt: check by this hash from now on."""

    preference_hash: str
    rules: int
    created: bool

    def to_wire(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "preference_hash": self.preference_hash,
            "rules": self.rules,
            "created": self.created,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]
                  ) -> "RegisterPreferenceResponse":
        return cls(
            preference_hash=_field(payload, "preference_hash", str),
            rules=_field(payload, "rules", int),
            created=_field(payload, "created", bool),
        )


@dataclass(frozen=True)
class CheckRequest:
    """POST /v1/check — one preference check, by registered hash.

    ``check_key`` is the client-generated idempotency token: a retry of
    the same logical check re-sends the same key, and the server's log
    writer deduplicates within a bounded window, so a retry after a
    lost response cannot double-log.
    """

    site: str
    uri: str
    preference_hash: str
    cookie: bool = False
    check_key: str | None = None

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "site": self.site,
            "uri": self.uri,
            "preference_hash": self.preference_hash,
            "cookie": self.cookie,
        }
        if self.check_key is not None:
            wire["check_key"] = self.check_key
        return wire

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "CheckRequest":
        return cls(
            site=_field(payload, "site", str),
            uri=_field(payload, "uri", str),
            preference_hash=_field(payload, "preference_hash", str),
            cookie=_field(payload, "cookie", bool,
                          required=False, default=False),
            check_key=_field(payload, "check_key", str, required=False),
        )


@dataclass(frozen=True)
class CheckResponse:
    """The server's decision for one URI (allowed/covered are derived)."""

    site: str
    uri: str
    policy_id: int | None
    behavior: str | None
    rule_index: int | None
    elapsed_seconds: float

    @property
    def allowed(self) -> bool:
        return self.behavior != "block"

    @property
    def covered(self) -> bool:
        return self.policy_id is not None

    @property
    def decision(self) -> tuple:
        """The comparable decision, independent of timing."""
        return (self.site, self.uri, self.policy_id,
                self.behavior, self.rule_index)

    def to_wire(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "site": self.site,
            "uri": self.uri,
            "policy_id": self.policy_id,
            "behavior": self.behavior,
            "rule_index": self.rule_index,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "CheckResponse":
        return cls(
            site=_field(payload, "site", str),
            uri=_field(payload, "uri", str),
            policy_id=_field(payload, "policy_id", int, required=False),
            behavior=_field(payload, "behavior", str, required=False),
            rule_index=_field(payload, "rule_index", int, required=False),
            elapsed_seconds=_field(payload, "elapsed_seconds",
                                   (int, float), required=False,
                                   default=0.0),
        )

    @classmethod
    def from_result(cls, result) -> "CheckResponse":
        """Adapt a :class:`~repro.server.policy_server.CheckResult`."""
        return cls(
            site=result.site,
            uri=result.uri,
            policy_id=result.policy_id,
            behavior=result.behavior,
            rule_index=result.rule_index,
            elapsed_seconds=result.elapsed_seconds,
        )


@dataclass(frozen=True)
class BatchCheckRequest:
    """POST /v1/check-batch — many URIs, one preference hash.

    ``check_keys``, when present, is aligned with ``checks`` (one
    idempotency token per check) so a retried batch cannot double-log
    any of its rows even if the first attempt's response was lost.
    """

    preference_hash: str
    checks: tuple[tuple[str, str], ...]   # (site, uri) pairs
    cookie: bool = False
    check_keys: tuple[str | None, ...] | None = None

    def __post_init__(self) -> None:
        if self.check_keys is not None and \
                len(self.check_keys) != len(self.checks):
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"{len(self.check_keys)} check_keys for "
                f"{len(self.checks)} checks",
            )

    def to_wire(self) -> dict[str, Any]:
        entries = []
        for index, (site, uri) in enumerate(self.checks):
            entry: dict[str, Any] = {"site": site, "uri": uri}
            if self.check_keys is not None and \
                    self.check_keys[index] is not None:
                entry["check_key"] = self.check_keys[index]
            entries.append(entry)
        return {
            "v": PROTOCOL_VERSION,
            "preference_hash": self.preference_hash,
            "checks": entries,
            "cookie": self.cookie,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "BatchCheckRequest":
        raw_checks = _field(payload, "checks", list)
        if len(raw_checks) > MAX_BATCH_CHECKS:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"batch of {len(raw_checks)} checks exceeds the limit of "
                f"{MAX_BATCH_CHECKS}; split it",
            )
        checks: list[tuple[str, str]] = []
        keys: list[str | None] = []
        for index, entry in enumerate(raw_checks):
            if not isinstance(entry, dict):
                raise ProtocolError(
                    ERR_BAD_REQUEST,
                    f"checks[{index}] must be an object with site/uri",
                )
            checks.append((_field(entry, "site", str),
                           _field(entry, "uri", str)))
            keys.append(_field(entry, "check_key", str, required=False))
        return cls(
            preference_hash=_field(payload, "preference_hash", str),
            checks=tuple(checks),
            cookie=_field(payload, "cookie", bool,
                          required=False, default=False),
            check_keys=tuple(keys) if any(key is not None
                                          for key in keys) else None,
        )


@dataclass(frozen=True)
class BatchCheckResponse:
    """Decisions in request order."""

    results: tuple[CheckResponse, ...]

    def to_wire(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "results": [
                {key: value for key, value in result.to_wire().items()
                 if key != "v"}
                for result in self.results
            ],
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "BatchCheckResponse":
        raw = _field(payload, "results", list)
        results = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ProtocolError(ERR_BAD_REQUEST,
                                    f"results[{index}] must be an object")
            results.append(CheckResponse.from_wire(
                {"v": PROTOCOL_VERSION, **entry}))
        return cls(results=tuple(results))


@dataclass(frozen=True)
class MatchCorpusRequest:
    """POST /v1/match — one preference against every installed policy.

    Set-at-a-time: the server answers from its materialized decision
    cache where it can and repairs the misses with a bulk plan, so the
    response covers the whole corpus in a bounded number of statements
    regardless of how many policies are installed.
    """

    preference_hash: str

    def to_wire(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "preference_hash": self.preference_hash,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "MatchCorpusRequest":
        return cls(preference_hash=_field(payload, "preference_hash", str))


@dataclass(frozen=True)
class MatchCorpusEntry:
    """One policy's decision within a corpus match."""

    policy_id: int
    name: str | None
    version: int
    behavior: str | None
    rule_index: int | None
    cached: bool

    @property
    def decision(self) -> tuple:
        """The comparable decision, independent of cache temperature."""
        return (self.policy_id, self.behavior, self.rule_index)

    def to_wire(self) -> dict[str, Any]:
        return {
            "policy_id": self.policy_id,
            "name": self.name,
            "version": self.version,
            "behavior": self.behavior,
            "rule_index": self.rule_index,
            "cached": self.cached,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "MatchCorpusEntry":
        return cls(
            policy_id=_field(payload, "policy_id", int),
            name=_field(payload, "name", str, required=False),
            version=_field(payload, "version", int),
            behavior=_field(payload, "behavior", str, required=False),
            rule_index=_field(payload, "rule_index", int, required=False),
            cached=_field(payload, "cached", bool,
                          required=False, default=False),
        )


@dataclass(frozen=True)
class MatchCorpusResponse:
    """Every active policy's decision, ordered by policy id."""

    results: tuple[MatchCorpusEntry, ...]
    cache_hits: int
    cache_misses: int
    elapsed_seconds: float

    def to_wire(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "results": [entry.to_wire() for entry in self.results],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]
                  ) -> "MatchCorpusResponse":
        raw = _field(payload, "results", list)
        results = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ProtocolError(ERR_BAD_REQUEST,
                                    f"results[{index}] must be an object")
            results.append(MatchCorpusEntry.from_wire(entry))
        return cls(
            results=tuple(results),
            cache_hits=_field(payload, "cache_hits", int,
                              required=False, default=0),
            cache_misses=_field(payload, "cache_misses", int,
                                required=False, default=0),
            elapsed_seconds=_field(payload, "elapsed_seconds",
                                   (int, float), required=False,
                                   default=0.0),
        )


@dataclass(frozen=True)
class InstallPolicyRequest:
    """POST /v1/policies — shred a policy (and optionally its reference
    file) into the store; supersedes earlier versions of the same name."""

    policy: str
    site: str | None = None
    reference_file: str | None = None

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {"v": PROTOCOL_VERSION, "policy": self.policy}
        if self.site is not None:
            wire["site"] = self.site
        if self.reference_file is not None:
            wire["reference_file"] = self.reference_file
        return wire

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "InstallPolicyRequest":
        request = cls(
            policy=_field(payload, "policy", str),
            site=_field(payload, "site", str, required=False),
            reference_file=_field(payload, "reference_file", str,
                                  required=False),
        )
        if request.reference_file is not None and request.site is None:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                "installing a reference_file requires a site",
            )
        return request


@dataclass(frozen=True)
class InstallPolicyResponse:
    """The shred report, over the wire."""

    policy_id: int
    statements: int
    data_items: int
    categories: int
    seconds: float
    reference_rows: int | None = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "v": PROTOCOL_VERSION,
            "policy_id": self.policy_id,
            "statements": self.statements,
            "data_items": self.data_items,
            "categories": self.categories,
            "seconds": self.seconds,
            "reference_rows": self.reference_rows,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]
                  ) -> "InstallPolicyResponse":
        return cls(
            policy_id=_field(payload, "policy_id", int),
            statements=_field(payload, "statements", int),
            data_items=_field(payload, "data_items", int),
            categories=_field(payload, "categories", int),
            seconds=_field(payload, "seconds", (int, float),
                           required=False, default=0.0),
            reference_rows=_field(payload, "reference_rows", int,
                                  required=False),
        )


def error_from_http(status: int, body: bytes | str) -> ProtocolError:
    """Turn an HTTP error response into the ProtocolError it carries.

    Non-envelope bodies (a proxy's HTML error page, a truncated read)
    degrade to ``internal-error`` with the status attached, so callers
    always get a ProtocolError with a usable ``code``.
    """
    try:
        envelope = ErrorEnvelope.from_wire(decode(body))
    except ProtocolError:
        return ProtocolError(ERR_INTERNAL,
                             f"HTTP {status} with unreadable error body",
                             http_status=status)
    return ProtocolError(envelope.code, envelope.message,
                         http_status=status,
                         retry_after=envelope.retry_after)
