"""Command-line interface: ``p3pdb`` (or ``python -m repro``).

Subcommands::

    p3pdb validate  POLICY.xml            # validate a P3P policy
    p3pdb notice    POLICY.xml            # plain-language privacy notice
    p3pdb shred     POLICY.xml [-o DB]    # shred into the optimized schema
    p3pdb translate PREF.xml [--dialect]  # show the SQL / XQuery
    p3pdb match     POLICY.xml PREF.xml [--engine]   # one check
    p3pdb match     --all PREF.xml [--corpus-size N] # whole-corpus match
    p3pdb explain   POLICY.xml PREF.xml   # trace why rules fire
    p3pdb corpus    [-o DIR]              # emit the synthetic workload
    p3pdb report    [POLICY.xml ...]      # corpus analytics
    p3pdb bench     [EXPERIMENT ...] [--markdown] [--json FILE]
    p3pdb serve     [--db FILE] [--port N] [--max-inflight N] [--async]
    p3pdb cluster   [--shards N] [--replicas M] [--db-dir DIR] [--port N]
                    [--async]
    p3pdb lint      [PATH ...] [--baseline FILE] [--update-baseline]
    p3pdb audit     [POLICY.xml ...] [-p PREF.xml ...] [--no-literal]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.appel.parser import parse_ruleset
from repro.errors import ReproError
from repro.p3p.parser import parse_policy
from repro.p3p.serializer import serialize_policy
from repro.p3p.validator import validate_policy


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _load_preference(path: str):
    """Parse an APPEL preference file, printing lint findings to stderr.

    Vocabulary problems (misspelled terms, unknown behaviors) and
    reachability findings (rules shadowed under first-rule-wins) never
    stop the command — a legal-but-suspect ruleset still deserves
    translation and matching — but the author sees them every time the
    file is loaded.
    """
    from repro.analysis import analyze_ruleset, validate_ruleset

    preference = parse_ruleset(_read(path))
    for problem in validate_ruleset(preference):
        print(f"lint: {path}: {problem}", file=sys.stderr)
    for finding in analyze_ruleset(preference):
        print(f"lint: {path}: {finding}", file=sys.stderr)
    return preference


def _cmd_validate(args: argparse.Namespace) -> int:
    policy = parse_policy(_read(args.policy))
    problems = validate_policy(policy)
    for problem in problems:
        print(problem)
    errors = sum(1 for p in problems if p.severity == "error")
    print(f"{len(problems)} problem(s), {errors} error(s)")
    return 1 if errors else 0


def _cmd_shred(args: argparse.Namespace) -> int:
    from repro.storage.database import Database
    from repro.storage.shredder import PolicyStore

    policy = parse_policy(_read(args.policy))
    store = PolicyStore(Database(args.output))
    report = store.install_policy(policy)
    print(f"policy_id={report.policy_id} statements={report.statements} "
          f"data_items={report.data_items} categories={report.categories} "
          f"seconds={report.seconds:.4f}")
    if args.output == ":memory:":
        print("(in-memory database discarded; pass -o FILE to keep it)")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    preference = _load_preference(args.preference)
    if args.dialect == "xquery":
        from repro.translate.appel_to_xquery import XQueryTranslator

        if args.show_sql:
            from repro.errors import TranslationTooComplexError
            from repro.translate.plan import APPLICABLE_POLICY_PARAM
            from repro.xquery.parser import parse_query
            from repro.xquery.structural import StructuralCompiler
            from repro.xquery.to_sql import XTableCompiler

        for index, rule in enumerate(
                XQueryTranslator().translate_ruleset(preference).rules):
            print(f"-- rule {index} (behavior: {rule.behavior})")
            print(rule.xquery)
            if args.show_sql:
                query = parse_query(rule.xquery)
                try:
                    xtable_sql = XTableCompiler().compile_query(
                        query, APPLICABLE_POLICY_PARAM)
                    print("-- XTABLE SQL:")
                    print(xtable_sql + ";")
                except TranslationTooComplexError as exc:
                    print(f"-- XTABLE SQL: unavailable ({exc})")
                structural = StructuralCompiler().compile_rule(query, index)
                print(f"-- structural SQL ({len(structural.binds)} bind(s)):")
                print(structural.sql + ";")
            print()
        return 0

    from repro.translate.appel_to_sql import (
        GenericSqlTranslator,
        OptimizedSqlTranslator,
    )

    translator = (GenericSqlTranslator() if args.dialect == "sql-generic"
                  else OptimizedSqlTranslator())
    applicable = args.applicable_policy_sql or "SELECT 1 AS policy_id"
    for index, rule in enumerate(
            translator.translate_ruleset(preference, applicable).rules):
        print(f"-- rule {index} (behavior: {rule.behavior})")
        print(rule.sql + ";")
        print()
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    if args.all:
        return _match_all(args)
    if args.preference is None:
        print("match: a PREFERENCE file is required unless --all "
              "matches against the synthetic corpus", file=sys.stderr)
        return 2
    from repro.engines import (
        GenericSqlMatchEngine,
        NativeAppelMatchEngine,
        SqlMatchEngine,
        XQueryNativeMatchEngine,
        XQueryStructuralMatchEngine,
        XTableMatchEngine,
    )

    factories = {
        "appel": NativeAppelMatchEngine,
        "sql": SqlMatchEngine,
        "sql-generic": GenericSqlMatchEngine,
        "xquery": XTableMatchEngine,
        "xquery-native": XQueryNativeMatchEngine,
        "xquery-structural": XQueryStructuralMatchEngine,
    }
    policy = parse_policy(_read(args.policy))
    preference = _load_preference(args.preference)
    engine = factories[args.engine]()
    handle = engine.install(policy)
    outcome = engine.match(handle, preference)
    if outcome.failed:
        print(f"engine={engine.name} FAILED: {outcome.error}")
        return 2
    print(f"engine={engine.name} behavior={outcome.behavior} "
          f"rule={outcome.rule_index} "
          f"convert={outcome.convert_seconds * 1000:.3f}ms "
          f"query={outcome.query_seconds * 1000:.3f}ms")
    return 0 if outcome.behavior != "block" else 3


def _match_all(args: argparse.Namespace) -> int:
    """``p3pdb match --all PREF.xml``: one preference, whole corpus.

    Installs the synthetic corpus into an in-memory server, registers
    the preference (materializing its decisions), and runs the
    set-at-a-time match — the second match in the output demonstrates
    the fully-cached path.
    """
    from repro.corpus.policies import fortune_corpus
    from repro.server.policy_server import PolicyServer

    # With --all the single positional is the preference file.
    path = args.preference or args.policy
    preference = _load_preference(path)
    server = PolicyServer()
    try:
        for policy in fortune_corpus(seed=args.seed,
                                     count=args.corpus_size):
            server.install_policy(policy)
        cached = server.register_preference(preference)
        result = server.match_all(preference)
        print(f"{'policy':24s} {'version':>7s} {'behavior':>8s} "
              f"{'rule':>4s} {'cached':>6s}")
        for decision in result.decisions:
            behavior = decision.behavior or "-"
            rule = "-" if decision.rule_index is None \
                else str(decision.rule_index)
            print(f"{decision.name or '?':24s} {decision.version:7d} "
                  f"{behavior:>8s} {rule:>4s} "
                  f"{'yes' if decision.cached else 'no':>6s}")
        blocked = sum(1 for d in result.decisions
                      if d.behavior == "block")
        print(f"\n{len(result.decisions)} policies, {blocked} blocked; "
              f"{cached} decisions materialized; "
              f"match: {result.cache_hits} hit(s), "
              f"{result.cache_misses} miss(es), "
              f"{result.elapsed_seconds * 1000:.3f}ms")
        return 0
    finally:
        server.close()


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.appel.serializer import serialize_ruleset
    from repro.corpus.policies import corpus_statistics, fortune_corpus
    from repro.corpus.preferences import jrc_suite

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    policies = fortune_corpus(seed=args.seed)
    for policy in policies:
        (out / f"policy-{policy.name}.xml").write_text(
            serialize_policy(policy), encoding="utf-8"
        )
    for level, preference in jrc_suite().items():
        slug = level.lower().replace(" ", "-")
        (out / f"preference-{slug}.xml").write_text(
            serialize_ruleset(preference), encoding="utf-8"
        )
    stats = corpus_statistics(policies)
    print(f"wrote {stats.policy_count} policies and 5 preferences to {out}")
    print(f"sizes: {stats.min_kb:.1f}-{stats.max_kb:.1f} KB, "
          f"avg {stats.avg_kb:.1f} KB, "
          f"{stats.total_statements} statements")
    return 0


def _cmd_notice(args: argparse.Namespace) -> int:
    from repro.p3p.notice import policy_notice

    print(policy_notice(parse_policy(_read(args.policy))), end="")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.appel.explain import ExplainingEngine

    policy = parse_policy(_read(args.policy))
    preference = _load_preference(args.preference)
    explanation = ExplainingEngine().explain(policy, preference)
    print(explanation.render())
    return 0 if explanation.behavior != "block" else 3


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.corpus.analysis import (
        acceptance_matrix,
        consent_profile,
        format_census,
        vocabulary_census,
    )
    from repro.corpus.preferences import jrc_suite

    if args.policies:
        policies = [parse_policy(_read(path)) for path in args.policies]
    else:
        from repro.corpus.policies import fortune_corpus

        policies = fortune_corpus(seed=args.seed)

    print(f"{len(policies)} policies\n")
    print(format_census(vocabulary_census(policies)))
    profile = consent_profile(policies)
    print("\nConsent profile:")
    print(f"  offer opt-in     : {profile.policies_with_opt_in}")
    print(f"  offer opt-out    : {profile.policies_with_opt_out}")
    print(f"  fully mandatory  : {profile.policies_all_mandatory}")
    print("\nPolicies blocked per preference level:")
    for level, blocked in acceptance_matrix(policies, jrc_suite()).items():
        print(f"  {level:10s} blocks {blocked:3d} / {len(policies)}")
    return 0


_BENCH_EXPERIMENTS = ("dataset-stats", "preference-stats", "shredding",
                      "figure20", "figure21", "warm-cold", "ablation",
                      "concurrency", "http-load", "fault-tolerance",
                      "plans", "bulk", "cluster", "async", "structural")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.json:
        results = bench.save_results(args.json)
        print(f"wrote results for {len(results) - 1} experiments "
              f"to {args.json}")
        return 0
    if args.cluster_json:
        results = bench.save_cluster_results(args.cluster_json)
        rows = results["e13_cluster"]["rows"]
        print(f"wrote E13 cluster results ({len(rows)} deployments) "
              f"to {args.cluster_json}")
        return 0
    if args.async_json:
        results = bench.save_async_results(args.async_json)
        rows = results["e14_async"]["batching"]
        print(f"wrote E14 async results ({len(rows)} batching rows) "
              f"to {args.async_json}")
        return 0
    if args.structural_json:
        results = bench.save_structural_results(args.structural_json)
        rows = results["e15_structural"]["rows"]
        print(f"wrote E15 structural XQuery results ({len(rows)} "
              f"level/engine cells) to {args.structural_json}")
        return 0

    wanted = args.experiments or list(_BENCH_EXPERIMENTS)
    samples = None
    for experiment in wanted:
        if experiment == "dataset-stats":
            print(bench.format_dataset_stats(bench.dataset_statistics()))
        elif experiment == "preference-stats":
            print(bench.format_preference_stats(
                bench.preference_statistics()))
        elif experiment == "shredding":
            print(bench.format_shredding(bench.shredding_experiment()))
        elif experiment in ("figure20", "figure21"):
            if samples is None:
                samples = bench.run_matching_grid()
            if experiment == "figure20":
                rows20 = bench.figure20(samples)
                print(bench.markdown_figure20(rows20) if args.markdown
                      else bench.format_figure20(rows20))
            else:
                rows21 = bench.figure21(samples)
                print(bench.markdown_figure21(rows21) if args.markdown
                      else bench.format_figure21(rows21))
        elif experiment == "warm-cold":
            print(bench.format_warm_cold(bench.warm_cold_experiment()))
        elif experiment == "ablation":
            print(bench.format_ablation(bench.ablation_experiment()))
        elif experiment == "concurrency":
            print(bench.format_concurrency(bench.concurrency_experiment()))
        elif experiment == "http-load":
            print(bench.format_http_load(bench.http_load_experiment()))
        elif experiment == "fault-tolerance":
            print(bench.format_fault_tolerance(
                bench.fault_tolerance_experiment()))
        elif experiment == "plans":
            print(bench.format_plan_compilation(
                bench.plan_compilation_experiment()))
        elif experiment == "bulk":
            print(bench.format_bulk_matching(
                bench.bulk_matching_experiment()))
        elif experiment == "cluster":
            print(bench.format_cluster(bench.cluster_experiment()))
        elif experiment == "async":
            print(bench.format_async(
                bench.connection_scaling_experiment(),
                bench.batching_load_experiment()))
        elif experiment == "structural":
            rows15 = bench.structural_xquery_experiment()
            print(bench.format_structural(
                rows15,
                bench.structural_speedups(rows15),
                bench.structural_sql_gap(rows15)))
        else:
            print(f"unknown experiment: {experiment}", file=sys.stderr)
            return 2
        print()
    return 0


#: Test instrumentation: when set, called with the bound P3PHttpServer
#: before serve_forever starts (lets tests capture and stop the server).
_SERVE_STARTED_HOOK = None


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.net.aio import AsyncP3PServer
    from repro.net.httpd import P3PHttpServer
    from repro.server.policy_server import PolicyServer

    policy_server = PolicyServer(args.db, engine=args.engine)
    server_class = AsyncP3PServer if args.async_frontend else P3PHttpServer
    httpd = server_class(policy_server, (args.host, args.port),
                         max_inflight=args.max_inflight,
                         max_body_bytes=args.max_body_bytes,
                         owns_policy_server=True)
    host, port = httpd.host, httpd.port
    frontend = "async" if args.async_frontend else "threaded"
    print(f"p3pdb: serving on http://{host}:{port} "
          f"(db={args.db or ':memory:'}, engine={args.engine}, "
          f"frontend={frontend}, "
          f"max-inflight={args.max_inflight}); Ctrl-C to stop")
    if args.ready_file:
        Path(args.ready_file).write_text(f"{host} {port}\n",
                                         encoding="utf-8")

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    # Signal handlers are a main-thread privilege; tests run us on a
    # worker thread and stop the server through the hook instead.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _terminate)
    if _SERVE_STARTED_HOOK is not None:
        _SERVE_STARTED_HOOK(httpd)
    try:
        httpd.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        httpd.close()      # stops accepting, flushes the check log
        print(f"p3pdb: shut down; {policy_server.log.written} "
              "check-log rows durable")
    return 0


#: Test instrumentation: when set, called with the started P3PCluster
#: before the command blocks (lets tests capture and stop the cluster).
_CLUSTER_STARTED_HOOK = None


def _cmd_cluster(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster import P3PCluster

    cluster = P3PCluster(
        shards=args.shards,
        replicas=args.replicas,
        db_dir=args.db_dir,
        in_process=args.in_process,
        host=args.host,
        router_port=args.port,
        max_inflight=args.max_inflight,
        frontend="async" if args.async_frontend else "threaded",
    )
    cluster.start()
    stop = threading.Event()
    try:
        print(f"p3pdb: cluster router on {cluster.base_url} "
              f"({args.shards} shard(s) x {args.replicas} replica(s), "
              f"db-dir={cluster.db_dir}); Ctrl-C to stop")
        for shard in cluster.topology.shard_ids():
            replicas = ", ".join(cluster.replica_urls(shard)) or "-"
            print(f"  shard {shard}: primary {cluster.primary_url(shard)} "
                  f"replicas [{replicas}]")
        if args.ready_file:
            Path(args.ready_file).write_text(
                f"{cluster.router.host} {cluster.router.port}\n",
                encoding="utf-8")

        def _terminate(signum, frame):
            stop.set()

        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, _terminate)
        if _CLUSTER_STARTED_HOOK is not None:
            _CLUSTER_STARTED_HOOK(cluster, stop)
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        cluster.close()      # router, then graceful worker drains
        print("p3pdb: cluster shut down")
    return 0


#: Default location of the lint grandfather file, relative to the
#: working directory (the repo root in CI).
LINT_BASELINE = "lint-baseline.json"


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        concurrency_paths,
        count_by_severity,
        explain_rule,
        known_rule_ids,
        lint_paths,
        load_baseline,
        save_baseline,
        sort_findings,
        split_by_baseline,
    )

    if args.explain:
        try:
            print(explain_rule(args.explain))
        except KeyError:
            print(f"error: unknown rule id {args.explain!r}; known ids:",
                  file=sys.stderr)
            for rule_id in known_rule_ids():
                print(f"  {rule_id}", file=sys.stderr)
            return 1
        return 0

    targets = args.paths or ["src"]
    findings = lint_paths(targets)
    if args.concurrency:
        findings = findings + concurrency_paths(targets)
    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    new, grandfathered = split_by_baseline(findings, baseline)
    for finding in sort_findings(new):
        print(finding)
    if grandfathered:
        print(f"({len(grandfathered)} grandfathered finding(s) "
              f"suppressed by {args.baseline})")
    counts = count_by_severity(new)
    print(f"{len(new)} new finding(s): {counts['error']} error(s), "
          f"{counts['warning']} warning(s)")
    if new:
        print("(p3pdb lint --explain <rule-id> documents any rule)")
    return 1 if new else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis import audit_corpus, sort_findings

    if args.policies:
        policies = [parse_policy(_read(path)) for path in args.policies]
    else:
        from repro.corpus.policies import fortune_corpus

        policies = fortune_corpus(seed=args.seed)
    if args.preference:
        preferences = {Path(path).stem: parse_ruleset(_read(path))
                       for path in args.preference}
    else:
        from repro.corpus.preferences import jrc_suite

        preferences = jrc_suite()

    report = audit_corpus(policies, preferences,
                          audit_literal=not args.no_literal)
    for finding in sort_findings(report.findings + report.reachability):
        print(finding)
    for pref, policy, rule_index in report.differential_violations:
        print(f"DIFFERENTIAL VIOLATION: {pref}: rule[{rule_index}] was "
              f"flagged unreachable but fired on policy {policy}")
    scans = sum(1 for f in report.findings if f.code == "full-scan")
    taints = sum(1 for f in report.findings if f.code == "tainted-sql")
    unreachable = sum(1 for f in report.reachability
                      if f.code == "unreachable-rule")
    print(f"audited {report.preferences} preference(s) against "
          f"{report.policies} policies: {report.plans_explained} plan(s), "
          f"{report.structural_plans_explained} structural plan(s), "
          f"{report.statements_explained} statement(s) explained")
    print(f"full scans of hot tables: {scans}; tainted SQL: {taints}; "
          f"unreachable rules: {unreachable} "
          f"(differential {'OK' if report.differential_ok else 'FAILED'})")
    ok = report.ok
    if args.sql_contracts:
        from repro.analysis import contract_report

        contracts = contract_report(policies, preferences)
        for finding in sort_findings(contracts.findings):
            print(finding)
        per_source = ", ".join(f"{source}={count}" for source, count
                               in contracts.per_source)
        print(f"sql contracts: {contracts.statements_checked} "
              f"statement(s) validated ({per_source}; "
              f"{contracts.xtable_over_budget} xtable rule(s) over the "
              f"default complexity budget) — "
              f"{'OK' if contracts.ok else 'FAILED'}")
        ok = ok and contracts.ok
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p3pdb",
        description="Server-centric P3P on database technology "
                    "(ICDE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="validate a P3P policy")
    p_validate.add_argument("policy")
    p_validate.set_defaults(func=_cmd_validate)

    p_shred = sub.add_parser("shred",
                             help="shred a policy into the optimized schema")
    p_shred.add_argument("policy")
    p_shred.add_argument("-o", "--output", default=":memory:",
                         help="SQLite database file (default in-memory)")
    p_shred.set_defaults(func=_cmd_shred)

    p_translate = sub.add_parser("translate",
                                 help="translate an APPEL preference")
    p_translate.add_argument("preference")
    p_translate.add_argument("--dialect", default="sql",
                             choices=("sql", "sql-generic", "xquery"))
    p_translate.add_argument("--applicable-policy-sql", default=None,
                             help="override the ApplicablePolicy subquery")
    p_translate.add_argument("--show-sql", action="store_true",
                             dest="show_sql",
                             help="with --dialect xquery: also print each "
                                  "rule's compiled SQL (naive XTABLE and "
                                  "structural-join forms)")
    p_translate.set_defaults(func=_cmd_translate)

    p_match = sub.add_parser("match",
                             help="match a preference against a policy "
                                  "(or, with --all, the whole corpus)")
    p_match.add_argument("policy",
                         help="policy XML file (with --all: the "
                              "preference file)")
    p_match.add_argument("preference", nargs="?", default=None)
    p_match.add_argument("--engine", default="sql",
                         choices=("appel", "sql", "sql-generic", "xquery",
                                  "xquery-native", "xquery-structural"))
    p_match.add_argument("--all", action="store_true",
                         help="set-at-a-time: match the preference "
                              "against every policy of the synthetic "
                              "corpus through the decision cache")
    p_match.add_argument("--corpus-size", type=int, default=None,
                         dest="corpus_size",
                         help="with --all: corpus size (default: the "
                              "full synthetic corpus)")
    p_match.add_argument("--seed", type=int, default=2003,
                         help="with --all: corpus generator seed")
    p_match.set_defaults(func=_cmd_match)

    p_corpus = sub.add_parser("corpus",
                              help="emit the synthetic benchmark workload")
    p_corpus.add_argument("-o", "--output", default="corpus")
    p_corpus.add_argument("--seed", type=int, default=2003)
    p_corpus.set_defaults(func=_cmd_corpus)

    p_notice = sub.add_parser("notice",
                              help="render the plain-language privacy "
                                   "notice a policy encodes")
    p_notice.add_argument("policy")
    p_notice.set_defaults(func=_cmd_notice)

    p_explain = sub.add_parser("explain",
                               help="trace why a preference fires (or "
                                    "not) against a policy")
    p_explain.add_argument("policy")
    p_explain.add_argument("preference")
    p_explain.set_defaults(func=_cmd_explain)

    p_report = sub.add_parser("report",
                              help="corpus analytics (census, consent, "
                                   "acceptance per level)")
    p_report.add_argument("policies", nargs="*",
                          help="policy XML files (default: the synthetic "
                               "corpus)")
    p_report.add_argument("--seed", type=int, default=2003)
    p_report.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser("bench",
                             help="regenerate the paper's tables")
    p_bench.add_argument("experiments", nargs="*",
                         metavar="EXPERIMENT",
                         help=f"one of: {', '.join(_BENCH_EXPERIMENTS)}")
    p_bench.add_argument("--markdown", action="store_true",
                         help="emit figure20/figure21 as markdown tables")
    p_bench.add_argument("--json", metavar="FILE", default=None,
                         help="run every experiment and write a JSON "
                              "results document")
    p_bench.add_argument("--async-json", metavar="FILE", default=None,
                         dest="async_json",
                         help="run E14 (async front end: connection "
                              "scaling + micro-batching throughput) and "
                              "write BENCH_E14.json-style output")
    p_bench.add_argument("--cluster-json", metavar="FILE", default=None,
                         dest="cluster_json",
                         help="run only E13 (spawns worker processes) "
                              "and write its JSON document, e.g. "
                              "BENCH_E13.json")
    p_bench.add_argument("--structural-json", metavar="FILE", default=None,
                         dest="structural_json",
                         help="run only E15 (structural XQuery vs naive "
                              "XTABLE vs direct SQL) and write its JSON "
                              "document, e.g. BENCH_E15.json")
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser("serve",
                             help="run the HTTP policy server "
                                  "(POST /v1/check et al.)")
    p_serve.add_argument("--db", default=None,
                         help="SQLite database file (default in-memory; "
                              "a file enables the WAL reader pool)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="address to bind (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="port to bind; 0 picks an ephemeral port "
                              "(default 8080)")
    p_serve.add_argument("--engine", default="sql",
                         choices=("sql", "structural"),
                         help="per-check plan compiler: the optimized-"
                              "schema SQL plans (default) or the "
                              "structural XQuery compiler against a "
                              "generic-schema sidecar")
    p_serve.add_argument("--async", action="store_true",
                         dest="async_frontend",
                         help="serve through the asyncio front end with "
                              "cross-connection micro-batching instead "
                              "of the thread-per-connection server")
    p_serve.add_argument("--max-body-bytes", type=int,
                         default=4 * 1024 * 1024, dest="max_body_bytes",
                         help="largest accepted request body; beyond it "
                              "the server answers 413 payload-too-large "
                              "(default 4 MiB)")
    p_serve.add_argument("--max-inflight", type=int, default=64,
                         help="admission-control limit on concurrent "
                              "checks; beyond it the server sheds load "
                              "with 503 (default 64)")
    p_serve.add_argument("--ready-file", default=None,
                         help="write 'HOST PORT' here once bound "
                              "(for scripts wrapping an ephemeral port)")
    p_serve.set_defaults(func=_cmd_serve)

    p_cluster = sub.add_parser("cluster",
                               help="run the sharded, replicated cluster "
                                    "(consistent-hash router + workers)")
    p_cluster.add_argument("--shards", type=int, default=2,
                           help="number of shard primaries (default 2)")
    p_cluster.add_argument("--replicas", type=int, default=0,
                           help="read replicas per shard (default 0)")
    p_cluster.add_argument("--db-dir", default=None, dest="db_dir",
                           help="directory for the per-shard SQLite files "
                                "(default: a temporary directory removed "
                                "on shutdown)")
    p_cluster.add_argument("--host", default="127.0.0.1",
                           help="address to bind (default 127.0.0.1)")
    p_cluster.add_argument("--port", type=int, default=8080,
                           help="router port; 0 picks an ephemeral port "
                                "(default 8080)")
    p_cluster.add_argument("--async", action="store_true",
                           dest="async_frontend",
                           help="front every shard with the asyncio "
                                "server (micro-batched plan execution) "
                                "instead of the threaded one")
    p_cluster.add_argument("--max-inflight", type=int, default=64,
                           help="per-worker admission limit (default 64)")
    p_cluster.add_argument("--in-process", action="store_true",
                           dest="in_process",
                           help="run workers on threads instead of "
                                "processes (debugging)")
    p_cluster.add_argument("--ready-file", default=None,
                           help="write 'HOST PORT' of the router here "
                                "once every worker is up")
    p_cluster.set_defaults(func=_cmd_cluster)

    p_lint = sub.add_parser("lint",
                            help="static lint of the repo's own sources "
                                 "(connection/SQL/cache discipline)")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--baseline", default=LINT_BASELINE,
                        help="grandfather file; only findings not in it "
                             f"fail the run (default {LINT_BASELINE})")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings instead of gating on it")
    p_lint.add_argument("--concurrency", action="store_true",
                        help="also run the concurrency-safety analyzer "
                             "(async blocking calls, lock discipline, "
                             "guarded attributes, spawn safety)")
    p_lint.add_argument("--explain", metavar="RULE-ID", default=None,
                        help="print the catalog entry for one rule id "
                             "(e.g. async-blocking) and exit")
    p_lint.set_defaults(func=_cmd_lint)

    p_audit = sub.add_parser("audit",
                             help="EXPLAIN-audit compiled preference "
                                  "plans + differential rule "
                                  "reachability over a policy corpus")
    p_audit.add_argument("policies", nargs="*", metavar="POLICY",
                         help="policy XML files (default: the synthetic "
                              "29-policy corpus)")
    p_audit.add_argument("-p", "--preference", action="append",
                         metavar="PREF",
                         help="APPEL preference XML (repeatable; default: "
                              "the five JRC levels)")
    p_audit.add_argument("--seed", type=int, default=2003)
    p_audit.add_argument("--no-literal", action="store_true",
                         help="audit only compiled plans, skipping the "
                              "per-policy literal translations (faster)")
    p_audit.add_argument("--sql-contracts", action="store_true",
                         dest="sql_contracts",
                         help="also validate every statement the six "
                              "engines can emit against the schema "
                              "catalog (names, bind arity, write-sets, "
                              "index coverage)")
    p_audit.set_defaults(func=_cmd_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
