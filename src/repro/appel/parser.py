"""Parse APPEL ruleset XML into the model of :mod:`repro.appel.model`.

APPEL documents interleave two namespaces: RULESET/RULE (and the
``connective`` attribute) live in the APPEL namespace, while the body
patterns reuse the P3P namespace.  As with the policy parser, matching is
by local name, but ``appel:connective`` is recognized wherever it appears
and never treated as a pattern attribute.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro import xmlutil
from repro.errors import AppelParseError, VocabularyError
from repro.appel.model import Expression, Rule, Ruleset
from repro.vocab import terms

_CONNECTIVE_ATTR = "connective"
_APPEL_META_ATTRS = frozenset({"connective", "behavior", "description",
                               "prompt", "persona", "promptmsg"})


def parse_ruleset(source: str | ET.Element) -> Ruleset:
    """Parse an APPEL ruleset from XML text or an element tree."""
    if isinstance(source, ET.Element):
        root = source
    else:
        try:
            root = xmlutil.parse_string(source)
        except ET.ParseError as exc:
            raise AppelParseError(f"malformed APPEL XML: {exc}") from exc

    ruleset_el = xmlutil.first_by_local_name(root, "RULESET")
    if ruleset_el is None:
        # Accept a bare RULE as a one-rule ruleset.
        rule_el = xmlutil.first_by_local_name(root, "RULE")
        if rule_el is None:
            raise AppelParseError("document contains no RULESET or RULE")
        return Ruleset(rules=(_parse_rule(rule_el),))

    rules: list[Rule] = []
    for child in ruleset_el:
        tag = xmlutil.local_name(child.tag)
        if tag == "RULE":
            rules.append(_parse_rule(child))
        elif tag == "OTHERWISE":
            # Older drafts close a ruleset with OTHERWISE: an unconditional
            # rule whose behavior defaults to "request".
            behavior = xmlutil.local_attrib(child).get("behavior", "request")
            rules.append(Rule(behavior=behavior))
        else:
            raise AppelParseError(f"unexpected element under RULESET: {tag!r}")

    if not rules:
        raise AppelParseError("RULESET contains no RULE elements")
    attrib = xmlutil.local_attrib(ruleset_el)
    return Ruleset(rules=tuple(rules), description=attrib.get("description"))


def parse_rule(source: str | ET.Element) -> Rule:
    """Parse a single APPEL rule."""
    if isinstance(source, ET.Element):
        root = source
    else:
        try:
            root = xmlutil.parse_string(source)
        except ET.ParseError as exc:
            raise AppelParseError(f"malformed APPEL XML: {exc}") from exc
    rule_el = xmlutil.first_by_local_name(root, "RULE")
    if rule_el is None:
        raise AppelParseError("document contains no RULE element")
    return _parse_rule(rule_el)


def _parse_rule(element: ET.Element) -> Rule:
    attrib = xmlutil.local_attrib(element)
    behavior = attrib.get("behavior")
    if behavior is None:
        raise AppelParseError("RULE lacks a behavior attribute")

    connective = attrib.get(_CONNECTIVE_ATTR, terms.CONNECTIVE_DEFAULT)
    expressions = tuple(_parse_expression(child) for child in element)

    try:
        return Rule(
            behavior=behavior,
            expressions=expressions,
            connective=connective,
            description=attrib.get("description"),
            prompt=attrib.get("prompt") == "yes",
        )
    except VocabularyError as exc:
        raise AppelParseError(str(exc)) from exc


def _parse_expression(element: ET.Element) -> Expression:
    attrib = xmlutil.local_attrib(element)
    connective = attrib.get(_CONNECTIVE_ATTR, terms.CONNECTIVE_DEFAULT)

    attributes = tuple(
        sorted(
            (key, value)
            for key, value in attrib.items()
            if key not in _APPEL_META_ATTRS
        )
    )
    subexpressions = tuple(_parse_expression(child) for child in element)

    try:
        return Expression(
            name=xmlutil.local_name(element.tag),
            attributes=attributes,
            connective=connective,
            subexpressions=subexpressions,
        )
    except VocabularyError as exc:
        raise AppelParseError(str(exc)) from exc
