"""Static analysis of APPEL rulesets: statistics and sanity checks.

:func:`ruleset_stats` provides the numbers reported in the paper's
Figure 19 (rule count, serialized size in KB) plus structural metrics used
by the benchmark reports; :func:`validate_ruleset` flags patterns that can
never match the P3P vocabulary (misspelled element names, impossible
attribute values), which is the ruleset-side analogue of policy validation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.appel.model import Expression, Ruleset
from repro.appel.serializer import serialize_ruleset
from repro.vocab import schema as p3p_schema
from repro.vocab import terms


@dataclass(frozen=True)
class RulesetStats:
    """Summary statistics for one ruleset (the Figure 19 row shape)."""

    rule_count: int
    size_bytes: int
    expression_count: int
    max_depth: int
    connective_census: tuple[tuple[str, int], ...]
    behaviors: tuple[str, ...]

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0


def ruleset_stats(ruleset: Ruleset) -> RulesetStats:
    """Compute the statistics reported for each preference in Figure 19."""
    serialized = serialize_ruleset(ruleset)
    expression_count = 0
    max_depth = 0
    census: Counter[str] = Counter()

    def visit(expr: Expression, depth: int) -> None:
        nonlocal expression_count, max_depth
        expression_count += 1
        max_depth = max(max_depth, depth)
        if expr.subexpressions:
            census[expr.connective] += 1
        for sub in expr.subexpressions:
            visit(sub, depth + 1)

    for rule in ruleset.rules:
        for expr in rule.expressions:
            visit(expr, 1)

    return RulesetStats(
        rule_count=ruleset.rule_count(),
        size_bytes=len(serialized.encode("utf-8")),
        expression_count=expression_count,
        max_depth=max_depth,
        connective_census=tuple(sorted(census.items())),
        behaviors=ruleset.behaviors(),
    )


@dataclass(frozen=True)
class RulesetProblem:
    """One finding from ruleset validation."""

    severity: str  # "error" | "warning"
    location: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.location}: {self.message}"


def validate_ruleset(ruleset: Ruleset) -> list[RulesetProblem]:
    """Check *ruleset* for patterns that cannot match any P3P policy."""
    problems: list[RulesetProblem] = []

    if not ruleset.has_catch_all():
        problems.append(
            RulesetProblem(
                "warning", "ruleset",
                "no catch-all rule: some policies will match no rule",
            )
        )

    for rule_index, rule in enumerate(ruleset.rules):
        location = f"rule[{rule_index}]"
        problems.extend(_validate_behavior(rule.behavior, location))
        for expr in rule.expressions:
            problems.extend(_validate_expression(expr, location))
        if rule.is_catch_all() and rule_index != len(ruleset.rules) - 1:
            problems.append(
                RulesetProblem(
                    "warning", location,
                    "catch-all rule is not last: later rules are dead",
                )
            )
    return problems


def _validate_behavior(behavior: str,
                       location: str) -> list[RulesetProblem]:
    """Flag rule behaviors outside the APPEL vocabulary.

    A behavior is an opaque action label, so an unknown one is a
    warning, not an error — the engine will happily return it.  But a
    near-miss of a standard behavior (case or padding) is almost
    always a typo that makes downstream behavior comparisons fail
    silently, so the finding says which standard behavior was meant.
    """
    if behavior in terms.BEHAVIOR_SET:
        return []
    normalized = behavior.strip().lower()
    if normalized in terms.BEHAVIOR_SET:
        return [RulesetProblem(
            "warning", location,
            f"non-standard behavior {behavior!r}: did you mean "
            f"{normalized!r}? (behaviors are compared exactly)",
        )]
    return [RulesetProblem(
        "warning", location,
        f"non-standard behavior {behavior!r}: not one of "
        + ", ".join(repr(b) for b in terms.BEHAVIORS),
    )]


def _validate_expression(expr: Expression,
                         location: str) -> list[RulesetProblem]:
    problems: list[RulesetProblem] = []
    here = f"{location}/{expr.name}"

    spec = p3p_schema.CATALOG.get(expr.name)
    if spec is None:
        problems.append(
            RulesetProblem(
                "error", here,
                f"pattern element {expr.name!r} is not in the P3P "
                "vocabulary: this expression can never match",
            )
        )
    else:
        for name, value in expr.attributes:
            attr_spec = spec.attribute(name)
            if attr_spec is None:
                problems.append(
                    RulesetProblem(
                        "error", here,
                        f"element {expr.name!r} has no attribute {name!r}",
                    )
                )
            elif attr_spec.values is not None and value not in attr_spec.values:
                problems.append(
                    RulesetProblem(
                        "error", here,
                        f"attribute {name!r} can never equal {value!r}",
                    )
                )
        allowed_children = frozenset(spec.children)
        for sub in expr.subexpressions:
            if (sub.name in p3p_schema.CATALOG
                    and sub.name not in allowed_children):
                problems.append(
                    RulesetProblem(
                        "error", here,
                        f"{sub.name!r} can never occur under {expr.name!r}",
                    )
                )

    for sub in expr.subexpressions:
        problems.extend(_validate_expression(sub, here))
    return problems
