"""Predefined APPEL rule templates (the JRC editor model, Section 3.3).

"JRC APPEL Preference Editor is a Java-based editor for preparing APPEL
preferences.  Each APPEL RULE can be added either by choosing from a set
of predefined RULEs, or by using an advanced mode."

This module is the predefined-rules half: a catalog of named, documented
block rules a user (or GUI) composes into a preference with
:func:`compose_preference`.  The JRC-style suite in
:mod:`repro.corpus.preferences` is hand-tuned for benchmark calibration;
these templates are the product feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.appel.model import Rule, Ruleset, expression, rule
from repro.errors import AppelParseError


@dataclass(frozen=True)
class RuleTemplate:
    """One selectable rule, with the explanation a GUI would display."""

    key: str
    title: str
    explanation: str
    build: Callable[[], Rule]


def _purpose_block(*values, description: str) -> Rule:
    return rule(
        "block",
        expression("POLICY",
                   expression("STATEMENT",
                              expression("PURPOSE", *values,
                                         connective="or"))),
        description=description,
    )


def _no_telemarketing() -> Rule:
    return _purpose_block(
        expression("telemarketing"),
        description="no telemarketing, with or without consent",
    )


def _no_uncontrolled_marketing() -> Rule:
    return _purpose_block(
        expression("contact", required="always"),
        expression("telemarketing", required="always"),
        description="marketing contact only with my consent",
    )


def _no_profiling() -> Rule:
    return _purpose_block(
        expression("individual-analysis"),
        expression("individual-decision"),
        description="no individually identified profiling",
    )


def _no_uncontrolled_profiling() -> Rule:
    return _purpose_block(
        expression("individual-analysis", required="always"),
        expression("individual-decision", required="always"),
        description="profiling only with my consent",
    )


def _no_third_parties() -> Rule:
    return rule(
        "block",
        expression("POLICY",
                   expression("STATEMENT",
                              expression("RECIPIENT",
                                         expression("other-recipient"),
                                         expression("unrelated"),
                                         expression("public"),
                                         connective="or"))),
        description="my data stays with the site and its agents",
    )


def _no_sensitive_data() -> Rule:
    return rule(
        "block",
        expression(
            "POLICY",
            expression(
                "STATEMENT",
                expression(
                    "DATA-GROUP",
                    expression(
                        "DATA",
                        expression("CATEGORIES",
                                   expression("health"),
                                   expression("financial"),
                                   expression("political"),
                                   expression("government"),
                                   connective="or"))))),
        description="no health, financial, political or government data",
    )


def _no_indefinite_retention() -> Rule:
    return rule(
        "block",
        expression("POLICY",
                   expression("STATEMENT",
                              expression("RETENTION",
                                         expression("indefinitely")))),
        description="no indefinite retention",
    )


def _require_disputes() -> Rule:
    # "has no DISPUTES-GROUP" is a negated connective on the *parent*:
    # POLICY[non-or over DISPUTES-GROUP] matches policies without one
    # (a connective on a childless expression would be vacuous).
    return rule(
        "block",
        expression("POLICY",
                   expression("DISPUTES-GROUP"),
                   connective="non-or"),
        description="the site must offer dispute resolution",
    )


def _require_access() -> Rule:
    return rule(
        "block",
        expression("POLICY",
                   expression("ACCESS", expression("none"))),
        description="the site must grant access to my data",
    )


#: The template catalog, in the order a GUI would list them.
TEMPLATES: dict[str, RuleTemplate] = {
    template.key: template
    for template in (
        RuleTemplate(
            "no-telemarketing", "No telemarketing",
            "Block sites that may call you for marketing, even with "
            "opt-in.", _no_telemarketing),
        RuleTemplate(
            "no-uncontrolled-marketing", "Marketing needs my consent",
            "Block sites that market to you without offering opt-in or "
            "opt-out.", _no_uncontrolled_marketing),
        RuleTemplate(
            "no-profiling", "No profiling",
            "Block sites that build individually identified profiles.",
            _no_profiling),
        RuleTemplate(
            "no-uncontrolled-profiling", "Profiling needs my consent",
            "Block profiling done without opt-in or opt-out.",
            _no_uncontrolled_profiling),
        RuleTemplate(
            "no-third-parties", "No third parties",
            "Block sites that share data beyond themselves and their "
            "agents.", _no_third_parties),
        RuleTemplate(
            "no-sensitive-data", "No sensitive data",
            "Block collection of health, financial, political or "
            "government data.", _no_sensitive_data),
        RuleTemplate(
            "no-indefinite-retention", "No indefinite retention",
            "Block sites that keep data forever.",
            _no_indefinite_retention),
        RuleTemplate(
            "require-disputes", "Require dispute resolution",
            "Block sites with no complaint channel.", _require_disputes),
        RuleTemplate(
            "require-access", "Require data access",
            "Block sites that grant no access to your own data.",
            _require_access),
    )
}


def template_keys() -> tuple[str, ...]:
    """All template keys in display order."""
    return tuple(TEMPLATES)


def compose_preference(keys: list[str],
                       catch_all_behavior: str = "request",
                       description: str | None = None) -> Ruleset:
    """Build a preference from selected templates, in the given order.

    A catch-all rule with *catch_all_behavior* is appended, as the APPEL
    draft requires.  Unknown keys raise AppelParseError.
    """
    rules: list[Rule] = []
    for key in keys:
        template = TEMPLATES.get(key)
        if template is None:
            raise AppelParseError(f"unknown rule template: {key!r}")
        rules.append(template.build())
    rules.append(rule(catch_all_behavior,
                      description="accept everything else"))
    return Ruleset(rules=tuple(rules), description=description)
