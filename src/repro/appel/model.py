"""Typed object model for APPEL 1.0 preference rulesets.

An APPEL preference is an ordered list of rules (Section 2.2 of the paper).
Each rule has a *behavior* (the action when the rule fires) and a *body*:
a pattern of expressions mirroring the P3P policy structure.  Every
expression carries a *connective* that combines its subexpressions:

========== =============================================================
and        all contained expressions found in the policy (default)
or         one or more contained expressions found
non-and    not all contained expressions found
non-or     none of the contained expressions found
and-exact  ``and`` + the policy contains only elements listed in the rule
or-exact   ``or`` + the policy contains only elements listed in the rule
========== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AppelParseError
from repro.vocab import terms


@dataclass(frozen=True)
class Expression:
    """One pattern element of a rule body (e.g. a STATEMENT or ``<admin/>``).

    ``attributes`` are the non-APPEL attributes that must match the policy
    element (after default resolution); ``connective`` governs how
    ``subexpressions`` are combined.
    """

    name: str
    attributes: tuple[tuple[str, str], ...] = ()
    connective: str = terms.CONNECTIVE_DEFAULT
    subexpressions: tuple["Expression", ...] = ()

    def __post_init__(self) -> None:
        terms.check_connective(self.connective)

    def attribute(self, name: str) -> str | None:
        """Value the expression requires for attribute *name*, or None."""
        for key, value in self.attributes:
            if key == name:
                return value
        return None

    def subexpression_names(self) -> frozenset[str]:
        """Names of the direct subexpressions (used by *-exact connectives)."""
        return frozenset(sub.name for sub in self.subexpressions)

    def depth(self) -> int:
        """Height of the expression tree (a leaf has depth 1)."""
        if not self.subexpressions:
            return 1
        return 1 + max(sub.depth() for sub in self.subexpressions)

    def size(self) -> int:
        """Total number of expressions in the tree, including self."""
        return 1 + sum(sub.size() for sub in self.subexpressions)


@dataclass(frozen=True)
class Rule:
    """One APPEL rule: behavior + body pattern.

    An empty body (no expressions) always fires — this is how the catch-all
    ``<appel:RULE behavior="request"/>`` at the end of Jane's preference
    works.  ``connective`` combines the top-level body expressions (almost
    always a single POLICY expression).
    """

    behavior: str
    expressions: tuple[Expression, ...] = ()
    connective: str = terms.CONNECTIVE_DEFAULT
    description: str | None = None
    prompt: bool = False

    def __post_init__(self) -> None:
        if not self.behavior:
            raise AppelParseError("rule lacks a behavior")
        terms.check_connective(self.connective)

    def is_catch_all(self) -> bool:
        """True if this rule fires against every policy."""
        return not self.expressions

    def size(self) -> int:
        """Total number of expressions in the rule body."""
        return sum(expr.size() for expr in self.expressions)


@dataclass(frozen=True)
class Ruleset:
    """An ordered APPEL ruleset — a complete user preference."""

    rules: tuple[Rule, ...] = ()
    description: str | None = None

    def __post_init__(self) -> None:
        if not self.rules:
            raise AppelParseError("ruleset contains no rules")

    def rule_count(self) -> int:
        return len(self.rules)

    def behaviors(self) -> tuple[str, ...]:
        return tuple(rule.behavior for rule in self.rules)

    def has_catch_all(self) -> bool:
        """True if some rule fires unconditionally (usually the last)."""
        return any(rule.is_catch_all() for rule in self.rules)


def expression(name: str, *subexpressions: Expression,
               connective: str = terms.CONNECTIVE_DEFAULT,
               **attributes: str) -> Expression:
    """Convenience builder for expressions.

    >>> expression("PURPOSE",
    ...            expression("admin"),
    ...            expression("contact", required="always"),
    ...            connective="or").connective
    'or'

    Attribute names with underscores map to dashed XML names
    (``resolution_type`` -> ``resolution-type``).
    """
    attrs = tuple(
        sorted((key.replace("_", "-"), value)
               for key, value in attributes.items())
    )
    return Expression(
        name=name,
        attributes=attrs,
        connective=connective,
        subexpressions=tuple(subexpressions),
    )


def rule(behavior: str, *expressions_: Expression,
         connective: str = terms.CONNECTIVE_DEFAULT,
         description: str | None = None,
         prompt: bool = False) -> Rule:
    """Convenience builder for rules."""
    return Rule(
        behavior=behavior,
        expressions=tuple(expressions_),
        connective=connective,
        description=description,
        prompt=prompt,
    )


def ruleset(*rules_: Rule, description: str | None = None) -> Ruleset:
    """Convenience builder for rulesets."""
    return Ruleset(rules=tuple(rules_), description=description)
