"""The native APPEL engine — the client-centric baseline of the paper.

This engine mirrors the structure of the public-domain JRC APPEL engine the
paper benchmarks against (Section 6.1): it is *document oriented*.  For
every match it

1. renders the policy to an XML document (a client receives documents, not
   parsed models),
2. parses it,
3. **augments every DATA element with the categories predefined in the P3P
   base data schema** — the step the paper's profiling found to dominate
   the native engine's cost (Section 6.3.2), and
4. evaluates the ruleset's rules in order against the augmented document,
   returning the behavior of the first rule that fires.

The server-centric SQL implementation performs step 3 once at shred time,
which is precisely the asymmetry behind the paper's headline speedup.

:class:`PreparedPolicy` captures steps 1–3 so ablation benchmarks (E7) can
measure how much of the per-match cost they account for.
"""

from __future__ import annotations

import time
import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro import xmlutil
from repro.appel.model import Expression, Rule, Ruleset
from repro.errors import AppelEvaluationError
from repro.p3p.model import Policy
from repro.p3p.serializer import serialize_policy
from repro.vocab import basedata
from repro.vocab import schema as p3p_schema


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of matching a ruleset against a policy.

    ``behavior`` is None when no rule fired (the APPEL draft requires
    rulesets to end with a catch-all, so None indicates a non-conforming
    ruleset rather than a decision).
    """

    behavior: str | None
    rule_index: int | None
    prepare_seconds: float = 0.0
    match_seconds: float = 0.0

    @property
    def fired(self) -> bool:
        return self.rule_index is not None


@dataclass(frozen=True)
class PreparedPolicy:
    """A policy document that has already been parsed and augmented."""

    root: ET.Element
    categories_added: int


class SchemaDocumentResolver:
    """Category resolution the way a document-oriented client does it.

    The JRC engine resolved categories by processing the published base
    data schema *document* rather than a pre-built index: it parses the
    DATASCHEMA XML and, for each DATA reference, scans the DATA-STRUCT
    elements whose names fall in the referenced subtree, collecting their
    category assignments.  Instantiating one resolver corresponds to one
    schema-processing pass — the per-match cost the paper's profiling
    found dominant (Section 6.3.2).
    """

    def __init__(self, schema_xml: str | None = None):
        if schema_xml is None:
            schema_xml = basedata.base_schema_document()
        self._root = xmlutil.parse_string(schema_xml)

    def categories_for(self, ref: str) -> frozenset[str]:
        """Union of categories over the subtree the reference names."""
        name = ref[1:] if ref.startswith("#") else ref
        prefix = name + "."
        collected: set[str] = set()
        for struct in self._root:
            struct_name = struct.get("name", "")
            if struct_name != name and not struct_name.startswith(prefix):
                continue
            categories_el = xmlutil.find_child(struct, "CATEGORIES")
            if categories_el is not None:
                collected.update(
                    xmlutil.local_name(child.tag)
                    for child in categories_el
                )
        return frozenset(collected)

    def knows(self, ref: str) -> bool:
        name = ref[1:] if ref.startswith("#") else ref
        return any(struct.get("name") == name for struct in self._root)


def augment_document(root: ET.Element,
                     resolver: SchemaDocumentResolver | None = None,
                     registry=None) -> int:
    """Add data-schema categories to every DATA element under *root*.

    Returns the number of category elements added.  Unresolvable refs are
    left untouched; variable-category refs only have their inline
    categories.

    Without a *resolver*, base-schema categories come from the in-memory
    index (the cheap path the shredder effectively uses); with one, they
    come from scanning the schema document, the client-side cost model.
    Both produce identical categories.  Custom-schema refs
    (``uri#name``) resolve through *registry* when provided (a
    :class:`~repro.vocab.dataschema.DataSchemaRegistry`).
    """
    added = 0
    for data_el in _iter_named(root, "DATA"):
        ref = xmlutil.local_attrib(data_el).get("ref")
        if ref is None:
            continue
        is_custom = "#" in ref and not ref.startswith("#")
        if is_custom:
            if registry is None or not registry.is_known_ref(ref):
                continue
            fixed = registry.categories_for_ref(ref)
        elif resolver is not None:
            if not resolver.knows(ref):
                continue
            fixed = resolver.categories_for(ref)
        else:
            if not basedata.is_known_ref(ref):
                continue
            fixed = basedata.categories_for_ref(ref)
        if not fixed:
            continue
        categories_el = xmlutil.find_child(data_el, "CATEGORIES")
        if categories_el is None:
            categories_el = ET.SubElement(data_el, "CATEGORIES")
        existing = {
            xmlutil.local_name(child.tag) for child in categories_el
        }
        for category in sorted(fixed - existing):
            ET.SubElement(categories_el, category)
            added += 1
    return added


def _iter_named(root: ET.Element, name: str) -> list[ET.Element]:
    found: list[ET.Element] = []

    def visit(element: ET.Element) -> None:
        if xmlutil.local_name(element.tag) == name:
            found.append(element)
        for child in element:
            visit(child)

    visit(root)
    return found


class AppelEngine:
    """Reference implementation of APPEL 1.0 rule matching.

    ``augment=False`` skips the category augmentation step (used by the E7
    ablation benchmark to reproduce the paper's profiling claim).
    """

    def __init__(self, augment: bool = True, registry=None):
        self.augment = augment
        self.registry = registry  # DataSchemaRegistry for custom schemas

    # -- preparation -------------------------------------------------------

    def prepare(self, policy: Policy) -> PreparedPolicy:
        """Render, parse, and (optionally) augment *policy*.

        Augmentation deliberately re-processes the base data schema
        document (a fresh :class:`SchemaDocumentResolver`) — that is what
        the client-side engine the paper profiled did on every check, and
        what the server-centric shredder does exactly once per policy.
        """
        document = serialize_policy(policy, indent=False)
        root = xmlutil.parse_string(document)
        added = 0
        if self.augment:
            resolver = SchemaDocumentResolver()
            added = augment_document(root, resolver,
                                     registry=self.registry)
        return PreparedPolicy(root=root, categories_added=added)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, policy: Policy, ruleset: Ruleset) -> EvaluationResult:
        """Match *ruleset* against *policy*, document-style (per-match prep)."""
        start = time.perf_counter()
        prepared = self.prepare(policy)
        prep_done = time.perf_counter()
        result = self.evaluate_prepared(prepared, ruleset)
        end = time.perf_counter()
        return EvaluationResult(
            behavior=result.behavior,
            rule_index=result.rule_index,
            prepare_seconds=prep_done - start,
            match_seconds=end - prep_done,
        )

    def evaluate_prepared(self, prepared: PreparedPolicy,
                          ruleset: Ruleset) -> EvaluationResult:
        """Match *ruleset* against an already prepared policy document."""
        start = time.perf_counter()
        for index, rule in enumerate(ruleset.rules):
            if self._rule_fires(rule, prepared.root):
                return EvaluationResult(
                    behavior=rule.behavior,
                    rule_index=index,
                    match_seconds=time.perf_counter() - start,
                )
        return EvaluationResult(
            behavior=None,
            rule_index=None,
            match_seconds=time.perf_counter() - start,
        )

    # -- rule matching ------------------------------------------------------

    def _rule_fires(self, rule: Rule, root: ET.Element) -> bool:
        if rule.is_catch_all():
            return True
        # Top-level expressions match against the evidence document's root.
        results = [
            self._match_against_root(expr, root)
            for expr in rule.expressions
        ]
        return _combine(rule.connective, results,
                        exact_ok=self._root_exact(rule, root))

    def _match_against_root(self, expr: Expression,
                            root: ET.Element) -> bool:
        if xmlutil.local_name(root.tag) != expr.name:
            return False
        return self._match(expr, root)

    def _root_exact(self, rule: Rule, root: ET.Element) -> bool:
        listed = frozenset(expr.name for expr in rule.expressions)
        return xmlutil.local_name(root.tag) in listed

    def _match(self, expr: Expression, element: ET.Element) -> bool:
        """Does policy element *element* satisfy pattern *expr*?"""
        if not self._attributes_match(expr, element):
            return False
        if not expr.subexpressions:
            return True

        results = [
            self._some_child_matches(sub, element)
            for sub in expr.subexpressions
        ]
        listed = expr.subexpression_names()
        exact_ok = all(
            xmlutil.local_name(child.tag) in listed for child in element
        )
        return _combine(expr.connective, results, exact_ok)

    def _some_child_matches(self, sub: Expression,
                            element: ET.Element) -> bool:
        for child in element:
            if xmlutil.local_name(child.tag) != sub.name:
                continue
            if self._match(sub, child):
                return True
        return False

    def _attributes_match(self, expr: Expression,
                          element: ET.Element) -> bool:
        attrib = xmlutil.local_attrib(element)
        spec = p3p_schema.CATALOG.get(xmlutil.local_name(element.tag))
        for name, wanted in expr.attributes:
            actual = attrib.get(name)
            if actual is None and spec is not None:
                attr_spec = spec.attribute(name)
                if attr_spec is not None:
                    actual = attr_spec.default
            if actual != wanted:
                return False
        return True


def _combine(connective: str, results: list[bool], exact_ok: bool) -> bool:
    """Combine subexpression outcomes under an APPEL connective."""
    if connective == "and":
        return all(results)
    if connective == "or":
        return any(results)
    if connective == "non-and":
        return not all(results)
    if connective == "non-or":
        return not any(results)
    if connective == "and-exact":
        return all(results) and exact_ok
    if connective == "or-exact":
        return any(results) and exact_ok
    raise AppelEvaluationError(f"unknown connective: {connective!r}")
