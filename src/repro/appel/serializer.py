"""Serialize APPEL rulesets back to XML.

The output uses explicit ``appel:`` prefixes for RULESET/RULE and the
``connective`` attribute, and unprefixed (P3P) names for body patterns —
the same convention as Figure 2 of the paper.  Default connectives are
omitted, so serialize → parse is the identity on the model.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro import xmlutil
from repro.appel.model import Expression, Rule, Ruleset
from repro.vocab import terms

_APPEL = "appel"


def ruleset_to_element(ruleset: Ruleset) -> ET.Element:
    """Build an ElementTree element for *ruleset*."""
    root = ET.Element(f"{_APPEL}:RULESET")
    root.set(f"xmlns:{_APPEL}", terms.APPEL_NS)
    root.set("xmlns", terms.P3P_NS)
    if ruleset.description is not None:
        root.set("description", ruleset.description)
    for rule in ruleset.rules:
        root.append(_rule_to_element(rule))
    return root


def serialize_ruleset(ruleset: Ruleset, indent: bool = True) -> str:
    """Serialize *ruleset* to an XML string."""
    return xmlutil.to_string(ruleset_to_element(ruleset), indent)


def _rule_to_element(rule: Rule) -> ET.Element:
    element = ET.Element(f"{_APPEL}:RULE", {"behavior": rule.behavior})
    if rule.connective != terms.CONNECTIVE_DEFAULT:
        element.set(f"{_APPEL}:connective", rule.connective)
    if rule.description is not None:
        element.set("description", rule.description)
    if rule.prompt:
        element.set("prompt", "yes")
    for expression in rule.expressions:
        element.append(_expression_to_element(expression))
    return element


def _expression_to_element(expression: Expression) -> ET.Element:
    element = ET.Element(expression.name)
    if expression.connective != terms.CONNECTIVE_DEFAULT:
        element.set(f"{_APPEL}:connective", expression.connective)
    for name, value in expression.attributes:
        element.set(name, value)
    for sub in expression.subexpressions:
        element.append(_expression_to_element(sub))
    return element
