"""APPEL preference library: model, XML parse/serialize, static analysis,
and the native matching engine (the paper's client-centric baseline)."""

from repro.appel.analysis import (
    RulesetProblem,
    RulesetStats,
    ruleset_stats,
    validate_ruleset,
)
from repro.appel.engine import (
    AppelEngine,
    EvaluationResult,
    PreparedPolicy,
    SchemaDocumentResolver,
    augment_document,
)
from repro.appel.explain import (
    ExplainingEngine,
    ExpressionTrace,
    MatchExplanation,
    RuleTrace,
)
from repro.appel.model import (
    Expression,
    Rule,
    Ruleset,
    expression,
    rule,
    ruleset,
)
from repro.appel.parser import parse_rule, parse_ruleset
from repro.appel.templates import (
    TEMPLATES,
    RuleTemplate,
    compose_preference,
    template_keys,
)
from repro.appel.serializer import ruleset_to_element, serialize_ruleset

__all__ = [
    "Expression",
    "Rule",
    "Ruleset",
    "expression",
    "rule",
    "ruleset",
    "parse_ruleset",
    "parse_rule",
    "serialize_ruleset",
    "ruleset_to_element",
    "AppelEngine",
    "EvaluationResult",
    "PreparedPolicy",
    "SchemaDocumentResolver",
    "augment_document",
    "ExplainingEngine",
    "MatchExplanation",
    "RuleTrace",
    "ExpressionTrace",
    "ruleset_stats",
    "validate_ruleset",
    "RulesetStats",
    "RulesetProblem",
    "TEMPLATES",
    "RuleTemplate",
    "compose_preference",
    "template_keys",
]
