"""Explainable APPEL matching: *why* did a rule fire (or not)?

The conflict analytics of the server-centric architecture (Section 4.2)
tell a site owner *which* preference rules block their policy; this module
answers the next question — *which policy elements* triggered the match.
It evaluates a ruleset exactly like :class:`~repro.appel.engine.AppelEngine`
but records a trace tree of every expression test.

The trace semantics are identical to the engine's (shared test suite +
agreement assertions), just slower; use the plain engine for matching and
this one for debugging and reporting.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro import xmlutil
from repro.appel.engine import AppelEngine, PreparedPolicy
from repro.appel.model import Expression, Rule, Ruleset
from repro.p3p.model import Policy


@dataclass
class ExpressionTrace:
    """Outcome of testing one expression at one level of the policy."""

    expression: str          # e.g. 'PURPOSE[or]' or 'contact'
    matched: bool
    matched_against: str | None = None  # element path that satisfied it
    attribute_failures: tuple[str, ...] = ()
    children: list["ExpressionTrace"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        marker = "+" if self.matched else "-"
        line = "  " * indent + f"{marker} {self.expression}"
        if self.matched_against:
            line += f"  (matched {self.matched_against})"
        if self.attribute_failures:
            line += "  [attr mismatch: " + ", ".join(
                self.attribute_failures) + "]"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class RuleTrace:
    """Outcome of one rule against the policy."""

    rule_index: int
    behavior: str
    fired: bool
    description: str | None
    expressions: list[ExpressionTrace] = field(default_factory=list)

    def render(self) -> str:
        state = "FIRED" if self.fired else "did not fire"
        header = f"rule {self.rule_index} ({self.behavior!r}) {state}"
        if self.description:
            header += f" — {self.description}"
        lines = [header]
        for trace in self.expressions:
            lines.append(trace.render(1))
        return "\n".join(lines)


@dataclass
class MatchExplanation:
    """Full account of a ruleset evaluation."""

    behavior: str | None
    rule_index: int | None
    rules: list[RuleTrace] = field(default_factory=list)

    def render(self) -> str:
        outcome = (f"outcome: {self.behavior!r} (rule {self.rule_index})"
                   if self.rule_index is not None
                   else "outcome: no rule fired")
        return "\n\n".join([outcome] + [r.render() for r in self.rules])


def _progress(trace: ExpressionTrace) -> int:
    """How far a failing trace got (for picking the best near-miss)."""
    score = 2 if trace.matched else 0
    score += 1 if trace.attribute_failures else 0
    return score + sum(_progress(child) for child in trace.children)


class ExplainingEngine(AppelEngine):
    """An AppelEngine that records a trace of every expression test."""

    def explain(self, policy: Policy,
                ruleset: Ruleset) -> MatchExplanation:
        """Evaluate *ruleset* and return the full trace.

        Rules after the first firing one are still traced (marked
        not-fired by order), so site owners can see near-misses.
        """
        prepared = self.prepare(policy)
        return self.explain_prepared(prepared, ruleset)

    def explain_prepared(self, prepared: PreparedPolicy,
                         ruleset: Ruleset) -> MatchExplanation:
        explanation = MatchExplanation(behavior=None, rule_index=None)
        for index, rule in enumerate(ruleset.rules):
            trace = self._trace_rule(index, rule, prepared.root)
            explanation.rules.append(trace)
            if trace.fired and explanation.rule_index is None:
                explanation.behavior = rule.behavior
                explanation.rule_index = index
        return explanation

    # -- tracing ------------------------------------------------------------

    def _trace_rule(self, index: int, rule: Rule,
                    root: ET.Element) -> RuleTrace:
        trace = RuleTrace(rule_index=index, behavior=rule.behavior,
                          fired=False, description=rule.description)
        if rule.is_catch_all():
            trace.fired = True
            trace.expressions.append(
                ExpressionTrace(expression="<empty body>", matched=True,
                                matched_against="any policy")
            )
            return trace

        results = []
        for expr in rule.expressions:
            child = self._trace_against_root(expr, root)
            trace.expressions.append(child)
            results.append(child.matched)
        from repro.appel.engine import _combine

        trace.fired = _combine(rule.connective, results,
                               self._root_exact(rule, root))
        return trace

    def _trace_against_root(self, expr: Expression,
                            root: ET.Element) -> ExpressionTrace:
        if xmlutil.local_name(root.tag) != expr.name:
            return ExpressionTrace(
                expression=self._label(expr), matched=False,
            )
        return self._trace(expr, root, path=expr.name)

    def _trace(self, expr: Expression, element: ET.Element,
               path: str) -> ExpressionTrace:
        trace = ExpressionTrace(expression=self._label(expr), matched=False)

        failures = self._attribute_failures(expr, element)
        if failures:
            trace.attribute_failures = tuple(failures)
            return trace

        if not expr.subexpressions:
            trace.matched = True
            trace.matched_against = path
            return trace

        results = []
        for sub in expr.subexpressions:
            child_trace = self._trace_children(sub, element, path)
            trace.children.append(child_trace)
            results.append(child_trace.matched)

        listed = expr.subexpression_names()
        exact_ok = all(
            xmlutil.local_name(child.tag) in listed for child in element
        )
        from repro.appel.engine import _combine

        trace.matched = _combine(expr.connective, results, exact_ok)
        if trace.matched:
            trace.matched_against = path
        return trace

    def _trace_children(self, sub: Expression, element: ET.Element,
                        path: str) -> ExpressionTrace:
        """Trace 'some child of element matches sub'.

        On failure, the most *informative* failing candidate is kept: the
        one that got furthest (most matched descendants, then most
        attribute-level findings) — that is the near-miss a site owner
        wants to see.
        """
        best: ExpressionTrace | None = None
        position = 0
        for child in element:
            if xmlutil.local_name(child.tag) != sub.name:
                continue
            position += 1
            candidate = self._trace(sub, child,
                                    f"{path}/{sub.name}[{position}]")
            if candidate.matched:
                return candidate
            if best is None or _progress(candidate) > _progress(best):
                best = candidate
        if best is not None:
            return best
        return ExpressionTrace(expression=self._label(sub), matched=False)

    def _attribute_failures(self, expr: Expression,
                            element: ET.Element) -> list[str]:
        from repro.vocab import schema as p3p_schema

        attrib = xmlutil.local_attrib(element)
        spec = p3p_schema.CATALOG.get(xmlutil.local_name(element.tag))
        failures = []
        for name, wanted in expr.attributes:
            actual = attrib.get(name)
            if actual is None and spec is not None:
                attr_spec = spec.attribute(name)
                if attr_spec is not None:
                    actual = attr_spec.default
            if actual != wanted:
                failures.append(f"{name}={wanted!r} (policy has {actual!r})")
        return failures

    @staticmethod
    def _label(expr: Expression) -> str:
        label = expr.name
        if expr.attributes:
            label += "[" + " ".join(
                f'{n}="{v}"' for n, v in expr.attributes) + "]"
        if expr.subexpressions:
            label += f" <{expr.connective}>"
        return label
