"""Reconstruction view: rebuild policy XML from the shredded tables.

Section 5.6 assumes "a reconstruction view [XPERANTO-style] that renders a
P3P policy according to its original XML schema starting from a tabular
representation of the policy".  This module is that view: given a policy id
it reassembles a :class:`~repro.p3p.model.Policy` (and its XML document)
from the Figure 14 tables.

The reconstruction returns the *augmented* policy — categories include the
base-data-schema expansion done at shred time — which is also the canonical
form the native engine produces before matching, making round-trip
equivalence testable: ``reconstruct(shred(p)) == p.augmented()``.
"""

from __future__ import annotations

from repro.errors import UnknownPolicyError
from repro.p3p.model import (
    DataItem,
    Disputes,
    Entity,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.serializer import serialize_policy
from repro.storage.database import Database


def reconstruct_policy(db: Database, policy_id: int) -> Policy:
    """Reassemble the policy stored under *policy_id*."""
    policy_row = db.query_one(
        "SELECT * FROM policy WHERE policy_id = ?", (policy_id,)
    )
    if policy_row is None:
        raise UnknownPolicyError(f"no policy with id {policy_id}")

    entity_rows = db.query(
        "SELECT ref, value FROM entity WHERE policy_id = ? ORDER BY rowid",
        (policy_id,),
    )
    entity = Entity(
        data=tuple((row["ref"], row["value"] or "") for row in entity_rows)
    )

    disputes: list[Disputes] = []
    for row in db.query(
        "SELECT * FROM disputes WHERE policy_id = ? ORDER BY disputes_id",
        (policy_id,),
    ):
        remedies = tuple(
            r["remedy"]
            for r in db.query(
                "SELECT remedy FROM remedy WHERE policy_id = ? "
                "AND disputes_id = ? ORDER BY rowid",
                (policy_id, row["disputes_id"]),
            )
        )
        disputes.append(
            Disputes(
                resolution_type=row["resolution_type"],
                service=row["service"],
                verification=row["verification"],
                remedies=remedies,
                long_description=row["long_description"],
            )
        )

    statements: list[Statement] = []
    for row in db.query(
        "SELECT * FROM statement WHERE policy_id = ? ORDER BY statement_id",
        (policy_id,),
    ):
        statement_id = row["statement_id"]
        purposes = tuple(
            PurposeValue(p["purpose"], p["required"])
            for p in db.query(
                "SELECT purpose, required FROM purpose WHERE policy_id = ? "
                "AND statement_id = ? ORDER BY rowid",
                (policy_id, statement_id),
            )
        )
        recipients = tuple(
            RecipientValue(r["recipient"], r["required"])
            for r in db.query(
                "SELECT recipient, required FROM recipient "
                "WHERE policy_id = ? AND statement_id = ? ORDER BY rowid",
                (policy_id, statement_id),
            )
        )
        data: list[DataItem] = []
        for d in db.query(
            "SELECT * FROM data WHERE policy_id = ? AND statement_id = ? "
            "ORDER BY data_id",
            (policy_id, statement_id),
        ):
            categories = tuple(
                c["category"]
                for c in db.query(
                    "SELECT category FROM category WHERE policy_id = ? "
                    "AND statement_id = ? AND data_id = ? ORDER BY category",
                    (policy_id, statement_id, d["data_id"]),
                )
            )
            data.append(
                DataItem(ref=d["ref"], optional=d["optional"],
                         categories=categories)
            )
        statements.append(
            Statement(
                purposes=purposes,
                recipients=recipients,
                retention=row["retention"],
                data=tuple(data),
                consequence=row["consequence"],
                non_identifiable=bool(row["non_identifiable"]),
            )
        )

    return Policy(
        name=policy_row["name"],
        discuri=policy_row["discuri"],
        opturi=policy_row["opturi"],
        access=policy_row["access"],
        test=bool(policy_row["test"]),
        entity=entity,
        disputes=tuple(disputes),
        statements=tuple(statements),
    )


def reconstruct_policy_xml(db: Database, policy_id: int,
                           indent: bool = True) -> str:
    """The XML view of the policy stored under *policy_id*."""
    return serialize_policy(reconstruct_policy(db, policy_id), indent=indent)
