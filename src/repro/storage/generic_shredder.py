"""Figure 10: the data population algorithm for the generic schema.

``add(e, f)`` creates a unique id, inserts a record of (id, foreign key,
attributes) into the table named after element *e*, and recurses into the
subelements with the id prepended to the foreign key.

The shredder walks the policy's *augmented* XML document — exactly what the
server-centric architecture stores, with the base-data-schema categories
expanded once at shred time (Section 6.3.2).  Attributes are stored with
defaults resolved (e.g. ``required='always'``), matching the translation
example of Figure 13 where ``Contact.required = 'always'`` is a direct
column comparison.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import defaultdict

from repro import xmlutil
from repro.appel.engine import augment_document
from repro.errors import UnknownPolicyError
from repro.p3p.model import Policy
from repro.p3p.serializer import policy_to_element
from repro.storage.database import Database, quote_ident
from repro.storage.generic_schema import (
    GENERIC_TABLES,
    create_generic_schema,
)
from repro.vocab import schema as p3p_schema


class GenericPolicyStore:
    """Policies shredded into the Figure 8 schema, queried by Figure 11 SQL."""

    def __init__(self, db: Database | None = None):
        self.db = db if db is not None else Database()
        self._counters: dict[str, int] = defaultdict(int)
        create_generic_schema(self.db)
        self._seed_counters()

    def _seed_counters(self) -> None:
        """Resume id sequences from a persisted database."""
        from repro.vocab import schema as catalog

        for tag, table in GENERIC_TABLES.items():
            current = self.db.scalar(
                f"SELECT MAX({catalog.id_column(tag)}) "
                f"FROM {quote_ident(table.name)}"
            )
            if current is not None:
                self._counters[tag] = int(current)

    # -- installation ---------------------------------------------------------

    def install_policy(self, policy: Policy) -> int:
        """Shred *policy* (augmented) into the tables; returns its policy id."""
        root = policy_to_element(policy)
        augment_document(root)
        with self.db.transaction():
            policy_id = self._add(root, ())
        return policy_id

    def _next_id(self, element: str) -> int:
        self._counters[element] += 1
        return self._counters[element]

    def _add(self, element: ET.Element, foreign_key: tuple[int, ...]) -> int:
        """The add() procedure of Figure 10."""
        tag = xmlutil.local_name(element.tag)
        spec = p3p_schema.CATALOG.get(tag)
        if spec is None:
            # Elements outside the matchable catalog (e.g. the DATA-GROUP
            # inside ENTITY) are not shredded by the generic schema.
            return -1

        table = GENERIC_TABLES[tag]
        unique_id = self._next_id(tag)

        values: list[object] = [unique_id]
        values.extend(foreign_key)
        attrib = xmlutil.local_attrib(element)
        for attr in spec.attributes:
            values.append(attr.resolve(attrib.get(attr.name)))
        if spec.textual:
            values.append(xmlutil.element_text(element))

        placeholders = ", ".join("?" for _ in values)
        column_names = ", ".join(
            quote_ident(col.name) for col in table.columns
        )
        self.db.execute(
            f"INSERT INTO {quote_ident(table.name)} ({column_names}) "
            f"VALUES ({placeholders})",
            values,
        )

        child_key = (unique_id,) + foreign_key
        for child in element:
            child_tag = xmlutil.local_name(child.tag)
            if child_tag in spec.children:
                self._add(child, child_key)
        return unique_id

    # -- bookkeeping -------------------------------------------------------------

    def policy_ids(self) -> list[int]:
        rows = self.db.query("SELECT policy_id FROM policy ORDER BY policy_id")
        return [row["policy_id"] for row in rows]

    def has_policy(self, policy_id: int) -> bool:
        return self.db.scalar(
            "SELECT COUNT(*) FROM policy WHERE policy_id = ?", (policy_id,)
        ) == 1

    def require_policy(self, policy_id: int) -> None:
        if not self.has_policy(policy_id):
            raise UnknownPolicyError(f"no policy with id {policy_id}")

    def delete_policy(self, policy_id: int) -> None:
        """Remove every row belonging to *policy_id* from every table."""
        self.require_policy(policy_id)
        with self.db.transaction():
            for table in GENERIC_TABLES.values():
                self.db.execute(
                    f"DELETE FROM {quote_ident(table.name)} "
                    f"WHERE policy_id = ?",
                    (policy_id,),
                )

    def row_counts(self) -> dict[str, int]:
        """Row count per table (diagnostics and tests)."""
        counts: dict[str, int] = {}
        for table in GENERIC_TABLES.values():
            counts[table.name] = self.db.table_count(table.name)
        return counts
