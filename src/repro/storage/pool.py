"""Thread-safe SQLite access: per-thread readers, one serialized writer.

The paper's serving argument (Section 4.2) is that preference checks are
*queries* — so a policy server should answer many of them at once.  SQLite
supports exactly one writer per database but, in write-ahead-log (WAL)
mode, any number of concurrent readers that never block the writer and
are never blocked by it.  :class:`ConnectionPool` packages that shape:

* the **writer** is a single :class:`~repro.storage.database.Database`
  guarded by a re-entrant lock (``pool.write()``); installs and the
  batched check log serialize through it;
* **readers** are opened lazily, one per thread (``pool.read()``), so a
  thread's statement cache stays hot and no locking is needed on the
  read path;
* **in-memory** databases are invisible to other connections, so the
  pool degrades to serializing every access through the writer — the
  same API, minus the parallelism;
* every connection keeps its own :class:`~repro.storage.database.
  QueryStats`; :meth:`ConnectionPool.stats` aggregates them.

Connection hooks (:meth:`add_connect_hook`) run against the writer and
every reader — present and future — which is how per-connection state
like the ``like_pattern`` SQL function reaches reader connections.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import StorageError
from repro.storage.database import Database, QueryStats


class ConnectionPool:
    """A WAL-mode connection pool over one SQLite database.

    *database* is either a path (the pool opens and owns the writer) or
    an existing :class:`Database` to adopt as the writer — adopted
    writers keep their journal mode unless ``wal=True`` is forced, so
    legacy single-connection callers see unchanged behavior.
    """

    def __init__(self, database: Database | str = ":memory:", *,
                 wal: bool | None = None,
                 timeout: float = 30.0):
        if isinstance(database, Database):
            self.writer = database
            self.path = database.path
            if wal is None:
                wal = False
        else:
            self.path = database
            self.writer = Database(database, timeout=timeout,
                                   check_same_thread=False)
            if wal is None:
                wal = True
        self.timeout = timeout
        self._memory = self.path == ":memory:" or "mode=memory" in self.path
        if wal and not self._memory:
            self.writer.ensure_wal()
        self._write_lock = threading.RLock()
        self._registry_lock = threading.Lock()
        self._local = threading.local()
        #: reader connection -> the thread that owns it.  Handler threads
        #: come and go (one per HTTP connection); readers whose owner has
        #: exited are reaped, or the registry grows without bound.
        self._readers: dict[Database, threading.Thread] = {}
        #: Stats carried over from reaped readers, so reader churn never
        #: makes the pool-wide totals go backwards.
        self._retired_stats = QueryStats()
        self._connect_hooks: list[Callable[[Database], None]] = []
        self._closed = False

    # -- connections ---------------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[Database]:
        """A connection for queries: this thread's reader.

        On-disk databases hand out a dedicated per-thread connection
        with no locking (WAL readers never block).  In-memory databases
        fall back to the writer under the write lock.
        """
        if self._closed:
            raise StorageError("connection pool is closed")
        if self._memory:
            with self._write_lock:
                yield self.writer
        else:
            yield self._thread_reader()

    @contextmanager
    def write(self) -> Iterator[Database]:
        """The writer connection, exclusively held while the block runs.

        The lock is re-entrant, so code already inside ``write()`` may
        call helpers that acquire it again (e.g. a log flush during an
        install).  :attr:`write_depth` exposes the current thread's
        nesting so such helpers can tell whether they joined an
        enclosing transaction (and must not roll it back).
        """
        with self._write_lock:
            if self._closed:
                raise StorageError("connection pool is closed")
            self._local.write_depth = self.write_depth + 1
            try:
                yield self.writer
            finally:
                self._local.write_depth -= 1

    @property
    def write_depth(self) -> int:
        """How many ``write()`` blocks the *current thread* is inside."""
        return getattr(self._local, "write_depth", 0)

    def _thread_reader(self) -> Database:
        db = getattr(self._local, "reader", None)
        if db is None:
            db = Database(self.path, timeout=self.timeout,
                          check_same_thread=False)
            with self._registry_lock:
                if self._closed:
                    db.close()
                    raise StorageError("connection pool is closed")
                hooks = list(self._connect_hooks)
                self._readers[db] = threading.current_thread()
                dead = self._reap_locked()
            for hook in hooks:
                hook(db)
            for stale in dead:
                stale.close()
            self._local.reader = db
        return db

    def _reap_locked(self) -> list[Database]:
        """Unregister readers whose owning thread has exited.

        Caller holds ``_registry_lock`` and closes the returned
        connections outside it.  A dead thread cannot be using its
        reader (the connection is thread-local), so closing from
        another thread is safe.
        """
        dead = [db for db, owner in self._readers.items()
                if not owner.is_alive()]
        for db in dead:
            del self._readers[db]
            self._retired_stats.statements += db.stats.statements
            self._retired_stats.seconds += db.stats.seconds
            self._retired_stats.cache_hits += db.stats.cache_hits
            self._retired_stats.cache_misses += db.stats.cache_misses
            self._retired_stats.plans_audited += db.stats.plans_audited
            self._retired_stats.audit_findings += db.stats.audit_findings
        return dead

    def reap_readers(self) -> int:
        """Close readers orphaned by exited threads; returns the count."""
        with self._registry_lock:
            dead = self._reap_locked()
        for db in dead:
            db.close()
        return len(dead)

    def add_connect_hook(self, hook: Callable[[Database], None]) -> None:
        """Run *hook* on the writer, every open reader, and every reader
        opened later — for per-connection setup such as registering SQL
        functions or pragmas."""
        with self._registry_lock:
            self._connect_hooks.append(hook)
            targets = [self.writer, *self._readers]
        for db in targets:
            hook(db)

    # -- introspection -------------------------------------------------------

    @property
    def reader_count(self) -> int:
        with self._registry_lock:
            dead = self._reap_locked()
            count = len(self._readers)
        for db in dead:
            db.close()
        return count

    @property
    def wal(self) -> bool:
        return self.writer.wal

    def stats(self) -> QueryStats:
        """Cumulative statistics summed over the writer and all readers.

        Readers orphaned by exited threads are reaped first; their
        counters — statement counts, seconds, and statement-cache
        hits/misses — are folded into a retained total, so churn never
        makes the aggregate go backwards.
        """
        with self._registry_lock:
            dead = self._reap_locked()
            connections = [self.writer, *self._readers]
            total = QueryStats()
            total.statements = self._retired_stats.statements
            total.seconds = self._retired_stats.seconds
            total.cache_hits = self._retired_stats.cache_hits
            total.cache_misses = self._retired_stats.cache_misses
            total.plans_audited = self._retired_stats.plans_audited
            total.audit_findings = self._retired_stats.audit_findings
        for db in dead:
            db.close()
        for db in connections:
            total.statements += db.stats.statements
            total.seconds += db.stats.seconds
            total.cache_hits += db.stats.cache_hits
            total.cache_misses += db.stats.cache_misses
            total.plans_audited += db.stats.plans_audited
            total.audit_findings += db.stats.audit_findings
            total.last_seconds = max(total.last_seconds,
                                     db.stats.last_seconds)
        return total

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every reader and the writer (idempotent)."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            readers, self._readers = list(self._readers), {}
        for db in readers:
            db.close()
        self.writer.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
