"""Thread-safe SQLite access: per-thread readers, one serialized writer.

The paper's serving argument (Section 4.2) is that preference checks are
*queries* — so a policy server should answer many of them at once.  SQLite
supports exactly one writer per database but, in write-ahead-log (WAL)
mode, any number of concurrent readers that never block the writer and
are never blocked by it.  :class:`ConnectionPool` packages that shape:

* the **writer** is a single :class:`~repro.storage.database.Database`
  guarded by a re-entrant lock (``pool.write()``); installs and the
  batched check log serialize through it;
* **readers** are opened lazily, one per thread (``pool.read()``), so a
  thread's statement cache stays hot and no locking is needed on the
  read path;
* **in-memory** databases are invisible to other connections, so the
  pool degrades to serializing every access through the writer — the
  same API, minus the parallelism;
* every connection keeps its own :class:`~repro.storage.database.
  QueryStats`; :meth:`ConnectionPool.stats` aggregates them.

Connection hooks (:meth:`add_connect_hook`) run against the writer and
every reader — present and future — which is how per-connection state
like the ``like_pattern`` SQL function reaches reader connections.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import StorageError
from repro.storage.database import Database, QueryStats


class ConnectionPool:
    """A WAL-mode connection pool over one SQLite database.

    *database* is either a path (the pool opens and owns the writer) or
    an existing :class:`Database` to adopt as the writer — adopted
    writers keep their journal mode unless ``wal=True`` is forced, so
    legacy single-connection callers see unchanged behavior.
    """

    def __init__(self, database: Database | str = ":memory:", *,
                 wal: bool | None = None,
                 timeout: float = 30.0):
        if isinstance(database, Database):
            self.writer = database
            self.path = database.path
            if wal is None:
                wal = False
        else:
            self.path = database
            self.writer = Database(database, timeout=timeout,
                                   check_same_thread=False)
            if wal is None:
                wal = True
        self.timeout = timeout
        self._memory = self.path == ":memory:" or "mode=memory" in self.path
        if wal and not self._memory:
            self.writer.ensure_wal()
        self._write_lock = threading.RLock()
        self._registry_lock = threading.Lock()
        self._local = threading.local()
        self._readers: list[Database] = []
        self._connect_hooks: list[Callable[[Database], None]] = []
        self._closed = False

    # -- connections ---------------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[Database]:
        """A connection for queries: this thread's reader.

        On-disk databases hand out a dedicated per-thread connection
        with no locking (WAL readers never block).  In-memory databases
        fall back to the writer under the write lock.
        """
        if self._closed:
            raise StorageError("connection pool is closed")
        if self._memory:
            with self._write_lock:
                yield self.writer
        else:
            yield self._thread_reader()

    @contextmanager
    def write(self) -> Iterator[Database]:
        """The writer connection, exclusively held while the block runs.

        The lock is re-entrant, so code already inside ``write()`` may
        call helpers that acquire it again (e.g. a log flush during an
        install).
        """
        with self._write_lock:
            if self._closed:
                raise StorageError("connection pool is closed")
            yield self.writer

    def _thread_reader(self) -> Database:
        db = getattr(self._local, "reader", None)
        if db is None:
            db = Database(self.path, timeout=self.timeout,
                          check_same_thread=False)
            with self._registry_lock:
                if self._closed:
                    db.close()
                    raise StorageError("connection pool is closed")
                hooks = list(self._connect_hooks)
                self._readers.append(db)
            for hook in hooks:
                hook(db)
            self._local.reader = db
        return db

    def add_connect_hook(self, hook: Callable[[Database], None]) -> None:
        """Run *hook* on the writer, every open reader, and every reader
        opened later — for per-connection setup such as registering SQL
        functions or pragmas."""
        with self._registry_lock:
            self._connect_hooks.append(hook)
            targets = [self.writer, *self._readers]
        for db in targets:
            hook(db)

    # -- introspection -------------------------------------------------------

    @property
    def reader_count(self) -> int:
        with self._registry_lock:
            return len(self._readers)

    @property
    def wal(self) -> bool:
        return self.writer.wal

    def stats(self) -> QueryStats:
        """Cumulative statistics summed over the writer and all readers."""
        with self._registry_lock:
            connections = [self.writer, *self._readers]
        total = QueryStats()
        for db in connections:
            total.statements += db.stats.statements
            total.seconds += db.stats.seconds
            total.last_seconds = max(total.last_seconds,
                                     db.stats.last_seconds)
        return total

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every reader and the writer (idempotent)."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            readers, self._readers = self._readers, []
        for db in readers:
            db.close()
        self.writer.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
