"""Shredding P3P policies into the optimized schema (Sections 5.2 / 5.4).

:class:`PolicyStore` is the server-side policy repository of the proposed
architecture (Figure 5): ``install_policy`` shreds a policy into the
Figure 14 tables, performing the **category expansion once at shred time**
— the paper's explanation for the SQL implementation's 30x matching
advantage (Section 6.3.2): "Our SQL implementation ... does this expansion
while shredding the policy into relational tables, and incurs no
corresponding cost at the time of preference checking."
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass

from repro.errors import UnknownPolicyError
from repro.p3p.model import Policy
from repro.storage.database import Database
from repro.storage.optimized_schema import (
    POLICY_TABLES,
    create_optimized_schema,
)


@dataclass(frozen=True)
class ShredReport:
    """Outcome of installing one policy (E3 measures ``seconds``)."""

    policy_id: int
    statements: int
    data_items: int
    categories: int
    seconds: float


class PolicyStore:
    """Server-side repository of shredded policies (optimized schema).

    Pass a :class:`~repro.vocab.dataschema.DataSchemaRegistry` as
    *registry* to also expand categories for refs into the site's custom
    DATASCHEMA documents at shred time.
    """

    def __init__(self, db: Database | None = None, registry=None):
        self.db = db if db is not None else Database()
        self.registry = registry
        create_optimized_schema(self.db)

    # -- installation -----------------------------------------------------------

    def install_policy(self, policy: Policy, site: str | None = None,
                       version: int = 1, active: bool = True) -> ShredReport:
        """Shred *policy* into the store; returns a ShredReport."""
        start = time.perf_counter()
        data_items = 0
        categories = 0

        with self.db.transaction():
            cursor = self.db.execute(
                "INSERT INTO policy (name, discuri, opturi, access, test, "
                "site, version, active, installed_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    policy.name,
                    policy.discuri,
                    policy.opturi,
                    policy.access,
                    1 if policy.test else 0,
                    site,
                    version,
                    1 if active else 0,
                    datetime.datetime.now(datetime.timezone.utc).isoformat(),
                ),
            )
            policy_id = cursor.lastrowid

            for ref, value in policy.entity.data:
                self.db.execute(
                    "INSERT OR REPLACE INTO entity (policy_id, ref, value) "
                    "VALUES (?, ?, ?)",
                    (policy_id, ref, value),
                )

            for disputes_id, disputes in enumerate(policy.disputes, start=1):
                self.db.execute(
                    "INSERT INTO disputes (disputes_id, policy_id, "
                    "resolution_type, service, verification, "
                    "long_description) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        disputes_id,
                        policy_id,
                        disputes.resolution_type,
                        disputes.service,
                        disputes.verification,
                        disputes.long_description,
                    ),
                )
                for remedy in disputes.remedies:
                    self.db.execute(
                        "INSERT OR IGNORE INTO remedy "
                        "(policy_id, disputes_id, remedy) VALUES (?, ?, ?)",
                        (policy_id, disputes_id, remedy),
                    )

            for statement_id, statement in enumerate(policy.statements,
                                                     start=1):
                self.db.execute(
                    "INSERT INTO statement (statement_id, policy_id, "
                    "consequence, retention, non_identifiable) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        statement_id,
                        policy_id,
                        statement.consequence,
                        statement.retention,
                        1 if statement.non_identifiable else 0,
                    ),
                )
                for value in statement.purposes:
                    self.db.execute(
                        "INSERT OR IGNORE INTO purpose "
                        "(policy_id, statement_id, purpose, required) "
                        "VALUES (?, ?, ?, ?)",
                        (policy_id, statement_id, value.name,
                         value.effective_required),
                    )
                for value in statement.recipients:
                    self.db.execute(
                        "INSERT OR IGNORE INTO recipient "
                        "(policy_id, statement_id, recipient, required) "
                        "VALUES (?, ?, ?, ?)",
                        (policy_id, statement_id, value.name,
                         value.effective_required),
                    )
                for data_id, item in enumerate(statement.data, start=1):
                    data_items += 1
                    self.db.execute(
                        "INSERT INTO data (data_id, statement_id, policy_id, "
                        "ref, optional) VALUES (?, ?, ?, ?, ?)",
                        (data_id, statement_id, policy_id, item.ref,
                         item.optional),
                    )
                    explicit = set(item.categories)
                    # Category expansion at shred time (Section 6.3.2).
                    for category in sorted(
                            item.expanded_categories(self.registry)):
                        categories += 1
                        source = ("explicit" if category in explicit
                                  else "base")
                        self.db.execute(
                            "INSERT OR IGNORE INTO category (policy_id, "
                            "statement_id, data_id, category, source) "
                            "VALUES (?, ?, ?, ?, ?)",
                            (policy_id, statement_id, data_id, category,
                             source),
                        )

        return ShredReport(
            policy_id=policy_id,
            statements=len(policy.statements),
            data_items=data_items,
            categories=categories,
            seconds=time.perf_counter() - start,
        )

    # -- lookup -------------------------------------------------------------------

    def policy_ids(self, active_only: bool = False) -> list[int]:
        sql = "SELECT policy_id FROM policy"
        if active_only:
            sql += " WHERE active = 1"
        sql += " ORDER BY policy_id"
        return [row["policy_id"] for row in self.db.query(sql)]

    def has_policy(self, policy_id: int) -> bool:
        return self.db.scalar(
            "SELECT COUNT(*) FROM policy WHERE policy_id = ?", (policy_id,)
        ) == 1

    def require_policy(self, policy_id: int) -> None:
        if not self.has_policy(policy_id):
            raise UnknownPolicyError(f"no policy with id {policy_id}")

    def policy_id_by_name(self, name: str,
                          active_only: bool = True,
                          db: Database | None = None) -> int | None:
        """The newest policy id registered under *name* (None if absent).

        Pass *db* to run the lookup on another connection to the same
        database (e.g. a pooled per-thread reader).
        """
        sql = "SELECT policy_id FROM policy WHERE name = ?"
        if active_only:
            sql += " AND active = 1"
        sql += " ORDER BY version DESC, policy_id DESC LIMIT 1"
        target = db if db is not None else self.db
        return target.scalar(sql, (name,))

    def delete_policy(self, policy_id: int) -> None:
        """Remove *policy_id* and all its rows."""
        self.require_policy(policy_id)
        with self.db.transaction():
            for table in reversed(POLICY_TABLES):
                self.db.execute(
                    f"DELETE FROM {table} WHERE policy_id = ?", (policy_id,)
                )

    # -- statistics ------------------------------------------------------------------

    def statement_count(self, policy_id: int | None = None) -> int:
        if policy_id is None:
            return int(self.db.scalar("SELECT COUNT(*) FROM statement"))
        return int(self.db.scalar(
            "SELECT COUNT(*) FROM statement WHERE policy_id = ?",
            (policy_id,),
        ))

    def row_counts(self) -> dict[str, int]:
        return {table: self.db.table_count(table) for table in POLICY_TABLES}
