"""The materialized decision cache: corpus matching as a point lookup.

A ``decision_cache`` row is one *decided* (preference, policy-version)
cell: ``(pref_hash, policy_id, policy_version) -> (behavior,
rule_index)``, with ``behavior IS NULL`` recording a *negative* decision
(no rule fired) — row-present-with-NULLs and row-absent are different
facts, so a cache miss is always observable.

**Why this can never serve a stale decision.**  The versioned store
never updates a policy in place: installing a new version of a name
creates a *new* ``policy_id`` and deactivates the old row, so the policy
content behind a given ``policy_id`` is immutable and a decision keyed
by it cannot rot.  Two structural defenses back that argument up:

* the lookup joins ``policy`` on ``policy_id`` *and*
  ``version = policy_version`` — a row written against a different
  version of the same id (impossible today, cheap to guard) simply
  misses;
* :meth:`DecisionCache.invalidate_inactive` deletes the rows of every
  superseded (inactive) version of a name at install time, inside the
  installer's write transaction — incremental garbage collection, not a
  correctness requirement.

All SQL here is static text over storage-layer tables; the serving
layer calls these methods with a pooled connection and never assembles
cache SQL itself.
"""

from __future__ import annotations

import datetime
import threading
from typing import Any, Iterable, Sequence

from repro.storage.database import Database

DECISION_CACHE_DDL = """
CREATE TABLE IF NOT EXISTS decision_cache (
  pref_hash       TEXT NOT NULL,
  policy_id       INTEGER NOT NULL,
  policy_version  INTEGER NOT NULL,
  behavior        TEXT,
  rule_index      INTEGER,
  computed_at     TEXT NOT NULL,
  PRIMARY KEY (pref_hash, policy_id, policy_version)
);
"""

#: Columns added after the table first shipped (forward migration).
_MIGRATED_COLUMNS = {
    "computed_at": "TEXT NOT NULL DEFAULT ''",
}


def utc_now_iso() -> str:
    """The ``computed_at`` timestamp format (UTC ISO-8601)."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


class DecisionCache:
    """Reads, writes and counters over the ``decision_cache`` table.

    The object itself holds no connection — every method takes the
    :class:`Database` the caller is already holding (a pooled reader
    for lookups, the serialized writer for populate/invalidate), so the
    pool's locking discipline is preserved.  Counters are process-local
    and lock-protected; :meth:`snapshot` feeds ``GET /metrics``.
    """

    #: The hot-path point lookup: both accesses must be index probes —
    #: the cache row by its primary key prefix ``(pref_hash,
    #: policy_id)``, the version guard by the policy table's integer
    #: primary key.  ``repro.analysis.plans.audit_decision_lookup``
    #: gates on exactly that.
    LOOKUP_SQL = (
        "SELECT dc.behavior, dc.rule_index\n"
        "FROM decision_cache AS dc\n"
        "JOIN policy ON policy.policy_id = dc.policy_id\n"
        "           AND policy.version = dc.policy_version\n"
        "WHERE dc.pref_hash = ? AND dc.policy_id = ?"
    )

    #: The warm corpus match: every active policy LEFT JOINed to its
    #: cached decision in one statement.  ``cached = 0`` rows are the
    #: misses the caller must compute (and may write back).
    MATCH_SQL = (
        "SELECT policy.policy_id AS policy_id,\n"
        "       policy.name AS name,\n"
        "       policy.version AS version,\n"
        "       dc.behavior AS behavior,\n"
        "       dc.rule_index AS rule_index,\n"
        "       dc.pref_hash IS NOT NULL AS cached\n"
        "FROM policy\n"
        "LEFT JOIN decision_cache AS dc\n"
        "       ON dc.pref_hash = ?\n"
        "      AND dc.policy_id = policy.policy_id\n"
        "      AND dc.policy_version = policy.version\n"
        "WHERE policy.active = 1\n"
        "ORDER BY policy.policy_id"
    )

    _INSERT = (
        "INSERT OR REPLACE INTO decision_cache "
        "(pref_hash, policy_id, policy_version, behavior, rule_index, "
        "computed_at) VALUES (?, ?, ?, ?, ?, ?)"
    )

    _INVALIDATE = (
        "DELETE FROM decision_cache WHERE policy_id IN ("
        "SELECT policy_id FROM policy "
        "WHERE name = ? AND site IS ? AND active = 0)"
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.populated = 0
        self.invalidated = 0
        self.write_errors = 0
        self.repair_races = 0

    # -- schema ---------------------------------------------------------------

    def ensure_schema(self, db: Database) -> None:
        """Create the table (and migrate an older one forward)."""
        db.executescript(DECISION_CACHE_DDL)
        db.ensure_columns("decision_cache", _MIGRATED_COLUMNS)

    # -- reads ----------------------------------------------------------------

    def lookup(self, db: Database, pref_hash: str, policy_id: int
               ) -> tuple[str | None, int | None] | None:
        """The cached decision for one (preference, policy) cell.

        Returns ``None`` on a miss; on a hit, the ``(behavior,
        rule_index)`` pair — possibly ``(None, None)``, a cached
        negative decision.
        """
        row = db.query_one(self.LOOKUP_SQL, (pref_hash, int(policy_id)))
        with self._lock:
            if row is None:
                self.misses += 1
            else:
                self.hits += 1
        if row is None:
            return None
        return (
            row["behavior"],
            int(row["rule_index"]) if row["rule_index"] is not None
            else None,
        )

    def match_rows(self, db: Database, pref_hash: str) -> list[Any]:
        """One statement: every active policy with its cached decision
        (or ``cached = 0`` where none is materialized).  Hit/miss
        counters are the caller's to record — it knows which misses it
        goes on to compute."""
        return db.query(self.MATCH_SQL, (pref_hash,))

    def row_count(self, db: Database, pref_hash: str | None = None) -> int:
        if pref_hash is None:
            return int(db.scalar("SELECT COUNT(*) FROM decision_cache"))
        return int(db.scalar(
            "SELECT COUNT(*) FROM decision_cache WHERE pref_hash = ?",
            (pref_hash,)))

    # -- writes ---------------------------------------------------------------

    def store_rows(self, db: Database,
                   rows: Sequence[tuple]) -> int:
        """Materialize decided cells: ``(pref_hash, policy_id,
        policy_version, behavior, rule_index, computed_at)`` tuples.

        The caller owns transaction scope (population must be atomic —
        a crash mid-populate may not leave partial rows; see
        ``tests/test_decision_cache.py``).
        """
        if not rows:
            return 0
        db.executemany(self._INSERT, rows)
        with self._lock:
            self.populated += len(rows)
        return len(rows)

    def invalidate_inactive(self, db: Database, name: str,
                            site: str | None) -> int:
        """Drop the cached decisions of every superseded version of
        (*name*, *site*); returns rows deleted.

        Called by the installer inside its write transaction, right
        after a version bump deactivates the old ``policy_id`` — the
        delete and the install commit or roll back together.
        """
        cursor = db.execute(self._INVALIDATE, (name, site))
        deleted = max(0, cursor.rowcount)
        with self._lock:
            self.invalidated += deleted
        return deleted

    def record_hits(self, hits: int, misses: int) -> None:
        """Fold a bulk match's hit/miss split into the counters."""
        with self._lock:
            self.hits += hits
            self.misses += misses

    def record_write_error(self) -> None:
        with self._lock:
            self.write_errors += 1

    def record_repair_race(self, stale: int) -> None:
        """Count listed policy versions a racing install deactivated
        before the miss-repair query could decide them (each one forces
        the match to re-read)."""
        with self._lock:
            self.repair_races += stale

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "populated": self.populated,
                "invalidated": self.invalidated,
                "write_errors": self.write_errors,
                "repair_races": self.repair_races,
            }


def decision_rows(pref_hash: str,
                  actives: Iterable[tuple[int, int]],
                  fired: dict[int, tuple[str, int]],
                  computed_at: str | None = None) -> list[tuple]:
    """Build INSERT tuples for every active policy, negatives included.

    *actives* is ``(policy_id, version)`` pairs; *fired* the bulk
    plan's ``{policy_id: (behavior, rule_index)}``.  Policies absent
    from *fired* become cached negative decisions (NULL behavior).
    """
    stamp = computed_at if computed_at is not None else utc_now_iso()
    rows: list[tuple] = []
    for policy_id, version in actives:
        behavior, rule_index = fired.get(int(policy_id), (None, None))
        rows.append((pref_hash, int(policy_id), int(version),
                     behavior, rule_index, stamp))
    return rows
