"""Policy version management on top of :class:`PolicyStore`.

One of the advantages the paper claims for the server-centric architecture
(Section 4.2): "Policies of a website will not stay static forever.
Versions of policies can be better managed using a database system than the
current file system based implementations."

:class:`VersionedPolicyStore` keeps the full version history of each named
policy in the ``policy`` table (``version`` / ``active`` columns); only the
newest version is *active* and returned by name lookups, while older
versions stay queryable for audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError, UnknownPolicyError
from repro.p3p.model import Policy
from repro.storage.reconstruct import reconstruct_policy
from repro.storage.shredder import PolicyStore, ShredReport


@dataclass(frozen=True)
class PolicyVersion:
    """One entry in a named policy's version history."""

    policy_id: int
    name: str
    version: int
    active: bool
    installed_at: str | None


class VersionedPolicyStore:
    """A PolicyStore in which installs of the same name create versions."""

    def __init__(self, store: PolicyStore | None = None):
        self.store = store if store is not None else PolicyStore()
        self.db = self.store.db

    def install(self, policy: Policy, site: str | None = None) -> ShredReport:
        """Install *policy*; if its name exists for the same site,
        supersede the active version.

        Version chains are per (name, site): two sites may each have a
        policy named "main" without superseding one another.
        """
        if policy.name is None:
            raise StorageError("versioned installs require a policy name")

        current = self.db.query_one(
            "SELECT policy_id, version FROM policy "
            "WHERE name = ? AND site IS ? AND active = 1 "
            "ORDER BY version DESC LIMIT 1",
            (policy.name, site),
        )
        next_version = 1 if current is None else current["version"] + 1

        report = self.store.install_policy(
            policy, site=site, version=next_version, active=True
        )
        if current is not None:
            with self.db.transaction():
                self.db.execute(
                    "UPDATE policy SET active = 0 WHERE policy_id = ?",
                    (current["policy_id"],),
                )
        return report

    def active_policy_id(self, name: str) -> int:
        """The id of the active version of *name*."""
        policy_id = self.store.policy_id_by_name(name, active_only=True)
        if policy_id is None:
            raise UnknownPolicyError(f"no active policy named {name!r}")
        return policy_id

    def active_policy(self, name: str) -> Policy:
        """Reconstruct the active version of *name*."""
        return reconstruct_policy(self.db, self.active_policy_id(name))

    def history(self, name: str) -> list[PolicyVersion]:
        """All versions of *name*, oldest first."""
        rows = self.db.query(
            "SELECT policy_id, name, version, active, installed_at "
            "FROM policy WHERE name = ? ORDER BY version",
            (name,),
        )
        return [
            PolicyVersion(
                policy_id=row["policy_id"],
                name=row["name"],
                version=row["version"],
                active=bool(row["active"]),
                installed_at=row["installed_at"],
            )
            for row in rows
        ]

    def version(self, name: str, version: int) -> Policy:
        """Reconstruct a specific historical version of *name*."""
        policy_id = self.db.scalar(
            "SELECT policy_id FROM policy WHERE name = ? AND version = ?",
            (name, version),
        )
        if policy_id is None:
            raise UnknownPolicyError(
                f"policy {name!r} has no version {version}"
            )
        return reconstruct_policy(self.db, policy_id)

    def rollback(self, name: str) -> int:
        """Deactivate the newest version, reactivating its predecessor.

        Returns the policy id that became active.  Raises StorageError when
        there is no predecessor to roll back to.
        """
        versions = self.history(name)
        if not versions:
            raise UnknownPolicyError(f"no policy named {name!r}")
        if len(versions) < 2:
            raise StorageError(f"policy {name!r} has no prior version")
        newest, previous = versions[-1], versions[-2]
        with self.db.transaction():
            self.db.execute(
                "UPDATE policy SET active = 0 WHERE policy_id = ?",
                (newest.policy_id,),
            )
            self.db.execute(
                "UPDATE policy SET active = 1 WHERE policy_id = ?",
                (previous.policy_id,),
            )
        return previous.policy_id
