"""Figure 14: the optimized relational schema for storing policies.

Relative to the Figure 8 decomposition, the optimizations of Section 5.4
are applied:

* purpose / recipient / category *values* become rows in their parent's
  table (``purpose.purpose``, ``recipient.recipient``,
  ``category.category``) with a ``required`` column for the value
  subelements' attribute;
* PURPOSE and RECIPIENT lose their id column — (policy_id, statement_id)
  suffices because a STATEMENT has at most one of each;
* RETENTION values are stored with the grand-parent STATEMENT
  (``statement.retention``);
* CONSEQUENCE becomes a nullable ``statement.consequence`` column;
* ACCESS and TEST fold into the ``policy`` table.

The schema also stores ENTITY data and DISPUTES (with remedies), plus the
versioning columns used by :mod:`repro.storage.versioning`.
"""

from __future__ import annotations

from repro.storage.database import Database

OPTIMIZED_DDL = """
CREATE TABLE IF NOT EXISTS policy (
  policy_id       INTEGER PRIMARY KEY,
  name            TEXT,
  discuri         TEXT,
  opturi          TEXT,
  access          TEXT,
  test            INTEGER NOT NULL DEFAULT 0,
  site            TEXT,
  version         INTEGER NOT NULL DEFAULT 1,
  active          INTEGER NOT NULL DEFAULT 1,
  installed_at    TEXT
);

CREATE TABLE IF NOT EXISTS entity (
  policy_id       INTEGER NOT NULL REFERENCES policy(policy_id),
  ref             TEXT NOT NULL,
  value           TEXT,
  PRIMARY KEY (policy_id, ref)
);

CREATE TABLE IF NOT EXISTS disputes (
  disputes_id     INTEGER NOT NULL,
  policy_id       INTEGER NOT NULL REFERENCES policy(policy_id),
  resolution_type TEXT,
  service         TEXT,
  verification    TEXT,
  long_description TEXT,
  PRIMARY KEY (disputes_id, policy_id)
);

CREATE TABLE IF NOT EXISTS remedy (
  policy_id       INTEGER NOT NULL,
  disputes_id     INTEGER NOT NULL,
  remedy          TEXT NOT NULL,
  PRIMARY KEY (policy_id, disputes_id, remedy)
);

CREATE TABLE IF NOT EXISTS statement (
  statement_id    INTEGER NOT NULL,
  policy_id       INTEGER NOT NULL REFERENCES policy(policy_id),
  consequence     TEXT,
  retention       TEXT,
  non_identifiable INTEGER NOT NULL DEFAULT 0,
  PRIMARY KEY (statement_id, policy_id)
);

CREATE TABLE IF NOT EXISTS purpose (
  policy_id       INTEGER NOT NULL,
  statement_id    INTEGER NOT NULL,
  purpose         TEXT NOT NULL,
  required        TEXT NOT NULL DEFAULT 'always',
  PRIMARY KEY (policy_id, statement_id, purpose, required)
);

CREATE TABLE IF NOT EXISTS recipient (
  policy_id       INTEGER NOT NULL,
  statement_id    INTEGER NOT NULL,
  recipient       TEXT NOT NULL,
  required        TEXT NOT NULL DEFAULT 'always',
  PRIMARY KEY (policy_id, statement_id, recipient, required)
);

CREATE TABLE IF NOT EXISTS data (
  data_id         INTEGER NOT NULL,
  statement_id    INTEGER NOT NULL,
  policy_id       INTEGER NOT NULL,
  ref             TEXT NOT NULL,
  optional        TEXT NOT NULL DEFAULT 'no',
  PRIMARY KEY (data_id, statement_id, policy_id)
);

CREATE TABLE IF NOT EXISTS category (
  policy_id       INTEGER NOT NULL,
  statement_id    INTEGER NOT NULL,
  data_id         INTEGER NOT NULL,
  category        TEXT NOT NULL,
  source          TEXT NOT NULL DEFAULT 'base',
  PRIMARY KEY (policy_id, statement_id, data_id, category)
);

CREATE INDEX IF NOT EXISTS idx_statement_policy ON statement(policy_id);
CREATE INDEX IF NOT EXISTS idx_purpose_statement ON purpose(policy_id, statement_id);
CREATE INDEX IF NOT EXISTS idx_recipient_statement ON recipient(policy_id, statement_id);
CREATE INDEX IF NOT EXISTS idx_data_statement ON data(policy_id, statement_id);
CREATE INDEX IF NOT EXISTS idx_category_data ON category(policy_id, statement_id, data_id);
"""

#: Figure 16: tables for storing the reference file information.
REFERENCE_DDL = """
CREATE TABLE IF NOT EXISTS meta (
  meta_id         INTEGER PRIMARY KEY,
  site            TEXT,
  expiry          TEXT
);

CREATE TABLE IF NOT EXISTS policyref (
  policyref_id    INTEGER NOT NULL,
  meta_id         INTEGER NOT NULL REFERENCES meta(meta_id),
  about           TEXT NOT NULL,
  policy_id       INTEGER,
  PRIMARY KEY (policyref_id, meta_id)
);

CREATE TABLE IF NOT EXISTS include (
  include_id      INTEGER NOT NULL,
  policyref_id    INTEGER NOT NULL,
  meta_id         INTEGER NOT NULL,
  pattern         TEXT NOT NULL,
  PRIMARY KEY (include_id, policyref_id, meta_id)
);

CREATE TABLE IF NOT EXISTS exclude (
  exclude_id      INTEGER NOT NULL,
  policyref_id    INTEGER NOT NULL,
  meta_id         INTEGER NOT NULL,
  pattern         TEXT NOT NULL,
  PRIMARY KEY (exclude_id, policyref_id, meta_id)
);

CREATE TABLE IF NOT EXISTS cookie_include (
  include_id      INTEGER NOT NULL,
  policyref_id    INTEGER NOT NULL,
  meta_id         INTEGER NOT NULL,
  pattern         TEXT NOT NULL,
  PRIMARY KEY (include_id, policyref_id, meta_id)
);

CREATE TABLE IF NOT EXISTS cookie_exclude (
  exclude_id      INTEGER NOT NULL,
  policyref_id    INTEGER NOT NULL,
  meta_id         INTEGER NOT NULL,
  pattern         TEXT NOT NULL,
  PRIMARY KEY (exclude_id, policyref_id, meta_id)
);

CREATE INDEX IF NOT EXISTS idx_policyref_meta ON policyref(meta_id);
"""


def create_optimized_schema(db: Database) -> None:
    """Create the Figure 14 policy tables in *db*."""
    db.executescript(OPTIMIZED_DDL)


def create_reference_schema(db: Database) -> None:
    """Create the Figure 16 reference-file tables in *db*."""
    db.executescript(REFERENCE_DDL)


#: Table names of the Figure 14 schema, in dependency order.
POLICY_TABLES = (
    "policy", "entity", "disputes", "remedy", "statement",
    "purpose", "recipient", "data", "category",
)

#: Table names of the Figure 16 schema.
REFERENCE_TABLES = (
    "meta", "policyref", "include", "exclude",
    "cookie_include", "cookie_exclude",
)
