"""Thin SQLite wrapper used by every storage component.

The paper ran against DB2 UDB 7.2; we substitute SQLite (see DESIGN.md).
The wrapper adds what the experiments need on top of :mod:`sqlite3`:
transactions as context managers, script execution, and cumulative query
timing so the benchmark harness can separate *conversion time* from *query
time* the way Figure 20 does.
"""

from __future__ import annotations

import re
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import StorageError

#: SQLite keywords that clash with identifiers we generate (e.g. the ACCESS
#: value element ``all``).  ``quote_ident`` quotes these and anything that
#: is not a plain identifier.
_SQL_KEYWORDS = frozenset({
    "all", "and", "as", "between", "by", "case", "check", "current",
    "default", "delete", "distinct", "drop", "each", "else", "end",
    "exists", "from", "group", "having", "in", "index", "insert", "into",
    "is", "join", "like", "limit", "no", "not", "null", "on", "or",
    "order", "primary", "references", "select", "set", "table", "then",
    "to", "union", "unique", "update", "using", "values", "when", "where",
})

_PLAIN_IDENT = re.compile(r"^[a-z_][a-z0-9_]*$")


def quote_ident(name: str) -> str:
    """Quote *name* for use as an SQL identifier when necessary."""
    if _PLAIN_IDENT.match(name) and name not in _SQL_KEYWORDS:
        return name
    return '"' + name.replace('"', '""') + '"'


def sql_literal(value: str) -> str:
    """Render *value* as an SQL string literal (single quotes doubled)."""
    return "'" + value.replace("'", "''") + "'"


@dataclass
class QueryStats:
    """Cumulative statistics over every statement run on a Database.

    ``cache_hits``/``cache_misses`` track the per-connection prepared-
    statement cache: a *hit* means the statement text was seen recently
    on this connection, so sqlite3's statement cache re-executes the
    already-compiled program instead of re-preparing it.

    ``plans_audited``/``audit_findings`` count runs of the EXPLAIN-plan
    auditor (:mod:`repro.analysis.plans`) against this connection and
    the findings those runs produced; the pool folds them into its
    aggregate so ``GET /metrics`` can expose serving-path audit activity.
    """

    statements: int = 0
    seconds: float = 0.0
    last_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    plans_audited: int = 0
    audit_findings: int = 0

    def record(self, elapsed: float) -> None:
        self.statements += 1
        self.seconds += elapsed
        self.last_seconds = elapsed

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_audit(self, findings: int) -> None:
        self.plans_audited += 1
        self.audit_findings += findings

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return (self.cache_hits / lookups) if lookups else 0.0

    def reset(self) -> None:
        self.statements = 0
        self.seconds = 0.0
        self.last_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.plans_audited = 0
        self.audit_findings = 0


@dataclass(frozen=True)
class ExplainStep:
    """One row of SQLite's ``EXPLAIN QUERY PLAN`` output.

    ``detail`` is the planner's human-readable step description, e.g.
    ``SEARCH statement USING INDEX idx_statement_policy (policy_id=?)``
    or ``SCAN purpose``.  ``is_scan``/``uses_index`` pre-digest the two
    facts the plan auditor cares about; ``table`` extracts the relation
    the step touches (None for subquery/compound bookkeeping rows).
    """

    id: int
    parent: int
    detail: str

    _TABLE = re.compile(
        r"^(?:SCAN|SEARCH)\s+(?:TABLE\s+)?([A-Za-z_][A-Za-z0-9_]*)"
    )

    @property
    def is_scan(self) -> bool:
        """True for a full-table scan step (``SCAN t``, no index)."""
        return (self.detail.startswith("SCAN")
                and not self.uses_index
                and "CONSTANT ROW" not in self.detail)

    @property
    def uses_index(self) -> bool:
        return ("USING INDEX" in self.detail
                or "USING COVERING INDEX" in self.detail
                or "USING INTEGER PRIMARY KEY" in self.detail
                or "USING ROWID SEARCH" in self.detail)

    @property
    def table(self) -> str | None:
        match = self._TABLE.match(self.detail)
        return match.group(1) if match else None

    def __str__(self) -> str:
        return self.detail


class Database:
    """A SQLite database with timing and transaction helpers.

    >>> db = Database()            # in-memory
    >>> db.execute("CREATE TABLE t (x INTEGER)")
    >>> with db.transaction():
    ...     db.execute("INSERT INTO t VALUES (?)", (1,))
    >>> db.query_one("SELECT x FROM t")[0]
    1
    """

    def __init__(self, path: str = ":memory:", *,
                 timeout: float = 5.0,
                 wal: bool = False,
                 check_same_thread: bool | None = None,
                 statement_cache_size: int = 128):
        self.path = path
        if check_same_thread is None:
            # With a serialized (threadsafety == 3) sqlite3 build the C
            # module takes its own mutexes, so one connection may be used
            # from many threads; only enforce thread affinity when the
            # build cannot guarantee that.
            check_same_thread = sqlite3.threadsafety < 3
        self.statement_cache_size = max(1, statement_cache_size)
        self._connection = sqlite3.connect(
            path, timeout=timeout, check_same_thread=check_same_thread,
            cached_statements=self.statement_cache_size,
        )
        self._connection.row_factory = sqlite3.Row
        self.stats = QueryStats()
        self.wal = False
        self._statement_failed = False
        # Shadow of sqlite3's per-connection prepared-statement cache:
        # an LRU of recently executed statement texts, sized to match,
        # so hit/miss counters reflect what the C layer re-prepares.
        self._statement_lru: "dict[str, None]" = {}
        if wal:
            self.ensure_wal()

    # -- lifecycle -----------------------------------------------------------

    def ensure_wal(self) -> bool:
        """Switch to write-ahead logging; returns True when WAL is active.

        WAL lets any number of reader connections proceed while one
        writer commits (the basis of :class:`repro.storage.pool.
        ConnectionPool`).  In-memory databases have no journal file, so
        the pragma is a no-op there and this returns False.
        """
        row = self._connection.execute("PRAGMA journal_mode=WAL").fetchone()
        self.wal = row[0] == "wal"
        return self.wal

    def restore_backup(self, source_path: str, *,
                       timeout: float = 30.0) -> None:
        """Replace this database's contents with *source_path*'s.

        SQLite's online backup API copies a consistent committed
        snapshot of the source even while another process is writing it
        (the read is transactional), which is what the cluster's read
        replicas refresh with.  The destination — this connection —
        must not be inside an open transaction.
        """
        source = sqlite3.connect(source_path, timeout=timeout)
        try:
            source.backup(self._connection)
        except sqlite3.Error as exc:
            raise StorageError(
                f"backup from {source_path!r} failed: {exc}") from exc
        finally:
            source.close()

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def _note_statement(self, sql: str) -> None:
        """Record a statement-cache hit or miss for *sql*.

        Mirrors sqlite3's own LRU (same capacity, same key: the exact
        statement text), which the module does not expose counters for.
        Parameterized SQL is what makes this cache effective: a plan
        executed against 1000 policies is one cached program, where the
        literal pipeline's 1000 distinct texts are 1000 misses.
        """
        lru = self._statement_lru
        if sql in lru:
            # dict preserves insertion order; re-insert to refresh.
            del lru[sql]
            lru[sql] = None
            self.stats.record_cache(True)
            return
        lru[sql] = None
        if len(lru) > self.statement_cache_size:
            del lru[next(iter(lru))]
        self.stats.record_cache(False)

    def execute(self, sql: str,
                parameters: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Run one statement, recording its wall-clock time."""
        start = time.perf_counter()
        self._note_statement(sql)
        try:
            cursor = self._connection.execute(sql, parameters)
        except sqlite3.Error as exc:
            self._statement_failed = True
            raise StorageError(f"SQL failed: {exc}\n{sql}") from exc
        self.stats.record(time.perf_counter() - start)
        return cursor

    def executemany(self, sql: str,
                    rows: Sequence[Sequence[Any]]) -> None:
        start = time.perf_counter()
        self._note_statement(sql)
        try:
            self._connection.executemany(sql, rows)
        except sqlite3.Error as exc:
            self._statement_failed = True
            raise StorageError(f"SQL failed: {exc}\n{sql}") from exc
        self.stats.record(time.perf_counter() - start)

    def executescript(self, script: str) -> None:
        start = time.perf_counter()
        try:
            self._connection.executescript(script)
        except sqlite3.Error as exc:
            self._statement_failed = True
            raise StorageError(f"SQL script failed: {exc}") from exc
        self.stats.record(time.perf_counter() - start)

    def query(self, sql: str,
              parameters: Sequence[Any] = ()) -> list[sqlite3.Row]:
        """Run a SELECT and fetch all rows."""
        return self.execute(sql, parameters).fetchall()

    def query_one(self, sql: str,
                  parameters: Sequence[Any] = ()) -> sqlite3.Row | None:
        """Run a SELECT and fetch the first row (or None)."""
        return self.execute(sql, parameters).fetchone()

    def scalar(self, sql: str, parameters: Sequence[Any] = ()) -> Any:
        """Run a SELECT and return the first column of the first row."""
        row = self.query_one(sql, parameters)
        return None if row is None else row[0]

    def explain(self, sql: str,
                parameters: Sequence[Any] = ()) -> list[ExplainStep]:
        """Return the query plan SQLite chose for *sql* as structured rows.

        Runs ``EXPLAIN QUERY PLAN`` with the same *parameters* the real
        statement would use, so parameterized plans (one ``?`` bind per
        rule) are explained exactly as executed.  The probe bypasses the
        timing and statement-cache accounting — introspection must not
        skew the serving metrics it exists to protect.
        """
        try:
            cursor = self._connection.execute(
                "EXPLAIN QUERY PLAN " + sql, parameters)
        except sqlite3.Error as exc:
            raise StorageError(
                f"EXPLAIN QUERY PLAN failed: {exc}\n{sql}") from exc
        return [
            ExplainStep(id=int(row["id"]), parent=int(row["parent"]),
                        detail=str(row["detail"]))
            for row in cursor.fetchall()
        ]

    def statement_actions(self, sql: str,
                          parameters: Sequence[Any] | None = None
                          ) -> list[tuple[int, str | None, str | None]]:
        """Prepare *sql* (without running it) and report what it touches.

        SQLite consults the connection's authorizer while *compiling* a
        statement, naming every table it would read or write — which
        makes the authorizer a schema-aware static analyzer: no rows
        move, yet ``INSERT``/``UPDATE``/``DELETE`` targets and every
        ``(table, column)`` read are known exactly, derived-table
        aliases already resolved to base tables.  The statement is
        wrapped in ``EXPLAIN`` so only bytecode is produced; *parameters*
        defaults to a null bind per ``?`` (the compiled program does not
        depend on bound values).  Returns ``(action, arg1, arg2)``
        tuples using the ``sqlite3.SQLITE_*`` action codes
        (``SQLITE_READ`` carries table+column, the write actions carry
        the table).  Raises :class:`StorageError` when the statement
        does not compile — the caller's cue that the statement
        references schema that does not exist.
        """
        if parameters is None:
            # Null bind per live placeholder (quoted regions carry no
            # binds; sqlite3 insists the count match even for EXPLAIN).
            live = re.sub(r"'(?:[^']|'')*'|\"(?:[^\"]|\"\")*\"", " ", sql)
            parameters = (None,) * live.count("?")
        actions: list[tuple[int, str | None, str | None]] = []

        def authorizer(action: int, arg1, arg2, dbname, trigger) -> int:
            actions.append((action, arg1, arg2))
            return sqlite3.SQLITE_OK

        self._connection.set_authorizer(authorizer)
        try:
            self._connection.execute("EXPLAIN " + sql,
                                     parameters).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"SQL failed: {exc}\n{sql}") from exc
        finally:
            self._connection.set_authorizer(None)
        return actions

    # -- transactions ----------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """Commit on success, roll back on error.

        The block is also rolled back — and StorageError raised — when a
        statement inside it failed but the caller swallowed the error:
        committing the surviving half of a transaction whose other half
        silently failed would corrupt multi-table invariants (e.g. a
        policy row without its statement rows).
        """
        self._statement_failed = False
        try:
            yield self
        except Exception:
            self._connection.rollback()
            self._statement_failed = False
            raise
        if self._statement_failed:
            self._connection.rollback()
            self._statement_failed = False
            raise StorageError(
                "transaction rolled back: a statement inside the block "
                "failed and the error was swallowed"
            )
        self._connection.commit()

    def commit(self) -> None:
        self._connection.commit()

    def rollback(self) -> None:
        self._connection.rollback()

    # -- introspection -----------------------------------------------------------

    def table_names(self) -> list[str]:
        rows = self.query(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "ORDER BY name"
        )
        return [row["name"] for row in rows]

    def table_columns(self, table: str) -> list[str]:
        """Column names of *table*, in declaration order (empty when the
        table does not exist)."""
        rows = self.query(f"PRAGMA table_info({quote_ident(table)})")
        return [row["name"] for row in rows]

    def ensure_columns(self, table: str,
                       columns: "dict[str, str]") -> list[str]:
        """Migrate *table* forward: ``ALTER TABLE ADD COLUMN`` for every
        column of *columns* (name -> type/default declaration) it lacks.

        Returns the names added.  A missing table is left alone — the
        caller's CREATE TABLE IF NOT EXISTS already carries the full
        shape, so there is nothing to migrate.
        """
        existing = set(self.table_columns(table))
        if not existing:
            return []
        added: list[str] = []
        for name, declaration in columns.items():
            if name in existing:
                continue
            self.execute(
                f"ALTER TABLE {quote_ident(table)} "
                f"ADD COLUMN {quote_ident(name)} {declaration}"
            )
            added.append(name)
        return added

    def table_count(self, table: str) -> int:
        return int(self.scalar(f"SELECT COUNT(*) FROM {quote_ident(table)}"))
