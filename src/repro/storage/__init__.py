"""Relational storage for P3P: the Figure 8 generic schema, the Figure 14
optimized schema, reference-file tables (Figure 16), shredders, the
reconstruction view, and policy versioning."""

from repro.storage.database import (
    Database,
    QueryStats,
    quote_ident,
    sql_literal,
)
from repro.storage.pool import ConnectionPool
from repro.storage.generic_schema import (
    GENERIC_TABLES,
    TableDef,
    create_generic_schema,
    decompose_schema,
    schema_ddl,
)
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.optimized_schema import (
    POLICY_TABLES,
    REFERENCE_TABLES,
    create_optimized_schema,
    create_reference_schema,
)
from repro.storage.reconstruct import reconstruct_policy, reconstruct_policy_xml
from repro.storage.refstore import ReferenceStore, pattern_to_like
from repro.storage.shredder import PolicyStore, ShredReport
from repro.storage.versioning import PolicyVersion, VersionedPolicyStore

__all__ = [
    "Database",
    "QueryStats",
    "ConnectionPool",
    "quote_ident",
    "sql_literal",
    "GenericPolicyStore",
    "GENERIC_TABLES",
    "TableDef",
    "create_generic_schema",
    "decompose_schema",
    "schema_ddl",
    "PolicyStore",
    "ShredReport",
    "POLICY_TABLES",
    "REFERENCE_TABLES",
    "create_optimized_schema",
    "create_reference_schema",
    "ReferenceStore",
    "pattern_to_like",
    "reconstruct_policy",
    "reconstruct_policy_xml",
    "PolicyVersion",
    "VersionedPolicyStore",
]
