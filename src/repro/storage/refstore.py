"""Reference files in the database (Section 5.5, Figure 16).

The translated queries of Section 5.3 begin ``SELECT <behavior> FROM
ApplicablePolicy`` where ApplicablePolicy is "a subquery that queries
tables storing the data from the P3P reference file, and returns the id of
the applicable policy against which the rule must be evaluated".
:meth:`ReferenceStore.applicable_policy_subquery` generates exactly that
subquery; :meth:`applicable_policy_id` runs it standalone.

URI wildcard matching (P3P ``*`` patterns) is compiled to SQL ``LIKE`` with
escaping, so the whole lookup runs inside the database.
"""

from __future__ import annotations

from repro.errors import ReferenceFileError
from repro.p3p.reference import ReferenceFile
from repro.storage.database import Database, sql_literal
from repro.storage.optimized_schema import create_reference_schema
from repro.storage.shredder import PolicyStore

_LIKE_ESCAPE = "\\"

#: Shredding statements as named constants: the sqlcheck contract gate
#: imports these and validates each against the reference schema, so a
#: Figure 16 column rename fails `p3pdb audit --sql-contracts` instead
#: of the next reference-file install.
INSERT_META_SQL = "INSERT INTO meta (site, expiry) VALUES (?, ?)"
INSERT_POLICYREF_SQL = (
    "INSERT INTO policyref (policyref_id, meta_id, about, policy_id) "
    "VALUES (?, ?, ?, ?)"
)

#: Per-pattern-table id column: the cookie tables reuse the base
#: tables' column names (Figure 16 keeps one shape for all four).
PATTERN_ID_COLUMNS = {
    "include": "include_id",
    "exclude": "exclude_id",
    "cookie_include": "include_id",
    "cookie_exclude": "exclude_id",
}
PATTERN_INSERT_SQL = {
    table: (f"INSERT INTO {table} ({column}, policyref_id, meta_id, "
            "pattern) VALUES (?, ?, ?, ?)")
    for table, column in PATTERN_ID_COLUMNS.items()
}

#: Deletion order respects child-before-parent (patterns and policyref
#: rows reference meta).
REFERENCE_DELETE_ORDER = ("include", "exclude", "cookie_include",
                          "cookie_exclude", "policyref", "meta")
REFERENCE_DELETE_SQL = {
    table: f"DELETE FROM {table} WHERE meta_id = ?"
    for table in REFERENCE_DELETE_ORDER
}


def pattern_to_like(pattern: str) -> str:
    """Convert a P3P ``*`` wildcard pattern to a LIKE pattern with escapes."""
    out: list[str] = []
    for char in pattern:
        if char == "*":
            out.append("%")
        elif char in ("%", "_", _LIKE_ESCAPE):
            out.append(_LIKE_ESCAPE + char)
        else:
            out.append(char)
    return "".join(out)


class ReferenceStore:
    """Reference-file data shredded into the Figure 16 tables."""

    def __init__(self, db: Database | None = None):
        self.db = db if db is not None else Database()
        create_reference_schema(self.db)

    # -- installation -----------------------------------------------------------

    def install_reference_file(self, reference: ReferenceFile, site: str,
                               policy_store: PolicyStore | None = None,
                               policy_ids: dict[str, int] | None = None,
                               replace: bool = True) -> int:
        """Shred *reference* for *site*; returns the new meta id.

        Each POLICY-REF's ``about`` fragment is resolved to a shredded
        policy id, either through *policy_ids* (name -> id) or by looking
        the name up in *policy_store*.  Unresolvable names raise
        ReferenceFileError: a reference file pointing at a policy the
        server never installed is a deployment error.

        With ``replace=True`` (the default) any previously installed
        reference file for *site* is removed first — a site has exactly
        one current reference file, and stale META rows would otherwise
        shadow new policy versions during the ApplicablePolicy lookup.
        """
        with self.db.transaction():
            if replace:
                self._remove_site(site)
            cursor = self.db.execute(
                INSERT_META_SQL, (site, reference.expiry),
            )
            meta_id = cursor.lastrowid

            for policyref_id, ref in enumerate(reference.refs, start=1):
                policy_id = self._resolve(ref.policy_name, policy_store,
                                          policy_ids)
                self.db.execute(
                    INSERT_POLICYREF_SQL,
                    (policyref_id, meta_id, ref.about, policy_id),
                )
                self._insert_patterns("include", meta_id, policyref_id,
                                      ref.includes)
                self._insert_patterns("exclude", meta_id, policyref_id,
                                      ref.excludes)
                self._insert_patterns("cookie_include", meta_id,
                                      policyref_id, ref.cookie_includes)
                self._insert_patterns("cookie_exclude", meta_id,
                                      policyref_id, ref.cookie_excludes)
        return meta_id

    def _remove_site(self, site: str) -> None:
        meta_ids = [
            row["meta_id"]
            for row in self.db.query(
                "SELECT meta_id FROM meta WHERE site = ?", (site,)
            )
        ]
        for meta_id in meta_ids:
            for table in REFERENCE_DELETE_ORDER:
                self.db.execute(REFERENCE_DELETE_SQL[table], (meta_id,))

    def _resolve(self, name: str, policy_store: PolicyStore | None,
                 policy_ids: dict[str, int] | None) -> int:
        if policy_ids is not None and name in policy_ids:
            return policy_ids[name]
        if policy_store is not None:
            policy_id = policy_store.policy_id_by_name(name)
            if policy_id is not None:
                return policy_id
        raise ReferenceFileError(
            f"POLICY-REF names unknown policy {name!r}"
        )

    def _insert_patterns(self, table: str, meta_id: int, policyref_id: int,
                         patterns: tuple[str, ...]) -> None:
        for pattern_id, pattern in enumerate(patterns, start=1):
            self.db.execute(
                PATTERN_INSERT_SQL[table],
                (pattern_id, policyref_id, meta_id, pattern),
            )

    # -- lookup --------------------------------------------------------------------

    def applicable_policy_subquery(self, site: str, uri: str,
                                   cookie: bool = False) -> str:
        """The ApplicablePolicy subquery of Section 5.3 (literals inlined).

        Returns one row ``(policy_id)`` — the first POLICY-REF in document
        order whose INCLUDE patterns cover *uri* and whose EXCLUDE patterns
        do not.
        """
        include_table = "cookie_include" if cookie else "include"
        exclude_table = "cookie_exclude" if cookie else "exclude"
        site_lit = sql_literal(site)
        uri_lit = sql_literal(uri)
        escape = sql_literal(_LIKE_ESCAPE)
        return (
            "SELECT policyref.policy_id AS policy_id\n"
            "FROM policyref, meta\n"
            "WHERE policyref.meta_id = meta.meta_id\n"
            f"  AND meta.site = {site_lit}\n"
            "  AND EXISTS (\n"
            f"    SELECT * FROM {include_table}\n"
            f"    WHERE {include_table}.policyref_id = policyref.policyref_id\n"
            f"      AND {include_table}.meta_id = policyref.meta_id\n"
            f"      AND {uri_lit} LIKE like_pattern({include_table}.pattern) "
            f"ESCAPE {escape})\n"
            "  AND NOT EXISTS (\n"
            f"    SELECT * FROM {exclude_table}\n"
            f"    WHERE {exclude_table}.policyref_id = policyref.policyref_id\n"
            f"      AND {exclude_table}.meta_id = policyref.meta_id\n"
            f"      AND {uri_lit} LIKE like_pattern({exclude_table}.pattern) "
            f"ESCAPE {escape})\n"
            "ORDER BY policyref.meta_id, policyref.policyref_id\n"
            "LIMIT 1"
        )

    def register_sql_functions(self, db: Database | None = None) -> None:
        """Register the ``like_pattern`` SQL function on *db* (idempotent)."""
        target = db if db is not None else self.db
        target._connection.create_function(  # noqa: SLF001 - same package
            "like_pattern", 1, pattern_to_like, deterministic=True
        )

    def applicable_policy_id(self, site: str, uri: str,
                             cookie: bool = False,
                             db: Database | None = None) -> int | None:
        """Run the ApplicablePolicy subquery; None if no policy covers *uri*.

        Pass *db* to run the lookup on another connection to the same
        database (e.g. a pooled per-thread reader).
        """
        target = db if db is not None else self.db
        self.register_sql_functions(target)
        return target.scalar(self.applicable_policy_subquery(site, uri,
                                                             cookie))
