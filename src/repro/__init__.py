"""repro — server-centric P3P on database technology.

A full reproduction of *Implementing P3P Using Database Technology*
(Agrawal, Kiernan, Srikant, Xu — ICDE 2003): P3P policy and APPEL
preference libraries, relational shredding (generic and optimized
schemas), APPEL->SQL and APPEL->XQuery translation, a mini XQuery engine
with an XTABLE-style SQL compiler, the four matching engines the paper
compares, the server/client/hybrid deployment architectures, and a
benchmark harness regenerating every table and figure of the paper's
evaluation.

Quickstart::

    from repro import PolicyServer, parse_policy, parse_ruleset

    server = PolicyServer()
    server.install_policy(parse_policy(policy_xml), site="shop.example.com")
    server.install_reference_file(reference_xml, site="shop.example.com")
    result = server.check("shop.example.com", "/checkout",
                          parse_ruleset(appel_xml))
    print(result.behavior)   # "request" or "block"
"""

from repro.appel import (
    AppelEngine,
    Expression,
    Rule,
    Ruleset,
    expression,
    parse_ruleset,
    rule,
    ruleset,
    ruleset_stats,
    serialize_ruleset,
    validate_ruleset,
)
from repro.engines import (
    GenericSqlMatchEngine,
    MatchEngine,
    MatchOutcome,
    NativeAppelMatchEngine,
    SqlMatchEngine,
    XQueryNativeMatchEngine,
    XTableMatchEngine,
    all_engines,
    standard_engines,
)
from repro.errors import (
    AppelParseError,
    PolicyParseError,
    PolicyValidationError,
    ReproError,
    StorageError,
    TranslationError,
    TranslationTooComplexError,
    VocabularyError,
    XQuerySyntaxError,
)
from repro.p3p import (
    CookiePreference,
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    ReferenceFile,
    Statement,
    decode_compact,
    encode_compact,
    parse_policy,
    parse_reference_file,
    serialize_policy,
    validate_policy,
)
from repro.server import (
    CheckResult,
    ClientAgent,
    HybridAgent,
    PolicyServer,
    Site,
)
from repro.storage import (
    Database,
    GenericPolicyStore,
    PolicyStore,
    ReferenceStore,
    VersionedPolicyStore,
    reconstruct_policy,
)
from repro.translate import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    XQueryTranslator,
    applicable_policy_literal,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # P3P
    "Policy", "Statement", "PurposeValue", "RecipientValue", "DataItem",
    "parse_policy", "serialize_policy", "validate_policy",
    "ReferenceFile", "parse_reference_file",
    "encode_compact", "decode_compact", "CookiePreference",
    # APPEL
    "Ruleset", "Rule", "Expression", "ruleset", "rule", "expression",
    "parse_ruleset", "serialize_ruleset", "ruleset_stats",
    "validate_ruleset", "AppelEngine",
    # storage
    "Database", "PolicyStore", "GenericPolicyStore", "ReferenceStore",
    "VersionedPolicyStore", "reconstruct_policy",
    # translation
    "OptimizedSqlTranslator", "GenericSqlTranslator", "XQueryTranslator",
    "applicable_policy_literal",
    # engines
    "MatchEngine", "MatchOutcome", "NativeAppelMatchEngine",
    "SqlMatchEngine", "GenericSqlMatchEngine", "XQueryNativeMatchEngine",
    "XTableMatchEngine", "standard_engines", "all_engines",
    # server
    "PolicyServer", "CheckResult", "Site", "ClientAgent", "HybridAgent",
    # errors
    "ReproError", "PolicyParseError", "PolicyValidationError",
    "AppelParseError", "VocabularyError", "StorageError",
    "TranslationError", "TranslationTooComplexError", "XQuerySyntaxError",
]
