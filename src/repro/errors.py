"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class VocabularyError(ReproError):
    """An unknown P3P vocabulary term, element, or attribute was used."""


class PolicyParseError(ReproError):
    """A P3P policy document could not be parsed."""


class PolicyValidationError(ReproError):
    """A parsed P3P policy violates the P3P structural rules."""


class ReferenceFileError(ReproError):
    """A P3P reference file could not be parsed or is malformed."""


class CompactPolicyError(ReproError):
    """A compact policy string could not be encoded or decoded."""


class AppelParseError(ReproError):
    """An APPEL ruleset document could not be parsed."""


class AppelEvaluationError(ReproError):
    """The native APPEL engine failed while matching a ruleset."""


class StorageError(ReproError):
    """A failure in the relational storage layer."""


class UnknownPolicyError(StorageError):
    """The requested policy id/name is not present in the store."""


class TranslationError(ReproError):
    """An APPEL rule could not be translated to SQL or XQuery."""


class XQuerySyntaxError(ReproError):
    """The mini XQuery engine could not parse a query."""


class XQueryEvaluationError(ReproError):
    """The mini XQuery engine failed while evaluating a query."""


class TranslationTooComplexError(TranslationError):
    """The XTABLE emulator refused a query that exceeds its complexity limit.

    This reproduces the paper's observation (Section 6.3.2) that the XTABLE
    translation of the *Medium* preference "was too complex for DB2 to
    execute".
    """


class BenchmarkError(ReproError):
    """A benchmark harness failure."""
