"""Recursive-descent parser for the XQuery subset.

Grammar (see :mod:`repro.xquery.ast` for node meanings)::

    query      := 'if' '(' docExpr ')' 'then' ctor ('else' ctor)?
    docExpr    := 'document' '(' STRING ')' predicate*
    ctor       := 'return'? '<' NAME '/'? '>'
    predicate  := '[' orExpr ']'
    orExpr     := andExpr ('or' andExpr)*
    andExpr    := unary ('and' unary)*
    unary      := 'not' '(' orExpr ')' | '(' orExpr ')' | comparison
                | selfTest | pathExpr
    comparison := '@' NAME ('='|'!=') STRING
    selfTest   := 'self::' NAME
    pathExpr   := (NAME | '*') predicate*
"""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xquery import lexer
from repro.xquery.ast import (
    AndExpr,
    AttributeComparison,
    Condition,
    DocumentExpr,
    IfQuery,
    NotExpr,
    OrExpr,
    PathExpr,
    SelfTest,
)


class _Parser:
    def __init__(self, source: str):
        self.tokens = lexer.tokenize(source)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> lexer.Token:
        return self.tokens[self.index]

    def advance(self) -> lexer.Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_punct(self, text: str) -> lexer.Token:
        token = self.advance()
        if token.kind != lexer.PUNCT or token.text != text:
            raise XQuerySyntaxError(
                f"expected {text!r} at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if not token.is_keyword(word):
            raise XQuerySyntaxError(
                f"expected {word!r} at offset {token.position}, "
                f"got {token.text!r}"
            )

    def expect_name(self) -> str:
        token = self.advance()
        if token.kind != lexer.NAME:
            raise XQuerySyntaxError(
                f"expected a name at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token.text

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> IfQuery:
        self.expect_keyword("if")
        self.expect_punct("(")
        document = self.parse_document_expr()
        self.expect_punct(")")
        self.expect_keyword("then")
        then_element = self.parse_constructor()
        else_element: str | None = None
        if self.peek().is_keyword("else"):
            self.advance()
            else_element = self.parse_constructor()
        token = self.advance()
        if token.kind != lexer.END:
            raise XQuerySyntaxError(
                f"trailing input at offset {token.position}: {token.text!r}"
            )
        return IfQuery(document=document, then_element=then_element,
                       else_element=else_element)

    def parse_document_expr(self) -> DocumentExpr:
        self.expect_keyword("document")
        self.expect_punct("(")
        token = self.advance()
        if token.kind != lexer.STRING:
            raise XQuerySyntaxError(
                f"document() expects a string at offset {token.position}"
            )
        uri = token.text
        self.expect_punct(")")
        predicates = self.parse_predicates()
        return DocumentExpr(uri=uri, predicates=predicates)

    def parse_constructor(self) -> str:
        if self.peek().is_keyword("return"):
            self.advance()
        self.expect_punct("<")
        name = self.expect_name()
        if self.peek().kind == lexer.PUNCT and self.peek().text == "/":
            self.advance()
        self.expect_punct(">")
        return name

    def parse_predicates(self) -> tuple[Condition, ...]:
        predicates: list[Condition] = []
        while self.peek().kind == lexer.PUNCT and self.peek().text == "[":
            self.advance()
            predicates.append(self.parse_or())
            self.expect_punct("]")
        return tuple(predicates)

    def parse_or(self) -> Condition:
        operands = [self.parse_and()]
        while self.peek().is_keyword("or"):
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def parse_and(self) -> Condition:
        operands = [self.parse_unary()]
        while self.peek().is_keyword("and"):
            self.advance()
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def parse_unary(self) -> Condition:
        token = self.peek()
        if token.is_keyword("not"):
            self.advance()
            self.expect_punct("(")
            inner = self.parse_or()
            self.expect_punct(")")
            return NotExpr(inner)
        if token.kind == lexer.PUNCT and token.text == "(":
            self.advance()
            inner = self.parse_or()
            self.expect_punct(")")
            return inner
        if token.kind == lexer.PUNCT and token.text == "@":
            return self.parse_comparison()
        if token.kind == lexer.PUNCT and token.text == "self::":
            self.advance()
            return SelfTest(self.expect_name())
        if token.kind == lexer.PUNCT and token.text == "*":
            self.advance()
            return PathExpr(step="*", predicates=self.parse_predicates())
        if token.kind == lexer.NAME:
            name = self.advance().text
            return PathExpr(step=name, predicates=self.parse_predicates())
        raise XQuerySyntaxError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )

    def parse_comparison(self) -> AttributeComparison:
        self.expect_punct("@")
        name = self.expect_name()
        operator = self.advance()
        if operator.kind != lexer.PUNCT or operator.text not in ("=", "!="):
            raise XQuerySyntaxError(
                f"expected = or != at offset {operator.position}"
            )
        value = self.advance()
        if value.kind != lexer.STRING:
            raise XQuerySyntaxError(
                f"expected a string at offset {value.position}"
            )
        return AttributeComparison(
            name=name, value=value.text, negated=operator.text == "!="
        )


def parse_query(source: str) -> IfQuery:
    """Parse one translated APPEL rule in the XQuery subset."""
    return _Parser(source).parse_query()


def parse_condition(source: str) -> Condition:
    """Parse a bare condition (used by unit tests)."""
    parser = _Parser(source)
    condition = parser.parse_or()
    token = parser.advance()
    if token.kind != lexer.END:
        raise XQuerySyntaxError(
            f"trailing input at offset {token.position}: {token.text!r}"
        )
    return condition
