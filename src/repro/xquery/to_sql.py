"""XTABLE emulation: compile the XQuery subset to SQL (Section 6.1).

The paper executed its APPEL-derived XQueries through the XTABLE/XPERANTO
prototype, "responsible for generating SQL from XQuery, which was then run
against DB2".  This module plays XTABLE's role: it compiles a parsed
XQuery against the *generic* (Figure 8) relational schema — middleware
that only knows the XML view cannot exploit the hand-optimized Figure 14
layout, which is why the paper found the XQuery path noticeably slower
than direct SQL ("this performance gap points out that there are still
untapped optimizations that XTABLE can perform").

The compiler enforces a complexity budget on the number of generated
subqueries.  Exceeding it raises
:class:`~repro.errors.TranslationTooComplexError`, reproducing the paper's
observation that "the XTABLE translation of the XQuery into SQL was too
complex for DB2 to execute" for the Medium preference (Figure 21).
"""

from __future__ import annotations

from repro.errors import TranslationTooComplexError
from repro.storage.database import quote_ident, sql_literal
from repro.translate import sqlgen
from repro.translate.sqlgen import FALSE_CLAUSE, TRUE_CLAUSE
from repro.vocab import schema as p3p_schema
from repro.xquery.ast import (
    AndExpr,
    AttributeComparison,
    Condition,
    IfQuery,
    NotExpr,
    OrExpr,
    PathExpr,
    SelfTest,
)

#: Default subquery budget.  Calibrated against the JRC-style suite: the
#: Medium level's *-exact-heavy rule compiles to ~79 subqueries over the
#: one-table-per-value schema while no other rule in the suite exceeds 9,
#: so 40 cleanly separates the two regimes.
DEFAULT_COMPLEXITY_LIMIT = 40

#: Tag of the virtual document node (context of the outermost predicates).
_DOCUMENT = "#document"


class XTableCompiler:
    """Compile one XQuery-subset query to generic-schema SQL."""

    def __init__(self,
                 complexity_limit: int = DEFAULT_COMPLEXITY_LIMIT):
        self.complexity_limit = complexity_limit
        self.subquery_count = 0

    def compile_query(self, query: IfQuery,
                      applicable_policy_sql: str) -> str:
        """SQL returning one row with the rule behavior iff the query holds."""
        self.subquery_count = 0
        condition = sqlgen.conjoin([
            self._compile(p, _DOCUMENT) for p in query.document.predicates
        ])
        return (
            f"SELECT {sql_literal(query.then_element)} AS behavior\n"
            "FROM (\n"
            + sqlgen.indent_block(applicable_policy_sql)
            + "\n) AS applicable_policy\n"
            "WHERE " + condition
        )

    # -- condition compilation -------------------------------------------------

    def _compile(self, condition: Condition, context: str) -> str:
        """Compile *condition* with *context* as the context element type."""
        if isinstance(condition, AndExpr):
            return sqlgen.conjoin(
                [self._compile(op, context) for op in condition.operands]
            )
        if isinstance(condition, OrExpr):
            return sqlgen.disjoin(
                [self._compile(op, context) for op in condition.operands]
            )
        if isinstance(condition, NotExpr):
            return sqlgen.negate(self._compile(condition.operand, context))
        if isinstance(condition, SelfTest):
            # The context element type is known at compile time, so a
            # self:: test folds to a constant.
            return TRUE_CLAUSE if condition.name == context else FALSE_CLAUSE
        if isinstance(condition, AttributeComparison):
            return self._compile_attribute(condition, context)
        if isinstance(condition, PathExpr):
            return self._compile_path(condition, context)
        raise TypeError(f"unknown condition node: {type(condition).__name__}")

    def _compile_attribute(self, comparison: AttributeComparison,
                           context: str) -> str:
        spec = p3p_schema.CATALOG.get(context)
        if spec is None or spec.attribute(comparison.name) is None:
            # Attribute can never be present: = is false, != is false
            # (XPath != requires an actual value).
            return FALSE_CLAUSE
        table = quote_ident(p3p_schema.table_name(context))
        column = quote_ident(comparison.name.replace("-", "_"))
        # IS / IS NOT keep NULL columns two-valued; XPath != additionally
        # requires an actual value to compare against.
        if comparison.negated:
            return (f"({table}.{column} IS NOT "
                    f"{sql_literal(comparison.value)}\n"
                    f" AND {table}.{column} IS NOT NULL)")
        return f"{table}.{column} IS {sql_literal(comparison.value)}"

    def _compile_path(self, path: PathExpr, context: str) -> str:
        children = self._context_children(context)
        if path.step == "*":
            return sqlgen.disjoin(
                [self._compile_step(child, path.predicates, context)
                 for child in children]
            )
        if path.step not in children:
            return FALSE_CLAUSE
        return self._compile_step(path.step, path.predicates, context)

    def _context_children(self, context: str) -> tuple[str, ...]:
        if context == _DOCUMENT:
            return ("POLICY",)
        spec = p3p_schema.CATALOG.get(context)
        return spec.children if spec is not None else ()

    def _compile_step(self, element: str,
                      predicates: tuple[Condition, ...],
                      context: str) -> str:
        self.subquery_count += 1
        if self.subquery_count > self.complexity_limit:
            raise TranslationTooComplexError(
                f"generated SQL exceeds {self.complexity_limit} subqueries"
            )

        table = quote_ident(p3p_schema.table_name(element))
        if context == _DOCUMENT:
            joins = [f"{table}.policy_id = applicable_policy.policy_id"]
        else:
            parent_table = quote_ident(p3p_schema.table_name(context))
            joins = [
                f"{table}.{column} = {parent_table}.{column}"
                for column in p3p_schema.key_columns(context)
            ]

        inner = [self._compile(p, element) for p in predicates]
        return sqlgen.exists(
            "SELECT *\n"
            f"FROM {table}\n"
            "WHERE " + sqlgen.conjoin(joins + inner)
        )


def compile_query(query: IfQuery, applicable_policy_sql: str,
                  complexity_limit: int = DEFAULT_COMPLEXITY_LIMIT) -> str:
    """One-shot convenience wrapper around :class:`XTableCompiler`."""
    compiler = XTableCompiler(complexity_limit=complexity_limit)
    return compiler.compile_query(query, applicable_policy_sql)
