"""Evaluate the XQuery subset over an XML policy view.

This is the "native XML store" variation of the architecture (Section 4,
variation 3): the policy lives as an XML document and the translated
XQuery runs directly against it.

One documented deviation from plain XPath: attribute access applies the
P3P attribute defaults from the element catalog (a policy that omits
``required`` behaves as ``required="always"``).  The paper's relational
paths get this for free because the shredder stores resolved values; a
faithful XML-side evaluation needs the same vocabulary knowledge.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro import xmlutil
from repro.errors import XQueryEvaluationError
from repro.xquery.ast import (
    AndExpr,
    AttributeComparison,
    Condition,
    IfQuery,
    NotExpr,
    OrExpr,
    PathExpr,
    SelfTest,
)
from repro.vocab import schema as p3p_schema

#: Synthetic tag for the document node wrapping the policy root.
_DOCUMENT_TAG = "#document"


def evaluate_query(query: IfQuery, policy_root: ET.Element) -> str | None:
    """Evaluate *query* against a policy document.

    Returns the name of the constructed element (the rule behavior) when
    the condition holds, the ``else`` element name when present, otherwise
    None.
    """
    # Wrap the root in a document node so that the outer predicates can
    # take the POLICY step, as in document("...")[POLICY[...]].
    document = ET.Element(_DOCUMENT_TAG)
    document.append(policy_root)
    if all(_test(p, document) for p in query.document.predicates):
        return query.then_element
    return query.else_element


def evaluate_condition(condition: Condition, context: ET.Element) -> bool:
    """Evaluate a bare condition with *context* as the context element."""
    return _test(condition, context)


def _test(condition: Condition, context: ET.Element) -> bool:
    if isinstance(condition, AndExpr):
        return all(_test(op, context) for op in condition.operands)
    if isinstance(condition, OrExpr):
        return any(_test(op, context) for op in condition.operands)
    if isinstance(condition, NotExpr):
        return not _test(condition.operand, context)
    if isinstance(condition, AttributeComparison):
        return _attribute_test(condition, context)
    if isinstance(condition, SelfTest):
        return xmlutil.local_name(context.tag) == condition.name
    if isinstance(condition, PathExpr):
        return any(
            all(_test(p, child) for p in condition.predicates)
            for child in _step(condition.step, context)
        )
    raise XQueryEvaluationError(
        f"cannot evaluate condition node {type(condition).__name__}"
    )


def _step(step: str, context: ET.Element) -> list[ET.Element]:
    if step == "*":
        return list(context)
    return [
        child for child in context
        if xmlutil.local_name(child.tag) == step
    ]


def _attribute_test(comparison: AttributeComparison,
                    context: ET.Element) -> bool:
    actual = xmlutil.local_attrib(context).get(comparison.name)
    if actual is None:
        spec = p3p_schema.CATALOG.get(xmlutil.local_name(context.tag))
        if spec is not None:
            attr_spec = spec.attribute(comparison.name)
            if attr_spec is not None:
                actual = attr_spec.default
    if comparison.negated:
        return actual is not None and actual != comparison.value
    return actual == comparison.value
