"""Structural-join compilation of the XQuery subset (beyond the paper).

:mod:`repro.xquery.to_sql` plays XTABLE faithfully: every path step
becomes a correlated ``EXISTS`` subquery, so nested predicates multiply
and the Medium preference blows the complexity budget — the blank cell
of Figure 21.  This module is the second compiler ROADMAP item 5 asks
for: it compiles the same XQuery subset against the same generic
(Figure 8) node tables, but *structurally*, in the style of DOM-based
XML-to-relational mapping (Atay et al.): a condition at context element
``T`` denotes the **set of T nodes satisfying it**, represented as a
``SELECT`` over ``key_columns(T)``.  Boolean connectives become set
algebra (``INTERSECT`` / ``UNION`` / ``EXCEPT``), and a path step is a
structural join — project the qualifying child keys onto the parent's
``key_columns`` prefix.  Output size is linear in the query, so there is
no complexity guard: Medium compiles to a flat compound select.

The per-rule statements are folded first-rule-wins into one statement
per ruleset with ``MIN(rule_index) OVER ()``, exactly as
:func:`repro.translate.plan.combine_bulk_rules` does for direct SQL, and
the applicable policy arrives through ``?`` binds (the plan is
policy-independent and cacheable — no ``applicable_policy_literal``
string interpolation anywhere on this path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.storage.database import Database, quote_ident, sql_literal
from repro.translate.sqlgen import indent_block
from repro.vocab import schema as p3p_schema
from repro.xquery.ast import (
    AndExpr,
    AttributeComparison,
    Condition,
    IfQuery,
    NotExpr,
    OrExpr,
    PathExpr,
    SelfTest,
)

#: Tag of the virtual document node (context of the outermost predicates).
_DOCUMENT = "#document"


class _PolicyIdBind:
    """Sentinel parameter: a ``?`` that takes the applicable policy id."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<policy-id>"


#: Every occurrence in a rule's bind tuple is replaced by the policy id
#: at execution time; all other binds are literal attribute values.
POLICY_ID_BIND = _PolicyIdBind()

# A compiled condition is a *node set* over its context element type:
# either every node (constant true), no node (constant false), or a
# SELECT of the element's key columns.
_ALL = "all"
_NONE = "none"
_SQL = "sql"


@dataclass(frozen=True)
class _NodeSet:
    """Qualifying nodes of one element type, as key-column relations."""

    kind: str
    sql: str = ""
    binds: tuple[object, ...] = ()
    #: True when ``sql`` is a top-level compound (UNION/INTERSECT/EXCEPT)
    #: and must be wrapped in a derived table before being nested —
    #: SQLite compound selects cannot appear bare as compound operands.
    compound: bool = False


_ALL_SET = _NodeSet(_ALL)
_NONE_SET = _NodeSet(_NONE)


def _keys(element: str) -> tuple[str, ...]:
    """Key columns identifying one node of *element* (document = policy)."""
    if element == _DOCUMENT:
        return ("policy_id",)
    return p3p_schema.key_columns(element)


def _context_children(context: str) -> tuple[str, ...]:
    if context == _DOCUMENT:
        return ("POLICY",)
    spec = p3p_schema.CATALOG.get(context)
    return spec.children if spec is not None else ()


def _table(element: str) -> str:
    if element == _DOCUMENT:
        element = "POLICY"
    return quote_ident(p3p_schema.table_name(element))


def _select_list(table: str, columns: tuple[str, ...]) -> str:
    return ", ".join(
        f"{table}.{quote_ident(column)} AS {quote_ident(column)}"
        for column in columns
    )


def _member_sql(node: _NodeSet, element: str) -> str:
    """Render *node* so it can appear as one compound-select operand."""
    if not node.compound:
        return node.sql
    columns = ", ".join(quote_ident(c) for c in _keys(element))
    return (f"SELECT {columns}\nFROM (\n"
            + indent_block(node.sql)
            + "\n) AS nested")


def _base_set(element: str) -> _NodeSet:
    """Every node of *element* within the applicable policy."""
    table = _table(element)
    return _NodeSet(
        _SQL,
        f"SELECT {_select_list(table, _keys(element))}\n"
        f"FROM {table}\n"
        f"WHERE {table}.policy_id = ?",
        (POLICY_ID_BIND,),
    )


def _compound(keyword: str, members: list[_NodeSet],
              element: str) -> _NodeSet:
    sql = f"\n{keyword}\n".join(_member_sql(m, element) for m in members)
    binds: tuple[object, ...] = ()
    for member in members:
        binds += member.binds
    return _NodeSet(_SQL, sql, binds, compound=True)


def _intersect(members: list[_NodeSet], element: str) -> _NodeSet:
    live = [m for m in members if m.kind != _ALL]
    if any(m.kind == _NONE for m in live):
        return _NONE_SET
    if not live:
        return _ALL_SET
    if len(live) == 1:
        return live[0]
    return _compound("INTERSECT", live, element)


def _union(members: list[_NodeSet], element: str) -> _NodeSet:
    live = [m for m in members if m.kind != _NONE]
    if any(m.kind == _ALL for m in live):
        return _ALL_SET
    if not live:
        return _NONE_SET
    if len(live) == 1:
        return live[0]
    return _compound("UNION", live, element)


def _negate(node: _NodeSet, element: str) -> _NodeSet:
    if node.kind == _ALL:
        return _NONE_SET
    if node.kind == _NONE:
        return _ALL_SET
    base = _base_set(element)
    return _NodeSet(
        _SQL,
        base.sql + "\nEXCEPT\n" + _member_sql(node, element),
        base.binds + node.binds,
        compound=True,
    )


class StructuralCompiler:
    """Compile XQuery-subset rules to flat structural-join SQL."""

    def compile_rule(self, query: IfQuery, rule_index: int) -> StructuralRule:
        """One member statement: fires (one row) iff the rule matches."""
        docset = _intersect(
            [self._node_set(p, _DOCUMENT) for p in query.document.predicates],
            _DOCUMENT,
        )
        header = (
            f"SELECT {sql_literal(query.then_element)} AS behavior, "
            f"{int(rule_index)} AS rule_index\n"
            "FROM (\n"
            "  SELECT ? AS policy_id\n"
            ") AS applicable_policy"
        )
        binds: tuple[object, ...] = (POLICY_ID_BIND,)
        if docset.kind == _ALL:
            sql = header
        elif docset.kind == _NONE:
            sql = header + "\nWHERE 0"
        else:
            sql = (header
                   + "\nJOIN (\n"
                   + indent_block(docset.sql)
                   + "\n) AS matched\n"
                   + "  ON matched.policy_id = applicable_policy.policy_id")
            binds += docset.binds
        return StructuralRule(
            behavior=query.then_element,
            rule_index=rule_index,
            sql=sql,
            binds=binds,
        )

    # -- condition compilation -----------------------------------------------

    def _node_set(self, condition: Condition, context: str) -> _NodeSet:
        """The set of *context* nodes satisfying *condition*."""
        if isinstance(condition, AndExpr):
            return _intersect(
                [self._node_set(op, context) for op in condition.operands],
                context,
            )
        if isinstance(condition, OrExpr):
            return _union(
                [self._node_set(op, context) for op in condition.operands],
                context,
            )
        if isinstance(condition, NotExpr):
            return _negate(self._node_set(condition.operand, context),
                           context)
        if isinstance(condition, SelfTest):
            # Context element type is known at compile time: constant fold.
            return _ALL_SET if condition.name == context else _NONE_SET
        if isinstance(condition, AttributeComparison):
            return self._attribute_set(condition, context)
        if isinstance(condition, PathExpr):
            return self._path_set(condition, context)
        raise TypeError(f"unknown condition node: {type(condition).__name__}")

    def _attribute_set(self, comparison: AttributeComparison,
                       context: str) -> _NodeSet:
        spec = p3p_schema.CATALOG.get(context)
        if spec is None or spec.attribute(comparison.name) is None:
            # Attribute can never be present: = is false, != is false
            # (XPath != requires an actual value) — same fold as XTABLE.
            return _NONE_SET
        table = _table(context)
        column = quote_ident(comparison.name.replace("-", "_"))
        # IS / IS NOT keep NULL columns two-valued; the compared value is
        # a bind, never interpolated text.
        if comparison.negated:
            predicate = (f"{table}.{column} IS NOT ?\n"
                         f"  AND {table}.{column} IS NOT NULL")
        else:
            predicate = f"{table}.{column} IS ?"
        return _NodeSet(
            _SQL,
            f"SELECT {_select_list(table, _keys(context))}\n"
            f"FROM {table}\n"
            f"WHERE {table}.policy_id = ?\n"
            f"  AND {predicate}",
            (POLICY_ID_BIND, comparison.value),
        )

    def _path_set(self, path: PathExpr, context: str) -> _NodeSet:
        children = _context_children(context)
        if path.step == "*":
            steps = children
        elif path.step in children:
            steps = (path.step,)
        else:
            return _NONE_SET
        return _union(
            [self._step_set(child, path.predicates, context)
             for child in steps],
            context,
        )

    def _step_set(self, element: str, predicates: tuple[Condition, ...],
                  context: str) -> _NodeSet:
        """Parents (*context* nodes) with a qualifying *element* child —
        the structural join: project child keys onto the parent prefix."""
        child_set = _intersect(
            [self._node_set(p, element) for p in predicates], element
        )
        if child_set.kind == _NONE:
            return _NONE_SET
        parent_keys = _keys(context)
        if child_set.kind == _ALL:
            table = _table(element)
            return _NodeSet(
                _SQL,
                f"SELECT DISTINCT {_select_list(table, parent_keys)}\n"
                f"FROM {table}\n"
                f"WHERE {table}.policy_id = ?",
                (POLICY_ID_BIND,),
            )
        columns = ", ".join(quote_ident(c) for c in parent_keys)
        return _NodeSet(
            _SQL,
            f"SELECT DISTINCT {columns}\n"
            "FROM (\n"
            + indent_block(child_set.sql)
            + "\n) AS child",
            child_set.binds,
        )


# -- rules and plans -----------------------------------------------------------


@dataclass(frozen=True)
class StructuralRule:
    """One compiled rule: a member select yielding at most one row."""

    behavior: str
    rule_index: int
    sql: str
    binds: tuple[object, ...]


@dataclass(frozen=True)
class StructuralPlan:
    """Policy-independent single-statement plan for a whole ruleset.

    ``execute`` is one round trip; the policy id is supplied per call,
    so one compiled plan serves every installed policy (and is safe to
    share through a :class:`repro.translate.plan.TranslationCache`).
    """

    rules: tuple[StructuralRule, ...]
    sql: str

    @property
    def parameter_count(self) -> int:
        """Total ``?`` placeholders across the combined statement."""
        return sum(len(rule.binds) for rule in self.rules)

    def parameters(self, policy_id: int) -> tuple[object, ...]:
        """Bind values in textual order, policy id substituted in."""
        values: list[object] = []
        for rule in self.rules:
            for bind in rule.binds:
                values.append(policy_id if bind is POLICY_ID_BIND else bind)
        return tuple(values)

    def execute(self, db: Database,
                policy_id: int) -> tuple[str | None, int | None]:
        """First-rule-wins decision for *policy_id* in one statement."""
        if not self.rules:
            return (None, None)
        row = db.query_one(self.sql, self.parameters(policy_id))
        if row is None:
            return (None, None)
        return (row["behavior"], int(row["rule_index"]))

    def size_chars(self) -> int:
        return len(self.sql)


def combine_structural_rules(rules: Sequence[StructuralRule]) -> str:
    """Fold member statements first-rule-wins into one flat statement.

    Same window idiom as :func:`repro.translate.plan.combine_bulk_rules`
    (``MIN(rule_index) OVER ()``), minus the per-policy partition — a
    plan executes for exactly one bound policy id.  A single-rule plan
    skips the window wrapper: the bare member already yields at most
    one row.
    """
    if not rules:
        return ""
    if len(rules) == 1:
        return rules[0].sql
    members = "\nUNION ALL\n".join(rule.sql for rule in rules)
    return (
        "SELECT behavior, rule_index\n"
        "FROM (\n"
        "  SELECT behavior, rule_index,\n"
        "         MIN(rule_index) OVER () AS first_rule_index\n"
        "  FROM (\n"
        + indent_block(members, "    ")
        + "\n  ) AS fired\n"
        ") AS ranked\n"
        "WHERE rule_index = first_rule_index"
    )


def compile_plan(queries: Sequence[IfQuery]) -> StructuralPlan:
    """Compile parsed rule queries (in priority order) into one plan."""
    compiler = StructuralCompiler()
    rules = tuple(
        compiler.compile_rule(query, index)
        for index, query in enumerate(queries)
    )
    return StructuralPlan(rules=rules, sql=combine_structural_rules(rules))


def compile_ruleset(ruleset) -> StructuralPlan:
    """APPEL ruleset -> XQuery -> structural plan (full pipeline)."""
    from repro.translate.appel_to_xquery import XQueryTranslator
    from repro.xquery.parser import parse_query

    translated = XQueryTranslator().translate_ruleset(ruleset)
    return compile_plan(
        [parse_query(rule.xquery) for rule in translated.rules]
    )
