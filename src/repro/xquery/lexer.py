"""Tokenizer for the XQuery subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import XQuerySyntaxError

# Token kinds
NAME = "NAME"
STRING = "STRING"
PUNCT = "PUNCT"
END = "END"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<selfaxis>self::)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.-]*)
  | (?P<punct><|>|\[|\]|\(|\)|@|=|!=|\*|/)
    """,
    re.VERBOSE,
)

#: Keywords are NAME tokens with special meaning in context; the parser
#: compares case-insensitively for the boolean operators because the
#: paper's figures print them in upper case (Figure 18: ``admin OR ...``).
KEYWORDS = frozenset({"if", "then", "else", "return", "document",
                      "and", "or", "not"})


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == NAME and self.text.lower() == word


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising XQuerySyntaxError on unknown characters."""
    tokens: list[Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise XQuerySyntaxError(
                f"unexpected character {source[position]!r} "
                f"at offset {position}"
            )
        if match.lastgroup == "ws":
            position = match.end()
            continue
        text = match.group()
        if match.lastgroup == "string":
            tokens.append(Token(STRING, text[1:-1], position))
        elif match.lastgroup == "selfaxis":
            tokens.append(Token(PUNCT, "self::", position))
        elif match.lastgroup == "name":
            tokens.append(Token(NAME, text, position))
        else:
            tokens.append(Token(PUNCT, text, position))
        position = match.end()
    tokens.append(Token(END, "", position))
    return tokens
