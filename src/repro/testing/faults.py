"""Seeded, deterministic fault injection for the serving stack.

Three failure surfaces, mirroring what production actually sees:

* **Storage** — :func:`install_pool_faults` wraps the connection pool's
  writer so scheduled statements raise ``sqlite3.OperationalError``
  (the shape of a busy/faulted database) before touching the file;
* **Network** — :func:`http_fault_hook` builds a
  ``P3PHttpServer.fault_hook`` that drops connections before the
  handler runs, drops them after (request processed, response lost —
  the case idempotent ``check_key`` logging exists for), truncates
  response bodies mid-write, or delays replies;
* **Crash** — :func:`crash_pool` abandons every pooled connection
  without committing or flushing, the in-process equivalent of
  ``kill -9``: buffered log rows die, committed WAL state survives for
  the next open.

Schedules are driven by :class:`FaultPlan`: per-kind counters
(``every`` — fire on every Nth occurrence, reproducible under any
thread interleaving) or a seeded PRNG (``rates``), with an optional
global ``max_faults`` budget so a faulted run always drains.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from collections import Counter
from typing import Callable, Iterable

from repro.storage.pool import ConnectionPool

#: The failure kinds a plan can schedule.
KINDS = ("sqlite", "request-drop", "response-drop", "response-truncate",
         "delay")


class FaultPlan:
    """A reproducible schedule deciding which events fail.

    *every* maps a kind to N: every Nth occurrence of that kind faults
    (per-kind counters under a lock — deterministic fault *counts*
    regardless of thread interleaving).  *rates* maps a kind to a
    probability drawn from a PRNG seeded with *seed* — reproducible
    for single-threaded drivers.  ``max_faults`` caps total injections
    so a chaos run always finishes.
    """

    def __init__(self, seed: int = 2003, *,
                 every: dict[str, int] | None = None,
                 rates: dict[str, float] | None = None,
                 max_faults: int | None = None,
                 delay_seconds: float = 0.0):
        import random
        unknown = (set(every or ()) | set(rates or ())) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.every = dict(every or {})
        self.rates = dict(rates or {})
        self.max_faults = max_faults
        self.delay_seconds = delay_seconds
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self.occurrences: Counter[str] = Counter()
        self.injected: Counter[str] = Counter()

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def should(self, kind: str) -> bool:
        """Record one occurrence of *kind*; True when it must fail."""
        with self._lock:
            self.occurrences[kind] += 1
            if (self.max_faults is not None
                    and sum(self.injected.values()) >= self.max_faults):
                return False
            fire = False
            step = self.every.get(kind)
            if step:
                fire = self.occurrences[kind] % step == 0
            elif kind in self.rates:
                fire = self._random.random() < self.rates[kind]
            if fire:
                self.injected[kind] += 1
            return fire


def http_fault_hook(plan: FaultPlan,
                    paths: Iterable[str] = ("/v1/check",
                                            "/v1/check-batch"),
                    sleep: Callable[[float], None] = time.sleep):
    """Build a ``P3PHttpServer.fault_hook`` driven by *plan*.

    Only requests to *paths* are candidates (operators must always be
    able to reach /healthz and /metrics, and installs are not
    idempotent, so chaos stays on the check endpoints by default).
    Assign the result to ``server.fault_hook``; set ``fault_hook =
    None`` to heal the server.
    """
    targets = frozenset(paths)

    def hook(stage: str, path: str) -> str | None:
        if path not in targets:
            return None
        if stage == "request":
            if plan.should("request-drop"):
                return "drop"
        else:
            if plan.should("response-drop"):
                return "drop"
            if plan.should("response-truncate"):
                return "truncate"
        if plan.delay_seconds and plan.should("delay"):
            sleep(plan.delay_seconds)
        return None

    return hook


def install_pool_faults(pool: ConnectionPool, plan: FaultPlan, *,
                        match: str = "check_log"
                        ) -> Callable[[], None]:
    """Make scheduled writer statements raise ``OperationalError``.

    Statements whose SQL contains *match* (default: check-log writes,
    the serving stack's hot write path) consult ``plan.should("sqlite")``
    before executing; a scheduled fault raises *before* the statement
    runs, the shape of a database hitting busy/IO trouble.  Returns an
    ``uninstall()`` callable restoring the unwrapped methods.
    """
    db = pool.writer
    original_execute = db.execute
    original_executemany = db.executemany

    def execute(sql, parameters=()):
        if match in sql and plan.should("sqlite"):
            raise sqlite3.OperationalError(
                "injected: database fault (execute)")
        return original_execute(sql, parameters)

    def executemany(sql, rows):
        if match in sql and plan.should("sqlite"):
            raise sqlite3.OperationalError(
                "injected: database fault (executemany)")
        return original_executemany(sql, rows)

    db.execute = execute                      # type: ignore[method-assign]
    db.executemany = executemany              # type: ignore[method-assign]

    def uninstall() -> None:
        db.execute = original_execute         # type: ignore[method-assign]
        db.executemany = original_executemany  # type: ignore[method-assign]

    return uninstall


def crash_pool(pool: ConnectionPool) -> None:
    """Simulate a hard crash of the serving process.

    Every pooled connection is abandoned without commit or flush:
    uncommitted transactions are discarded (as the OS would on process
    death) and the pool is left unusable.  Data previously committed
    through WAL must survive a subsequent reopen — that is the recovery
    property the crash tests assert.

    In-flight statements are interrupted (the only cross-thread-safe
    sqlite call) and the writer is closed under the write lock, once no
    thread can be executing on it.  Reader connections are *abandoned*,
    not closed — closing a connection another thread is using is
    undefined behavior in SQLite; garbage collection reclaims them when
    their owning threads exit.
    """
    with pool._registry_lock:
        pool._closed = True
        readers = list(pool._readers)
        pool._readers = {}
    for db in [*readers, pool.writer]:
        try:
            db._connection.interrupt()
        except Exception:
            pass
    # Any thread inside pool.write() unwinds on the interrupt; once the
    # lock is ours nothing can be executing on the writer.
    with pool._write_lock:
        try:
            pool.writer._connection.close()
        except Exception:
            pass
