"""Deterministic chaos tooling for the serving stack.

:mod:`repro.testing.faults` injects storage and network failures on a
seeded, reproducible schedule so the fault-tolerance claims (retry with
backoff, idempotent check logging, WAL crash recovery) are *tested*
rather than asserted.  Nothing in here is imported by production code —
the serving stack exposes hooks (``P3PHttpServer.fault_hook``, plain
method wrapping on the pool's writer) and this package drives them.
"""

from repro.testing.faults import (
    FaultPlan,
    crash_pool,
    http_fault_hook,
    install_pool_faults,
)

__all__ = [
    "FaultPlan",
    "crash_pool",
    "http_fault_hook",
    "install_pool_faults",
]
