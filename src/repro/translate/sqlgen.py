"""Shared SQL text-building helpers for the APPEL translators.

The paper's pseudocode (Figure 11) "omits checks for not generating
superfluous parenthesis as well as unneeded trailing OR/AND operators";
these helpers are those checks, plus the connective combination table used
by both translators (the full algorithm of [2] supports all six APPEL
connectives, not just the or/and shown in the paper's figures).
"""

from __future__ import annotations

from repro.errors import TranslationError

TRUE_CLAUSE = "1"
FALSE_CLAUSE = "0"


def indent_block(sql: str, prefix: str = "  ") -> str:
    """Indent every line of *sql* by *prefix*."""
    return "\n".join(prefix + line for line in sql.splitlines())


def exists(subquery: str) -> str:
    """Wrap a subquery in EXISTS with conventional layout."""
    return "EXISTS (\n" + indent_block(subquery) + ")"


def not_exists(subquery: str) -> str:
    return "NOT EXISTS (\n" + indent_block(subquery) + ")"


def conjoin(clauses: list[str]) -> str:
    """AND together boolean clauses, dropping trivially-true ones."""
    useful = [c for c in clauses if c != TRUE_CLAUSE]
    if not useful:
        return TRUE_CLAUSE
    if FALSE_CLAUSE in useful:
        return FALSE_CLAUSE
    if len(useful) == 1:
        return useful[0]
    return "(" + "\n AND ".join(useful) + ")"


def disjoin(clauses: list[str]) -> str:
    """OR together boolean clauses, dropping trivially-false ones."""
    useful = [c for c in clauses if c != FALSE_CLAUSE]
    if not useful:
        return FALSE_CLAUSE
    if TRUE_CLAUSE in useful:
        return TRUE_CLAUSE
    if len(useful) == 1:
        return useful[0]
    return "(" + "\n OR ".join(useful) + ")"


def negate(clause: str) -> str:
    if clause == TRUE_CLAUSE:
        return FALSE_CLAUSE
    if clause == FALSE_CLAUSE:
        return TRUE_CLAUSE
    return f"NOT {clause}" if clause.startswith("(") else f"NOT ({clause})"


def combine(connective: str, clauses: list[str], exact_clause: str) -> str:
    """Combine subexpression clauses under an APPEL connective.

    *exact_clause* is the SQL predicate asserting "the policy contains only
    elements listed in the rule" at this level; it is only consulted by the
    ``*-exact`` connectives.
    """
    if connective == "and":
        return conjoin(clauses)
    if connective == "or":
        return disjoin(clauses)
    if connective == "non-and":
        return negate(conjoin(clauses))
    if connective == "non-or":
        return negate(disjoin(clauses))
    if connective == "and-exact":
        return conjoin([conjoin(clauses), exact_clause])
    if connective == "or-exact":
        return conjoin([disjoin(clauses), exact_clause])
    raise TranslationError(f"unknown connective: {connective!r}")
