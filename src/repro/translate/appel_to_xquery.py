"""Translating APPEL preferences into XQuery (Section 5.6 / Figure 17).

``main()`` generates an XQuery ``if`` statement that returns the rule
behavior when the applicable policy meets the rule's condition; ``match()``
renders each expression as a path step with a predicate over its attributes
and subexpressions (Figure 18 shows the output for the simplified rule of
Figure 12).

As with the SQL translator, the figures cover or/and only; the negated and
exact connectives follow the full algorithm of [2]:

* ``non-and`` / ``non-or`` wrap the combination in ``not(...)``;
* ``and-exact`` / ``or-exact`` append the exactness test
  ``not(*[not(self::a or self::b)])`` ("the policy contains only elements
  listed in the rule").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appel.model import Expression, Rule, Ruleset
from repro.errors import TranslationError

#: The document() argument; the paper's Figure 18 uses the placeholder
#: "applicable-policy" for the policy located via the reference file.
APPLICABLE_POLICY_URI = "applicable-policy"


@dataclass(frozen=True)
class TranslatedXQueryRule:
    """One APPEL rule rendered in the XQuery subset."""

    behavior: str
    xquery: str


@dataclass(frozen=True)
class TranslatedXQueryRuleset:
    rules: tuple[TranslatedXQueryRule, ...]

    def queries(self) -> list[str]:
        return [rule.xquery for rule in self.rules]


class XQueryTranslator:
    """Figure 17: APPEL to XQuery."""

    def __init__(self, document_uri: str = APPLICABLE_POLICY_URI):
        self.document_uri = document_uri

    def translate_ruleset(self, ruleset: Ruleset) -> TranslatedXQueryRuleset:
        return TranslatedXQueryRuleset(
            rules=tuple(
                TranslatedXQueryRule(rule.behavior,
                                     self.translate_rule(rule))
                for rule in ruleset.rules
            )
        )

    def translate_rule(self, rule: Rule) -> str:
        """The main() function of Figure 17."""
        document = f'document("{self.document_uri}")'
        if rule.is_catch_all():
            condition = ""
        else:
            parts = [self._match(expr) for expr in rule.expressions]
            listed = [expr.name for expr in rule.expressions]
            condition = "[" + self._combine(rule.connective, parts,
                                            listed) + "]"
        return f"if ({document}{condition}) then <{rule.behavior}/>"

    def _match(self, expr: Expression) -> str:
        """The match() function of Figure 17."""
        conditions: list[str] = []
        # Match attributes of e (lines 11-14).
        for name, value in expr.attributes:
            if '"' in value:
                raise TranslationError(
                    f"attribute value with double quote: {value!r}"
                )
            conditions.append(f'@{name} = "{value}"')
        # Recursively match subexpressions (lines 15-18).
        if expr.subexpressions:
            parts = [self._match(sub) for sub in expr.subexpressions]
            listed = [sub.name for sub in expr.subexpressions]
            conditions.append(
                self._combine(expr.connective, parts, listed)
            )
        if not conditions:
            return expr.name
        return expr.name + "[" + " AND ".join(
            self._group(c) for c in conditions
        ) + "]"

    def _combine(self, connective: str, parts: list[str],
                 listed: list[str]) -> str:
        if connective == "and":
            return " AND ".join(parts)
        if connective == "or":
            return " OR ".join(parts)
        if connective == "non-and":
            return "not(" + " AND ".join(parts) + ")"
        if connective == "non-or":
            return "not(" + " OR ".join(parts) + ")"
        if connective == "and-exact":
            positive = " AND ".join(parts)
            return f"({positive}) AND {self._exactness(listed)}"
        if connective == "or-exact":
            positive = " OR ".join(parts)
            return f"({positive}) AND {self._exactness(listed)}"
        raise TranslationError(f"unknown connective: {connective!r}")

    def _exactness(self, listed: list[str]) -> str:
        """``not(*[not(self::a or self::b)])`` for the *-exact connectives."""
        unique = sorted(set(listed))
        tests = " OR ".join(f"self::{name}" for name in unique)
        return f"not(*[not({tests})])"

    def _group(self, condition: str) -> str:
        """Parenthesize multi-operand combinations inside a predicate."""
        if " AND " in condition or " OR " in condition:
            return "(" + condition + ")"
        return condition
