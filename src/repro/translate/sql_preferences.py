"""Preferences expressed directly as SQL (Sections 4 and 6.3.2).

The paper twice sketches a deployment where APPEL disappears: "database
queries may replace APPEL for representing privacy preferences and the GUI
tools for generating preferences may directly generate database queries"
(Section 4, footnote 2), and "it is not unreasonable to think of a P3P
deployment in which the preference generation GUI tool produces
preferences as a set of SQL statements" (Section 6.3.2).  Section 7 lists
identifying "the minimal subsets of SQL ... needed for this purpose" as
future work.

This module implements that deployment:

* :class:`SqlPreference` — an ordered list of (behavior, SQL) rules where
  each query references the ``applicable_policy`` relation and returns a
  row iff the rule fires;
* :func:`compile_preference` — freeze an APPEL ruleset into a reusable
  SqlPreference (the GUI-tool path, done once instead of per check);
* :func:`validate_sql_rule` — enforce the **minimal SQL subset**: a single
  read-only SELECT over the policy tables.  This is our concrete answer to
  the future-work question: SELECT / FROM / WHERE, EXISTS and NOT EXISTS
  subqueries, AND/OR/NOT/IN/IS, column-literal comparisons — no joins
  beyond correlation, no mutation, no other statements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.appel.model import Ruleset
from repro.errors import TranslationError
from repro.storage.database import Database
from repro.storage.optimized_schema import POLICY_TABLES
from repro.translate.appel_to_sql import OptimizedSqlTranslator

#: Placeholder every stored rule uses for the applicable-policy relation.
APPLICABLE_POLICY_PLACEHOLDER = "$APPLICABLE_POLICY"

#: Keywords that must not appear in a preference rule (the minimal subset
#: is strictly read-only, single-statement SELECT).
_FORBIDDEN = re.compile(
    r"\b(insert|update|delete|drop|alter|create|attach|pragma|replace|"
    r"vacuum|reindex)\b|;",
    re.IGNORECASE,
)

_TABLE_RE = re.compile(r"\bfrom\s+([a-z_][a-z0-9_]*)", re.IGNORECASE)

#: Relations a preference rule may read.
_ALLOWED_TABLES = frozenset(POLICY_TABLES) | {"applicable_policy"}


def validate_sql_rule(sql: str) -> None:
    """Check that *sql* stays within the minimal preference subset.

    Raises TranslationError when the rule contains mutation statements,
    multiple statements, or reads tables outside the shredded policy
    schema.
    """
    if _FORBIDDEN.search(sql):
        raise TranslationError(
            "preference rules are read-only single SELECT statements"
        )
    stripped = sql.lstrip()
    if not stripped.lower().startswith("select"):
        raise TranslationError("preference rules must be SELECT statements")
    for table in _TABLE_RE.findall(sql):
        if table.lower() == "(":  # derived table
            continue
        if table.lower() not in _ALLOWED_TABLES:
            raise TranslationError(
                f"preference rules may not read table {table!r}"
            )


@dataclass(frozen=True)
class SqlRule:
    """One preference rule in the minimal SQL subset."""

    behavior: str
    sql: str  # contains APPLICABLE_POLICY_PLACEHOLDER

    def bind(self, policy_id: int) -> str:
        """Instantiate the rule against a concrete policy id."""
        return self.sql.replace(
            APPLICABLE_POLICY_PLACEHOLDER,
            f"SELECT {int(policy_id)} AS policy_id",
        )


@dataclass(frozen=True)
class SqlPreference:
    """A complete preference as an ordered list of SQL rules."""

    rules: tuple[SqlRule, ...]

    def evaluate(self, db: Database,
                 policy_id: int) -> tuple[str | None, int | None]:
        """Run the rules in order; first non-empty result decides."""
        for index, rule in enumerate(self.rules):
            if db.query_one(rule.bind(policy_id)) is not None:
                return rule.behavior, index
        return None, None


def compile_preference(ruleset: Ruleset,
                       validate: bool = True) -> SqlPreference:
    """Freeze an APPEL ruleset into a reusable SqlPreference.

    This is the translation the paper imagines a preference-GUI doing
    once, offline — after which matching is pure query execution
    ("if we just compare the matching time, the SQL implementation is
    30 times faster").
    """
    translator = OptimizedSqlTranslator()
    translated = translator.translate_ruleset(
        ruleset, APPLICABLE_POLICY_PLACEHOLDER
    )
    rules = []
    for rule in translated.rules:
        # The translator wraps the applicable-policy SQL in a derived
        # table; keep the placeholder intact for later binding.
        if validate:
            validate_sql_rule(
                rule.sql.replace(APPLICABLE_POLICY_PLACEHOLDER,
                                 "SELECT 0 AS policy_id")
            )
        rules.append(SqlRule(behavior=rule.behavior, sql=rule.sql))
    return SqlPreference(rules=tuple(rules))


def preference_from_sql(rules: list[tuple[str, str]],
                        validate: bool = True) -> SqlPreference:
    """Build a preference from hand-written (behavior, SQL) pairs.

    The SQL must reference ``($APPLICABLE_POLICY) AS applicable_policy``
    (or simply correlate on ``applicable_policy.policy_id``) and stay in
    the minimal subset.
    """
    compiled = []
    for behavior, sql in rules:
        if validate:
            validate_sql_rule(
                sql.replace(APPLICABLE_POLICY_PLACEHOLDER,
                            "SELECT 0 AS policy_id")
            )
        compiled.append(SqlRule(behavior=behavior, sql=sql))
    return SqlPreference(rules=tuple(compiled))
