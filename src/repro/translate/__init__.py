"""APPEL preference translators: to SQL (generic and optimized schemas) and
to the XQuery subset."""

from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    TranslatedRule,
    TranslatedRuleset,
    applicable_policy_literal,
    evaluate_ruleset,
)
from repro.translate.appel_to_xquery import (
    APPLICABLE_POLICY_URI,
    TranslatedXQueryRule,
    TranslatedXQueryRuleset,
    XQueryTranslator,
)
from repro.translate.sql_preferences import (
    APPLICABLE_POLICY_PLACEHOLDER,
    SqlPreference,
    SqlRule,
    compile_preference,
    preference_from_sql,
    validate_sql_rule,
)

__all__ = [
    "GenericSqlTranslator",
    "OptimizedSqlTranslator",
    "TranslatedRule",
    "TranslatedRuleset",
    "applicable_policy_literal",
    "evaluate_ruleset",
    "XQueryTranslator",
    "TranslatedXQueryRule",
    "TranslatedXQueryRuleset",
    "APPLICABLE_POLICY_URI",
    "SqlPreference",
    "SqlRule",
    "compile_preference",
    "preference_from_sql",
    "validate_sql_rule",
    "APPLICABLE_POLICY_PLACEHOLDER",
]
