"""APPEL preference translators: to SQL (generic and optimized schemas) and
to the XQuery subset.

Two SQL output shapes: :func:`compile_ruleset` (on either translator)
emits a policy-independent :class:`CompiledPlan` — parameterized SQL,
one round-trip per check — while ``translate_ruleset`` keeps the literal
per-policy pipeline as a pedagogical/differential reference."""

from repro.translate.appel_to_sql import (
    GenericSqlTranslator,
    OptimizedSqlTranslator,
    TranslatedRule,
    TranslatedRuleset,
    applicable_policy_literal,
    evaluate_ruleset,
)
from repro.translate.plan import (
    APPLICABLE_POLICY_PARAM,
    CompiledPlan,
    PlanRule,
    TranslationCache,
    combine_rules,
)
from repro.translate.appel_to_xquery import (
    APPLICABLE_POLICY_URI,
    TranslatedXQueryRule,
    TranslatedXQueryRuleset,
    XQueryTranslator,
)
from repro.translate.sql_preferences import (
    APPLICABLE_POLICY_PLACEHOLDER,
    SqlPreference,
    SqlRule,
    compile_preference,
    preference_from_sql,
    validate_sql_rule,
)

__all__ = [
    "GenericSqlTranslator",
    "OptimizedSqlTranslator",
    "TranslatedRule",
    "TranslatedRuleset",
    "applicable_policy_literal",
    "evaluate_ruleset",
    "APPLICABLE_POLICY_PARAM",
    "CompiledPlan",
    "PlanRule",
    "TranslationCache",
    "combine_rules",
    "XQueryTranslator",
    "TranslatedXQueryRule",
    "TranslatedXQueryRuleset",
    "APPLICABLE_POLICY_URI",
    "SqlPreference",
    "SqlRule",
    "compile_preference",
    "preference_from_sql",
    "validate_sql_rule",
    "APPLICABLE_POLICY_PLACEHOLDER",
]
